"""Telemetry overhead guard: the disabled path must stay free.

Tracing off is the default, and the budget for it is one predicate per
frame — no spans, no collector traffic, and critically no *retained*
allocations.  This microbench drives the hottest frame path
(:class:`LocalChannel` request/reply, the thread-strategy transport)
in steady state and asserts the interpreter's allocated-block count
does not grow with the number of frames, then reports the per-frame
wall cost for the CI log.
"""

import gc
import sys
import time

from repro.core.channel import LocalChannel
from repro.core.telemetry import TELEMETRY

WARMUP = 500
FRAMES = 5000

#: Allowed net allocated-block growth across FRAMES steady-state
#: requests.  Zero per-frame growth is the contract; the slack absorbs
#: interpreter-internal noise (free-list reshaping, GC bookkeeping).
ALLOWED_GROWTH = 200


def test_disabled_tracing_steady_state_allocations():
    assert not TELEMETRY.tracing, "tracing must default to off"
    app, peer = LocalChannel.pair("bench-telemetry")
    try:
        peer.register(1, lambda fields, payload: ({"ok": True}, payload))
        for _ in range(WARMUP):  # populate caches: histograms, counters
            app.request(1, {"cmd": "read"}, b"x")
        gc.collect()
        before = sys.getallocatedblocks()
        started = time.perf_counter()
        for _ in range(FRAMES):
            app.request(1, {"cmd": "read"}, b"x")
        elapsed = time.perf_counter() - started
        gc.collect()
        growth = sys.getallocatedblocks() - before
    finally:
        app.close()
        peer.close()
    print(f"\ntelemetry-disabled frame path: "
          f"{elapsed / FRAMES * 1e6:.1f} us/frame, "
          f"net allocated-block growth {growth} over {FRAMES} frames")
    assert growth <= ALLOWED_GROWTH, (
        f"disabled-tracing path retained {growth} blocks over {FRAMES} "
        f"frames (allowed {ALLOWED_GROWTH}) — a per-frame allocation "
        f"crept into the hot path")
