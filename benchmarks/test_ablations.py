"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Control channel vs bare pipes (§4.1 vs §4.2): what the per-command
   handshake costs, and what the bare pipes' implicit readahead buys on
   sequential reads.
2. Caching path (Figure 5): none vs disk vs memory, one strategy.
3. Stream chunk size in the simple process strategy's pumps.
4. Eager read injection (§4.2 "eagerly inject data into the read
   pipe"): prefetching sentinel vs demand-driven sentinel.
"""

import pytest

from repro.afsim.backings import make_backing
from repro.afsim.sessions import open_session
from repro.afsim.workload import measure_point
from repro.ntos import Kernel, NTFileSystem

CALLS = 150
BLOCK = 512


def run_session_reads(strategy, path="network", calls=CALLS, block=BLOCK,
                      **options):
    """Per-op virtual µs of sequential reads through one session."""
    kernel = Kernel()
    fs = NTFileSystem(kernel)
    app = kernel.create_process("app")
    out = {}

    def main():
        backing = make_backing(kernel, path, fs=fs)
        session = open_session(strategy, kernel, app, backing, **options)
        start = kernel.now
        for _ in range(calls):
            session.read(block)
        out["per_op"] = (kernel.now - start) / calls
        session.close()

    kernel.create_thread(app, main)
    kernel.run()
    return out["per_op"]


class TestAblationControlChannel:
    """Ablation 1: what does the per-operation command handshake cost?"""

    def test_bare_pipes(self, benchmark):
        per_op = benchmark(run_session_reads, "process")
        benchmark.extra_info["virtual_us_per_op"] = round(per_op, 2)

    def test_with_control_channel(self, benchmark):
        per_op = benchmark(run_session_reads, "process-control")
        benchmark.extra_info["virtual_us_per_op"] = round(per_op, 2)

    def test_handshake_costs_latency_on_sequential_reads(self):
        bare = run_session_reads("process")
        control = run_session_reads("process-control")
        # bare pipes pump eagerly (implicit readahead), so sequential
        # reads overlap the remote fetch; the control channel serializes
        # a round trip per operation
        assert control > bare
        # ...but bare pipes cannot express seek/size at all: that is the
        # §4.1 trade, checked functionally in the test suite.


class TestAblationCachePath:
    """Ablation 2: Figure 5's three paths, one strategy (thread)."""

    @pytest.mark.parametrize("path", ["network", "disk", "memory"])
    def test_path(self, benchmark, path):
        benchmark.group = "ablation-cache-path"
        result = benchmark(measure_point, "thread", path, "read", BLOCK,
                           CALLS)
        benchmark.extra_info["virtual_us_per_op"] = round(result.per_op_us, 2)

    def test_ordering(self):
        network = measure_point("thread", "network", "read", BLOCK, CALLS)
        disk = measure_point("thread", "disk", "read", BLOCK, CALLS)
        memory = measure_point("thread", "memory", "read", BLOCK, CALLS)
        assert network.per_op_us > memory.per_op_us
        assert disk.per_op_us > memory.per_op_us


class TestAblationChunkSize:
    """Ablation 3: pump chunk size in the simple process strategy."""

    @pytest.mark.parametrize("chunk", [128, 1024, 4096])
    def test_chunk(self, benchmark, chunk):
        benchmark.group = "ablation-chunk"
        per_op = benchmark(run_session_reads, "process", chunk=chunk)
        benchmark.extra_info["virtual_us_per_op"] = round(per_op, 2)

    def test_tiny_chunks_cost_more(self):
        tiny = run_session_reads("process", chunk=64)
        large = run_session_reads("process", chunk=4096)
        # more pipe operations and more remote round trips per byte
        assert tiny > large


class TestAblationReadahead:
    """Ablation 4: §4.2's eager injection into the read pipe."""

    @pytest.mark.parametrize("readahead", [False, True],
                             ids=["demand", "eager"])
    def test_readahead(self, benchmark, readahead):
        benchmark.group = "ablation-readahead"
        per_op = benchmark(run_session_reads, "process-control",
                           readahead=readahead)
        benchmark.extra_info["virtual_us_per_op"] = round(per_op, 2)

    def test_eager_injection_helps_sequential_network_reads(self):
        demand = run_session_reads("process-control", readahead=False)
        eager = run_session_reads("process-control", readahead=True)
        assert eager < demand

    def test_eager_injection_near_noop_on_memory_path(self):
        demand = run_session_reads("process-control", path="memory",
                                   readahead=False)
        eager = run_session_reads("process-control", path="memory",
                                  readahead=True)
        # nothing to overlap: the backing has no wait to hide; allow a
        # modest swing either way from the extra prefetch work
        assert abs(eager - demand) < 0.5 * demand


class TestAblationCostRegime:
    """Ablation 5: NT-era vs 2020s cost calibration (robustness)."""

    @pytest.mark.parametrize("regime", ["nt1999", "modern"])
    def test_regime(self, benchmark, regime):
        from repro.ntos.costs import CostModel

        benchmark.group = "ablation-cost-regime"
        costs = CostModel() if regime == "nt1999" else CostModel.modern()
        result = benchmark(measure_point, "process-control", "network",
                           "read", BLOCK, CALLS, costs)
        benchmark.extra_info["virtual_us_per_op"] = round(result.per_op_us, 2)

    def test_read_ordering_holds_in_both_regimes(self):
        from repro.ntos.costs import CostModel

        for costs in (CostModel(), CostModel.modern()):
            process = measure_point("process-control", "memory", "read",
                                    BLOCK, CALLS, costs=costs)
            thread = measure_point("thread", "memory", "read", BLOCK,
                                   CALLS, costs=costs)
            dll = measure_point("dll", "memory", "read", BLOCK, CALLS,
                                costs=costs)
            assert process.per_op_us > thread.per_op_us > dll.per_op_us


class TestAblationSentinelWork:
    """Ablation 6: §6's additivity claim — framework vs functionality."""

    @pytest.mark.parametrize("work_us", [0, 100, 400])
    def test_work(self, benchmark, work_us):
        from repro.afsim.scaling import measure_with_sentinel_work

        benchmark.group = "ablation-sentinel-work"
        per_op = benchmark(measure_with_sentinel_work, "thread",
                           float(work_us))
        benchmark.extra_info["virtual_us_per_op"] = round(per_op, 2)
        benchmark.extra_info["injected_work_us"] = work_us


class TestAblationConcurrency:
    """Ablation 7: aggregate throughput with N concurrent clients."""

    @pytest.mark.parametrize("clients", [1, 4, 8])
    def test_clients(self, benchmark, clients):
        from repro.afsim.scaling import measure_concurrent

        benchmark.group = "ablation-concurrency"
        result = benchmark(measure_concurrent, "thread", clients,
                           "memory", 512, 60)
        benchmark.extra_info["throughput_ops_per_ms"] = round(
            result.throughput_ops_per_ms, 2)
