"""Figure 6(a): sentinel uses a remote source (caching path 1).

Regenerates both the Read and Write panels: Process(-with-control),
Thread, DLL(-only) and the direct-access baseline, per block size.
Virtual per-op microseconds land in ``extra_info``.
"""

import pytest

from benchmarks.conftest import BENCH_BLOCKS

STRATEGIES = ("process-control", "thread", "dll", "baseline")


@pytest.mark.parametrize("block", BENCH_BLOCKS)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFig6aRead:
    def test_read(self, sim_point, strategy, block):
        result = sim_point(strategy, "network", "read", block)
        assert result.per_op_us > 0


@pytest.mark.parametrize("block", BENCH_BLOCKS)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFig6aWrite:
    def test_write(self, sim_point, strategy, block):
        result = sim_point(strategy, "network", "write", block)
        assert result.per_op_us > 0


def test_fig6a_shape(benchmark):
    """The whole panel, with the paper's ordering asserted."""
    from repro.afsim.figure6 import check_claims, run_panel

    def panel():
        return {op: run_panel("a", op, calls=150) for op in ("read", "write")}

    series = benchmark.pedantic(panel, rounds=1, iterations=1)
    for op in ("read", "write"):
        assert check_claims(series[op], "a", op) == []
    benchmark.extra_info["process_read_2048_us"] = round(
        series["read"]["process"][2048].per_op_us, 1)
    benchmark.extra_info["paper_read_ymax_us"] = 560.0
