"""Schema drift guard for the published benchmark artifacts.

``BENCH_cache.json`` and ``BENCH_recovery.json`` are uploaded from CI
and read by comparison tooling, so their key sets are a contract:
sections and measurements may be *added*, but an existing key vanishing
(or changing to a non-numeric value) must fail the build.  The checked
-in copies at the repo root are validated here; the CI benchmark jobs
re-run this module after regenerating the files, so a code change that
silently drops a key is caught in the same job that produced it.
"""

import json
import pathlib

import pytest

from benchmarks.conftest import (
    BENCH_ADAPTIVE_RESULT_KEYS,
    BENCH_CACHE_RESULT_KEYS,
    BENCH_FANOUT_RESULT_KEYS,
    BENCH_RECOVERY_RESULT_KEYS,
    BENCH_SHM_RESULT_KEYS,
    BENCH_SWARM_RESULT_KEYS,
    check_bench_schema,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load(name: str) -> dict:
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not present (benchmark not yet run)")
    return json.loads(path.read_text())


def test_bench_cache_schema():
    check_bench_schema(_load("BENCH_cache.json"), BENCH_CACHE_RESULT_KEYS,
                       name="BENCH_cache.json")


def test_bench_recovery_schema():
    check_bench_schema(_load("BENCH_recovery.json"),
                       BENCH_RECOVERY_RESULT_KEYS,
                       name="BENCH_recovery.json")


def test_bench_shm_schema():
    check_bench_schema(_load("BENCH_shm.json"), BENCH_SHM_RESULT_KEYS,
                       name="BENCH_shm.json")


def test_bench_swarm_schema():
    check_bench_schema(_load("BENCH_swarm.json"), BENCH_SWARM_RESULT_KEYS,
                       name="BENCH_swarm.json")


def test_bench_fanout_schema():
    check_bench_schema(_load("BENCH_fanout.json"), BENCH_FANOUT_RESULT_KEYS,
                       name="BENCH_fanout.json")


def test_bench_adaptive_schema():
    check_bench_schema(_load("BENCH_adaptive.json"),
                       BENCH_ADAPTIVE_RESULT_KEYS,
                       name="BENCH_adaptive.json")


def test_schema_checker_rejects_dropped_key():
    doc = json.loads((REPO_ROOT / "BENCH_recovery.json").read_text()) \
        if (REPO_ROOT / "BENCH_recovery.json").exists() else None
    if doc is None:
        pytest.skip("BENCH_recovery.json not present")
    del doc["results"]["kill_to_first_read"]["p50_ms"]
    with pytest.raises(AssertionError, match="p50_ms"):
        check_bench_schema(doc, BENCH_RECOVERY_RESULT_KEYS)
