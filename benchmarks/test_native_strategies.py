"""Native-runtime §6 analogue: real Python strategy overheads.

Times real ``repro.core`` read/write operations per strategy over the
three backing paths (in-memory data part, on-disk container, simulated
remote source), on this machine's wall clock.  The absolute numbers are
host-dependent; the claim mirrored from the paper is relative: the
in-process strategies (inproc ≈ DLL-only, thread ≈ DLL-with-thread)
cost far less per operation than the child-process strategy with its
control channel.
"""

import pytest

from repro.core import create_active, open_active
from repro.net import Address, FileServer, Network

NULL = "repro.sentinels.null:NullFilterSentinel"
REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"

BLOCK = 1024


def make_memory_file(tmp_path):
    path = tmp_path / "mem.af"
    create_active(path, NULL, data=b"\x00" * 65536, meta={"data": "memory"})
    return str(path), None


def make_disk_file(tmp_path):
    path = tmp_path / "disk.af"
    create_active(path, NULL, data=b"\x00" * 65536)
    return str(path), None


def make_network_file(tmp_path):
    network = Network()
    server = network.bind(Address("files", 1), FileServer())
    server.put_file("data.bin", b"\x00" * 65536)
    path = tmp_path / "net.af"
    create_active(path, REMOTE,
                  params={"address": "files:1", "path": "data.bin"},
                  meta={"data": "memory"})
    return str(path), network


BACKINGS = {
    "memory": make_memory_file,
    "disk": make_disk_file,
    "network": make_network_file,
}

STRATEGIES = ("inproc", "thread", "process-control")


@pytest.mark.parametrize("backing", sorted(BACKINGS))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_read_1k(benchmark, tmp_path, strategy, backing):
    benchmark.group = f"native-read-{backing}"
    path, network = BACKINGS[backing](tmp_path)
    stream = open_active(path, "rb", strategy=strategy, network=network)
    position = [0]

    def op():
        stream.seek(position[0] % 32768)
        data = stream.read(BLOCK)
        position[0] += BLOCK
        return data

    try:
        data = benchmark(op)
        assert len(data) == BLOCK
    finally:
        stream.close()


@pytest.mark.parametrize("backing", sorted(BACKINGS))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_write_1k(benchmark, tmp_path, strategy, backing):
    benchmark.group = f"native-write-{backing}"
    path, network = BACKINGS[backing](tmp_path)
    stream = open_active(path, "r+b", strategy=strategy, network=network)
    payload = b"\x5a" * BLOCK
    position = [0]

    def op():
        stream.seek(position[0] % 32768)
        written = stream.write(payload)
        position[0] += BLOCK
        return written

    try:
        written = benchmark(op)
        assert written == BLOCK
    finally:
        stream.close()


def test_inproc_cheaper_than_process(tmp_path):
    """Sanity on the relative claim without the benchmark timer."""
    import time

    path, _ = make_memory_file(tmp_path)

    def time_reads(strategy, n=300):
        stream = open_active(path, "rb", strategy=strategy)
        stream.read(1)  # warm the path
        start = time.perf_counter()
        for _ in range(n):
            stream.seek(0)
            stream.read(BLOCK)
        elapsed = time.perf_counter() - start
        stream.close()
        return elapsed / n

    inproc = time_reads("inproc")
    process = time_reads("process-control")
    assert process > inproc
