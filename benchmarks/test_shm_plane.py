"""Shared-memory data plane benchmark (ISSUE PR 5 acceptance numbers).

Three transport legs over the same process-control stack, same child,
same container — only the bulk-byte path differs:

* ``inline``  — everything on the pipe, JSON headers
  (``REPRO_NO_SHM`` + ``REPRO_NO_BINHDR``): the pre-PR baseline;
* ``binhdr``  — inline payloads, struct-packed hot-op headers;
* ``shm``     — payloads ride the per-host shared-memory slab.

Two workload shapes per block size:

* *synchronous* ``read_at``/``write_at`` — one command in flight, so
  round-trip latency bounds small blocks for every leg alike;
* *sequential bulk* — vectored ``read_multi``/``write_extents`` (the
  cache-flush / scatter-gather shape) and ``read_at_into``, where
  latency amortizes and the byte path dominates.  This is where the
  plane pays: the acceptance gate asserts shm beats inline here for
  64 KiB+ blocks.

Numbers land in ``BENCH_shm.json`` (schema-guarded by
``benchmarks/test_bench_schema.py``); CI archives the artifact.
"""

import json
import os
import time

import pytest

from repro.core import control
from repro.core.container import Container
from repro.core.spec import SentinelSpec
from repro.core.strategies import process_control

SPEC = SentinelSpec("repro.sentinels.null:NullFilterSentinel")

RESULTS_PATH = os.environ.get("BENCH_SHM_JSON", "BENCH_shm.json")

#: Block-size axis: below / at / far above the 32 KiB shm threshold.
BLOCKS = (4096, 65536, 1048576)

#: Bytes moved per measurement (per repetition).
TOTAL = 16 * 1024 * 1024

#: Best-of repetitions (first repetition also warms the slab and pools).
REPS = 3

#: The gate: sequential-bulk shm throughput vs the inline leg at 64 KiB+.
#: Typical runs show 2-3.7x; asserted with headroom against noisy CI.
MIN_BULK_SPEEDUP = 1.5

LEGS = {
    "inline": {"env": {"REPRO_NO_SHM": "1", "REPRO_NO_BINHDR": "1"},
               "binary_headers": False},
    "binhdr": {"env": {"REPRO_NO_SHM": "1"}, "binary_headers": True},
    "shm": {"env": {}, "binary_headers": True},
}

_results: dict[str, dict] = {}


def _flush(block: int) -> None:
    with open(RESULTS_PATH, "w") as handle:
        json.dump({"block_size": block, "total_bytes": TOTAL,
                   "strategy": "process-control",
                   "legs": sorted(LEGS),
                   "results": _results}, handle, indent=2)


def _record(name: str, entry: dict, block: int) -> None:
    _results[name] = entry
    _flush(block)
    print(f"\n{name}: {entry}")


def _measure(leg: str, block: int, tmp_path) -> dict[str, float]:
    """One leg at one block size: MB/s per workload shape, best-of."""
    spec = LEGS[leg]
    for key, value in spec["env"].items():
        os.environ[key] = value
    saved = control.BINARY_HEADERS
    control.BINARY_HEADERS = spec["binary_headers"]
    try:
        path = tmp_path / f"{leg}-{block}.af"
        container = Container.create(path, SPEC, data=b"")
        session = process_control.open_session(container, pooled=False)
        try:
            nblocks = TOTAL // block
            data = b"\xab" * block
            extents = [(i * block, block) for i in range(nblocks)]
            writes = [(i * block, data) for i in range(nblocks)]
            sink = bytearray(TOTAL)
            best: dict[str, float] = {}

            def run(shape: str, fn) -> None:
                start = time.perf_counter()
                fn()
                rate = TOTAL / (time.perf_counter() - start) / 2**20
                best[shape] = max(best.get(shape, 0.0), rate)

            def sync_writes():
                for offset, chunk in writes:
                    session.write_at(offset, chunk)

            def sync_reads():
                for offset, size in extents:
                    session.read_at(offset, size)

            for _ in range(REPS):
                run("write_sync", sync_writes)
                run("read_sync", sync_reads)
                run("write_seq", lambda: session.write_extents(writes))
                run("read_seq", lambda: session.read_multi(extents))
                run("read_into",
                    lambda: session.read_at_into(0, memoryview(sink)))
            return {shape: round(rate, 1) for shape, rate in best.items()}
        finally:
            session.close()
    finally:
        control.BINARY_HEADERS = saved
        for key in spec["env"]:
            os.environ.pop(key, None)


@pytest.mark.parametrize("block", BLOCKS)
def test_shm_plane_throughput(tmp_path, block):
    measured = {leg: _measure(leg, block, tmp_path) for leg in LEGS}
    for leg, rates in measured.items():
        _record(f"{leg}_{block}", {"block": block, **rates}, block)

    speedups = {
        shape: round(measured["shm"][shape] / measured["inline"][shape], 2)
        for shape in measured["shm"]
    }
    _record(f"speedup_{block}", {"block": block, **speedups}, block)

    if block >= 65536:
        # The acceptance gate: sequential bulk transfers must beat the
        # inline baseline decisively once blocks clear the threshold.
        for shape in ("read_seq", "write_seq", "read_into"):
            assert speedups[shape] >= MIN_BULK_SPEEDUP, \
                f"{shape}@{block}: shm {measured['shm'][shape]} MB/s vs " \
                f"inline {measured['inline'][shape]} MB/s " \
                f"({speedups[shape]}x < {MIN_BULK_SPEEDUP}x)"
    else:
        # Below the threshold shm must get out of the way: payloads stay
        # inline and throughput stays within noise of the baseline.
        assert speedups["read_sync"] > 0.5
        assert speedups["write_sync"] > 0.5
