"""Recovery benchmark: kill-to-first-successful-read latency (PR 3).

The workload reads a remote active file over the process-control
strategy while the sentinel host is SIGKILLed at known points.  The
number that matters is the *recovery latency*: from the moment the host
process is dead to the moment the next read returns correct bytes —
supervision detecting the crash, the pool respawning a host, the lease
re-opening the session, the journal replaying, and the retried read
completing.

Each run writes its numbers to ``BENCH_recovery.json`` so CI can
archive the artifact.
"""

import json
import os
import signal
import time

import pytest

from repro.core import create_active, open_active
from repro.net import Address, FileServer, Network

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"

BLOCK = 4096
TOTAL = 256 * 1024           # 256 KiB workload
KILLS = 5                    # recovery samples per run

#: Where the numbers land; CI uploads this file as an artifact.
RESULTS_PATH = os.environ.get("BENCH_RECOVERY_JSON", "BENCH_recovery.json")

_results: dict[str, dict] = {}


def _record(name: str, samples: list[float], **extra) -> None:
    ordered = sorted(samples)
    entry = {
        "samples": len(samples),
        "min_ms": round(ordered[0] * 1e3, 2),
        "p50_ms": round(ordered[len(ordered) // 2] * 1e3, 2),
        "max_ms": round(ordered[-1] * 1e3, 2),
        "mean_ms": round(sum(samples) / len(samples) * 1e3, 2),
        **extra,
    }
    _results[name] = entry
    with open(RESULTS_PATH, "w") as handle:
        json.dump({"block_size": BLOCK, "total_bytes": TOTAL,
                   "strategy": "process-control",
                   "results": _results}, handle, indent=2)
    print(f"\n{name}: {entry}")


@pytest.fixture
def origin():
    network = Network()
    server = network.bind(Address("origin", 7000), FileServer())
    content = bytes((3 * i + (i >> 7)) % 256 for i in range(TOTAL))
    server.put_file("data/blob", content)
    return network, content


def test_kill_to_first_successful_read(tmp_path, origin):
    network, content = origin
    path = tmp_path / "blob.af"
    create_active(path, REMOTE,
                  params={"address": "origin:7000", "path": "data/blob",
                          "cache": "memory", "block_size": BLOCK},
                  meta={"data": "memory"})

    stream = open_active(str(path), "rb", strategy="process-control",
                         network=network)
    nblocks = TOTAL // BLOCK
    kill_every = nblocks // (KILLS + 1)
    samples = []
    out = bytearray()
    for i in range(nblocks):
        if len(samples) < KILLS and i > 0 and i % kill_every == 0:
            proc = stream.session.host.proc
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            killed_at = time.perf_counter()
            chunk = stream.read(BLOCK)
            samples.append(time.perf_counter() - killed_at)
        else:
            chunk = stream.read(BLOCK)
        assert len(chunk) == BLOCK
        out += chunk
    respawns = stream.session._lease.respawns
    stream.close()

    assert bytes(out) == content          # recovery never corrupted data
    assert respawns == KILLS
    _record("kill_to_first_read", samples, kills=KILLS, respawns=respawns)

    # Recovery is respawn + backoff + replay; it must stay well under the
    # per-attempt timeout or supervision is not pulling its weight.
    p50 = sorted(samples)[len(samples) // 2]
    assert p50 < 4.0, f"median recovery latency {p50:.2f}s too slow"
