"""Swarm load benchmark: hundreds of concurrent opens on ONE host.

The event-loop host's reason to exist is "multiple opens spawn multiple
synchronizing sentinels" at a scale thread-per-channel never reached.
This benchmark opens ``REPRO_SWARM_CHANNELS`` logical sessions (default
500) on a single pooled host child, hammers them with a mixed
read/write/stat workload from a fixed driver-thread pool, and reports
p50/p95/p99 latency against a declared SLO — the trajectory's first
"heavy traffic" number.

Artifact: ``BENCH_swarm.json`` at the repo root, schema-guarded by
``benchmarks/test_bench_schema.py`` (section ``mixed_swarm``).

Environment knobs (CI smoke runs reduced):

* ``REPRO_SWARM_CHANNELS`` — concurrent logical channels (default 500)
* ``REPRO_SWARM_OPS``      — rounds of one-op-per-channel (default 20)
* ``REPRO_SWARM_SLO_US``   — p95 SLO in microseconds (default 500000;
  at full width the host carries ~500 concurrent ops, so most of the
  tail is honest queueing delay — the SLO bounds regression, with
  headroom for slow CI machines)
"""

import json
import os
import pathlib
import threading
import time

from benchmarks.conftest import BENCH_SWARM_RESULT_KEYS, check_bench_schema
from repro.core import create_active
from repro.core.control import raise_for_response
from repro.core.runner import SentinelHost

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

NULL = "repro.sentinels.null:NullFilterSentinel"

SWARM_CHANNELS = int(os.environ.get("REPRO_SWARM_CHANNELS", "500"))
OPS_PER_CHANNEL = int(os.environ.get("REPRO_SWARM_OPS", "20"))
SLO_P95_US = int(os.environ.get("REPRO_SWARM_SLO_US", "500000"))

#: Fixed driver-thread pool: the clients are synthetic, the host is
#: the system under test — more driver threads would measure the
#: driver, not the host.
DRIVERS = 16

BLOCK = 4096
DATA_BYTES = 64 * 1024

#: Deterministic mixed workload: mostly reads, a write stripe, a stat.
MIX = ("read", "read", "read", "write", "write", "size")


def _op_fields(kind: str, chan_index: int, round_index: int):
    """One operation of the mix, offsets spread across the data part."""
    offset = ((chan_index * 7919 + round_index * 104729) * BLOCK) \
        % (DATA_BYTES - BLOCK)
    if kind == "read":
        return {"cmd": "read", "offset": offset, "size": BLOCK}, b""
    if kind == "write":
        return {"cmd": "write", "offset": offset}, b"w" * BLOCK
    return {"cmd": "size"}, b""


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def test_swarm_mixed_load(tmp_path):
    path = tmp_path / "swarm.af"
    create_active(path, NULL, data=b"s" * DATA_BYTES,
                  meta={"data": "memory"})
    host = SentinelHost(str(path))
    try:
        chans = [host.open("process-control", timeout=60.0)
                 for _ in range(SWARM_CHANNELS)]

        latencies_by_driver = [[] for _ in range(DRIVERS)]
        moved_by_driver = [0] * DRIVERS
        errors: list[BaseException] = []

        def drive(driver_index: int) -> None:
            # Each driver owns a slice of channels and keeps exactly one
            # op in flight per channel per round: at full width the host
            # sees SWARM_CHANNELS concurrent operations.
            mine = chans[driver_index::DRIVERS]
            base = driver_index
            lats = latencies_by_driver[driver_index]
            try:
                for round_index in range(OPS_PER_CHANNEL):
                    batch = []
                    for j, chan in enumerate(mine):
                        kind = MIX[(base + j + round_index) % len(MIX)]
                        fields, payload = _op_fields(kind, base + j,
                                                     round_index)
                        started = time.monotonic()
                        pending = host.channel.request_async(
                            chan, fields, payload)
                        batch.append((started, pending, len(payload)))
                    for started, pending, sent in batch:
                        reply, out_payload = pending.wait(60.0)
                        lats.append(time.monotonic() - started)
                        raise_for_response(reply)
                        moved_by_driver[driver_index] += sent \
                            + len(out_payload)
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(i,), daemon=True)
                   for i in range(DRIVERS)]
        wall_start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - wall_start
        assert not errors, f"swarm drivers failed: {errors[:3]}"

        info = host.ping(timeout=30.0)
        latencies = sorted(lat for lats in latencies_by_driver
                           for lat in lats)
        total_ops = len(latencies)
        assert total_ops == SWARM_CHANNELS * OPS_PER_CHANNEL
        p50_us = _percentile(latencies, 0.50) * 1e6
        p95_us = _percentile(latencies, 0.95) * 1e6
        p99_us = _percentile(latencies, 0.99) * 1e6
        rejects = int(info.get("host", {}).get("host.rejects", 0))
        # Where did the tail come from?  The host splits end-to-end
        # latency into admission-FIFO wait vs handler execution (PR 7);
        # at full swarm width the wait share is the honest queueing.
        lat = info.get("lat", {})

        doc = {
            "block_size": BLOCK,
            "total_bytes": sum(moved_by_driver),
            "strategy": "process-control",
            "results": {
                "mixed_swarm": {
                    "channels": SWARM_CHANNELS,
                    "ops": total_ops,
                    "elapsed_s": round(elapsed, 4),
                    "ops_per_s": round(total_ops / elapsed, 1)
                    if elapsed else 0.0,
                    "p50_us": round(p50_us, 1),
                    "p95_us": round(p95_us, 1),
                    "p99_us": round(p99_us, 1),
                    "slo_p95_us": SLO_P95_US,
                    "host_threads": int(info["threads"]),
                    "rejects": rejects,
                    "queue_wait_p50_us": round(
                        float(lat.get("queue_wait_p50_us", 0.0)), 1),
                    "queue_wait_p95_us": round(
                        float(lat.get("queue_wait_p95_us", 0.0)), 1),
                    "service_p50_us": round(
                        float(lat.get("service_p50_us", 0.0)), 1),
                    "service_p95_us": round(
                        float(lat.get("service_p95_us", 0.0)), 1),
                },
            },
        }
        check_bench_schema(doc, BENCH_SWARM_RESULT_KEYS,
                           name="BENCH_swarm.json")
        (REPO_ROOT / "BENCH_swarm.json").write_text(
            json.dumps(doc, indent=2) + "\n")
        print(f"\nswarm: {SWARM_CHANNELS} channels x {OPS_PER_CHANNEL} ops "
              f"in {elapsed:.2f}s ({total_ops / elapsed:,.0f} op/s) "
              f"p50={p50_us:.0f}us p95={p95_us:.0f}us p99={p99_us:.0f}us "
              f"host_threads={info['threads']} rejects={rejects} "
              f"qwait_p95={lat.get('queue_wait_p95_us', 0):.0f}us "
              f"service_p95={lat.get('service_p95_us', 0):.0f}us")

        # The acceptance bar: the swarm was sustained (every channel
        # served every round), under SLO, on an O(1)-thread host.
        assert int(info["sessions"]) == SWARM_CHANNELS
        assert p95_us < SLO_P95_US, \
            f"p95 {p95_us:.0f}us breaches the {SLO_P95_US}us SLO"
        assert int(info["threads"]) <= 8
    finally:
        host.shutdown()
