"""Shared helpers for the benchmark harness.

Every Figure 6 benchmark times the *simulation* (wall-clock) and
attaches the measurement that actually matters — virtual microseconds
per operation on the simulated 300 MHz/NT testbed — as
``extra_info["virtual_us_per_op"]``, so ``--benchmark-json`` output
carries the reproduced figure data.
"""

import pytest

#: Reduced block-size axis for benchmarks (full axis in the harness).
BENCH_BLOCKS = (8, 512, 2048)

#: Required top-level keys of every BENCH_*.json artifact.
BENCH_TOP_KEYS = ("block_size", "total_bytes", "strategy", "results")

#: Required per-section result keys of BENCH_cache.json — downstream
#: dashboards key on these names; renaming one is a breaking change.
BENCH_CACHE_RESULT_KEYS = {
    "read_sync_miss_per_block": ("elapsed_s", "ops", "ops_per_s",
                                 "p50_us", "p95_us"),
    "read_pipelined": ("elapsed_s", "ops", "ops_per_s", "p50_us", "p95_us",
                       "readahead", "prefetch_issued", "prefetch_used",
                       "speedup"),
    "write_through": ("elapsed_s", "ops", "ops_per_s", "p50_us", "p95_us"),
    "write_behind": ("elapsed_s", "ops", "ops_per_s", "p50_us", "p95_us",
                     "writeback_bytes", "coalesced_flushes"),
}

#: Required per-section result keys of BENCH_recovery.json.
BENCH_RECOVERY_RESULT_KEYS = {
    "kill_to_first_read": ("samples", "min_ms", "p50_ms", "max_ms",
                           "mean_ms", "kills", "respawns"),
}

#: Workload shapes measured by benchmarks/test_shm_plane.py (MB/s each).
BENCH_SHM_SHAPES = ("write_sync", "read_sync", "write_seq", "read_seq",
                    "read_into")

#: Required per-section result keys of BENCH_shm.json: one section per
#: transport leg per block size, plus a speedup section per block size.
BENCH_SHM_RESULT_KEYS = {
    f"{section}_{block}": ("block",) + BENCH_SHM_SHAPES
    for block in (4096, 65536, 1048576)
    for section in ("inline", "binhdr", "shm", "speedup")
}


#: Required per-section result keys of BENCH_swarm.json — the "heavy
#: traffic" artifact of benchmarks/test_swarm.py.  The ``queue_wait_*``
#: / ``service_*`` keys split end-to-end latency into time spent in the
#: host's admission FIFO vs time actually executing (PR 7).
BENCH_SWARM_RESULT_KEYS = {
    "mixed_swarm": ("channels", "ops", "elapsed_s", "ops_per_s",
                    "p50_us", "p95_us", "p99_us", "slo_p95_us",
                    "host_threads", "rejects",
                    "queue_wait_p50_us", "queue_wait_p95_us",
                    "service_p50_us", "service_p95_us"),
}

#: Required per-section result keys of BENCH_adaptive.json — the
#: adaptive plane-selection / ring-batching artifact of
#: benchmarks/test_adaptive.py (PR 7).
BENCH_ADAPTIVE_RESULT_KEYS = {
    **{f"{leg}_{size}": ("size", "ops", "p50_us", "p95_us")
       for leg in ("fixed", "adaptive", "adaptive_batch")
       for size in (1024, 4096, 65536, 262144)},
    **{f"stream_{leg}": ("ops", "elapsed_s", "ops_per_s")
       for leg in ("fixed", "adaptive", "adaptive_batch")},
    "stream_speedup": ("batched_vs_fixed",),
}


#: Per-leg measurement keys shared by both legs of BENCH_fanout.json.
_BENCH_FANOUT_LEG_KEYS = ("subscribers", "rounds", "reads", "bytes_read",
                          "elapsed_s", "reads_per_s", "read_mbps",
                          "origin_requests", "p50_us", "p95_us")

#: Required per-section result keys of BENCH_fanout.json — the
#: coherence/fan-out artifact of benchmarks/test_fanout.py (PR 10).
BENCH_FANOUT_RESULT_KEYS = {
    "independent_caches": _BENCH_FANOUT_LEG_KEYS,
    "coherent_fanout": _BENCH_FANOUT_LEG_KEYS + (
        "fresh_read_p50_ms", "fresh_read_p95_ms", "fresh_read_slo_ms",
        "published", "delivered", "lease_invalidated"),
    "speedup": ("aggregate_read_throughput", "origin_request_reduction"),
}


def check_bench_schema(doc, result_keys, *, name="benchmark json"):
    """Assert a BENCH_*.json document keeps its published keys.

    Extra keys are fine (the schema may grow); missing or non-numeric
    published keys fail loudly with the offending path.
    """
    missing = [key for key in BENCH_TOP_KEYS if key not in doc]
    assert not missing, f"{name}: missing top-level keys {missing}"
    results = doc["results"]
    for section, keys in result_keys.items():
        assert section in results, f"{name}: missing results[{section!r}]"
        for key in keys:
            assert key in results[section], \
                f"{name}: missing results[{section!r}][{key!r}]"
            value = results[section][key]
            assert isinstance(value, (int, float)), \
                f"{name}: results[{section!r}][{key!r}] is {type(value).__name__}"

#: Calls per simulated point (paper: 1000; reduced to keep wall time sane).
BENCH_CALLS = 200


def record_sim_point(benchmark, strategy, path, op, block):
    """Run one simulated Figure 6 point under the benchmark timer."""
    from repro.afsim.workload import measure_point

    result = benchmark(measure_point, strategy, path, op, block,
                       BENCH_CALLS)
    benchmark.extra_info["virtual_us_per_op"] = round(result.per_op_us, 2)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["path"] = path
    benchmark.extra_info["op"] = op
    benchmark.extra_info["block"] = block
    return result


@pytest.fixture
def sim_point(benchmark):
    def runner(strategy, path, op, block):
        return record_sim_point(benchmark, strategy, path, op, block)

    return runner
