"""Shared helpers for the benchmark harness.

Every Figure 6 benchmark times the *simulation* (wall-clock) and
attaches the measurement that actually matters — virtual microseconds
per operation on the simulated 300 MHz/NT testbed — as
``extra_info["virtual_us_per_op"]``, so ``--benchmark-json`` output
carries the reproduced figure data.
"""

import pytest

#: Reduced block-size axis for benchmarks (full axis in the harness).
BENCH_BLOCKS = (8, 512, 2048)

#: Calls per simulated point (paper: 1000; reduced to keep wall time sane).
BENCH_CALLS = 200


def record_sim_point(benchmark, strategy, path, op, block):
    """Run one simulated Figure 6 point under the benchmark timer."""
    from repro.afsim.workload import measure_point

    result = benchmark(measure_point, strategy, path, op, block,
                       BENCH_CALLS)
    benchmark.extra_info["virtual_us_per_op"] = round(result.per_op_us, 2)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["path"] = path
    benchmark.extra_info["op"] = op
    benchmark.extra_info["block"] = block
    return result


@pytest.fixture
def sim_point(benchmark):
    def runner(strategy, path, op, block):
        return record_sim_point(benchmark, strategy, path, op, block)

    return runner
