"""Pipelined cache benchmark: read-ahead and write-behind vs the
synchronous per-block paths (ISSUE PR 2 acceptance numbers).

The origin is a :class:`FileServer` behind a simulated WAN-ish link
(500 µs one-way latency, 1 Gbps) on a :class:`WallClock`, so every
exchange really costs wall time and latency dominates per-block
round trips.  The client runs the process-control strategy — the full
multiplexed-channel stack, bridge included.

* read-ahead: a sequential 1 MiB scan in 4 KiB reads with a 32-block
  prefetch window must beat the same scan with one synchronous origin
  exchange per block by >= 3x.
* write-behind: writing 1 MiB in 4 KiB chunks with coalesced flushing
  must beat write-through (one origin exchange per write) by >= 2x.

Each run appends its numbers (ops/s, per-op p50/p95) to
``BENCH_cache.json`` so CI can archive the artifact.
"""

import json
import os
import time

import pytest

from repro.core import create_active, open_active
from repro.net import Address, FileServer, LinkProfile, Network, WallClock

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"

BLOCK = 4096
TOTAL = 1024 * 1024          # 1 MiB workload
NBLOCKS = TOTAL // BLOCK
READAHEAD = 32               # max prefetch window, in blocks
WRITEBACK_BYTES = 256 * 1024

#: Where the numbers land; CI uploads this file as an artifact.
RESULTS_PATH = os.environ.get("BENCH_CACHE_JSON", "BENCH_cache.json")

_results: dict[str, dict] = {}


def _record(name: str, elapsed: float, per_op: list[float], **extra) -> None:
    ordered = sorted(per_op)
    entry = {
        "elapsed_s": round(elapsed, 4),
        "ops": len(per_op),
        "ops_per_s": round(len(per_op) / elapsed, 1),
        "p50_us": round(ordered[len(ordered) // 2] * 1e6, 1),
        "p95_us": round(ordered[int(len(ordered) * 0.95)] * 1e6, 1),
        **extra,
    }
    _results[name] = entry
    with open(RESULTS_PATH, "w") as handle:
        json.dump({"block_size": BLOCK, "total_bytes": TOTAL,
                   "link": {"latency_us": 500.0, "bandwidth_mbps": 1000.0},
                   "strategy": "process-control",
                   "results": _results}, handle, indent=2)
    print(f"\n{name}: {entry}")


@pytest.fixture
def wan():
    """A network whose exchanges cost real wall time."""
    network = Network(profile=LinkProfile(latency_us=500.0,
                                          bandwidth_mbps=1000.0),
                      clock=WallClock())
    server = network.bind(Address("origin", 7000), FileServer())
    return network, server


def _make_remote(tmp_path, name, **params):
    path = tmp_path / f"{name}.af"
    create_active(path, REMOTE,
                  params={"address": "origin:7000", "path": "data/blob",
                          "cache": "memory", "block_size": BLOCK, **params},
                  meta={"data": "memory"})
    return str(path)


def _timed_scan(path, network):
    """Sequential 1 MiB read in 4 KiB steps; returns (elapsed, per-op)."""
    per_op = []
    with open_active(path, "rb", strategy="process-control",
                     network=network) as stream:
        stream.read(BLOCK)  # warm-up: open + first fault outside timing
        stream.seek(0)
        started = time.perf_counter()
        for _ in range(NBLOCKS):
            op_started = time.perf_counter()
            chunk = stream.read(BLOCK)
            per_op.append(time.perf_counter() - op_started)
            assert len(chunk) == BLOCK
        elapsed = time.perf_counter() - started
        stats = stream.cache_stats()
    return elapsed, per_op, stats


def _timed_write(path, network, payload):
    """Sequential 1 MiB write in 4 KiB steps; flush included in timing."""
    per_op = []
    with open_active(path, "r+b", strategy="process-control",
                     network=network) as stream:
        started = time.perf_counter()
        for i in range(NBLOCKS):
            op_started = time.perf_counter()
            stream.write(payload)
            per_op.append(time.perf_counter() - op_started)
        stream.flush()
        elapsed = time.perf_counter() - started
        stats = stream.cache_stats()
    return elapsed, per_op, stats


def test_readahead_speedup(tmp_path, wan):
    network, server = wan
    server.put_file("data/blob", os.urandom(TOTAL))

    sync_path = _make_remote(tmp_path, "sync")                # miss per block
    pipelined_path = _make_remote(tmp_path, "pipelined",
                                  readahead=READAHEAD)

    sync_elapsed, sync_ops, _ = _timed_scan(sync_path, network)
    pipe_elapsed, pipe_ops, stats = _timed_scan(pipelined_path, network)

    _record("read_sync_miss_per_block", sync_elapsed, sync_ops)
    _record("read_pipelined", pipe_elapsed, pipe_ops,
            readahead=READAHEAD,
            prefetch_issued=stats["prefetch_issued"],
            prefetch_used=stats["prefetch_used"])

    assert stats["prefetch_issued"] > 0
    speedup = sync_elapsed / pipe_elapsed
    _results["read_pipelined"]["speedup"] = round(speedup, 2)
    assert speedup >= 3.0, (
        f"read-ahead speedup {speedup:.2f}x < 3x "
        f"({sync_elapsed:.3f}s vs {pipe_elapsed:.3f}s)")


def test_writeback_speedup(tmp_path, wan):
    network, server = wan
    server.put_file("data/blob", bytes(TOTAL))
    payload = b"\xa5" * BLOCK

    through_path = _make_remote(tmp_path, "through")          # write-through
    behind_path = _make_remote(tmp_path, "behind", writeback=True,
                               writeback_bytes=WRITEBACK_BYTES)

    through_elapsed, through_ops, _ = _timed_write(through_path, network,
                                                   payload)
    behind_elapsed, behind_ops, stats = _timed_write(behind_path, network,
                                                     payload)

    _record("write_through", through_elapsed, through_ops)
    _record("write_behind", behind_elapsed, behind_ops,
            writeback_bytes=WRITEBACK_BYTES,
            coalesced_flushes=stats["coalesced_flushes"])

    assert server.get_file("data/blob")[:TOTAL] == payload * NBLOCKS
    assert stats["coalesced_flushes"] >= 1
    speedup = through_elapsed / behind_elapsed
    _results["write_behind"]["speedup"] = round(speedup, 2)
    assert speedup >= 2.0, (
        f"write-behind speedup {speedup:.2f}x < 2x "
        f"({through_elapsed:.3f}s vs {behind_elapsed:.3f}s)")
