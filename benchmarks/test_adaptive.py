"""Adaptive data-plane selection + ring batching benchmark (ISSUE PR 7).

Three legs over the same process-control stack, same child, same
container — only the selection/submission machinery differs:

* ``fixed``          — static 32 KiB shm threshold, no ring
  (``REPRO_NO_ADAPTIVE`` + ``REPRO_NO_BATCH``): the pre-PR baseline;
* ``adaptive``       — the online cost model picks the plane per op
  family and size bucket (``REPRO_NO_BATCH`` still set);
* ``adaptive_batch`` — cost model plus the submission/completion ring
  coalescing pipelined ops into multi-op frames.

Two workload shapes:

* *synchronous* ``read_at`` per size bucket — the cost model must never
  make a bucket slower than the fixed threshold (its exploration taxes
  a bounded fraction of ops and its steady-state pick is the measured
  argmin);
* *pipelined 4 KiB stream* — many ops in flight on one channel, where
  the ring amortizes frame and wakeup cost.  The acceptance gate:
  batched throughput ≥ 1.5x the unbatched baseline.

Numbers land in ``BENCH_adaptive.json`` (schema-guarded by
``benchmarks/test_bench_schema.py``); CI archives the artifact.

Environment knobs (CI smoke runs reduced):

* ``REPRO_ADAPTIVE_SYNC_OPS``   — sync ops per size bucket (default 200)
* ``REPRO_ADAPTIVE_STREAM_OPS`` — pipelined stream ops (default 600)
"""

import json
import os
import pathlib
import time

from benchmarks.conftest import (BENCH_ADAPTIVE_RESULT_KEYS,
                                 check_bench_schema)
from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.spec import SentinelSpec
from repro.core.strategies import process_control

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SPEC = SentinelSpec("repro.sentinels.null:NullFilterSentinel")

RESULTS_PATH = os.environ.get("BENCH_ADAPTIVE_JSON", "BENCH_adaptive.json")

#: Size axis: well below / just below / above / far above the static
#: 32 KiB threshold — the buckets where a wrong plane pick would show.
SIZES = (1024, 4096, 65536, 262144)

SYNC_OPS = int(os.environ.get("REPRO_ADAPTIVE_SYNC_OPS", "200"))
STREAM_OPS = int(os.environ.get("REPRO_ADAPTIVE_STREAM_OPS", "600"))
STREAM_BLOCK = 4096
STREAM_WINDOW = 64  # ops kept in flight on the streaming channel

#: Best-of repetitions (first repetition also warms the cost model's
#: buckets and the pools) — the same noise filter test_shm_plane uses.
REPS = 3

#: The batching gate: pipelined 4 KiB stream op/s vs the unbatched
#: baseline.  Typical runs show 2-4x; asserted with headroom for CI.
MIN_STREAM_SPEEDUP = 1.5

#: Noise allowance for the "adaptive never slower" per-bucket check —
#: sync p50s on a loaded CI box jitter well past a few percent.
NOISE = 1.30

#: Per-leg environment, split by binding time: ``REPRO_NO_BATCH`` is
#: read once when the host's channel is built, ``REPRO_NO_ADAPTIVE``
#: per plane decision — so the legs can share one interleaved
#: measurement schedule (rep-by-rep, leg-by-leg) and machine drift
#: hits all three alike instead of whichever leg ran last.
LEGS = {
    "fixed": {"open": {"REPRO_NO_BATCH": "1"},
              "op": {"REPRO_NO_ADAPTIVE": "1"}},
    "adaptive": {"open": {"REPRO_NO_BATCH": "1"}, "op": {}},
    "adaptive_batch": {"open": {}, "op": {}},
}

DATA_BYTES = max(SIZES) * 4

_results: dict[str, dict] = {}


def _flush() -> None:
    with open(RESULTS_PATH, "w") as handle:
        json.dump({"block_size": STREAM_BLOCK, "total_bytes": DATA_BYTES,
                   "strategy": "process-control",
                   "legs": sorted(LEGS),
                   "results": _results}, handle, indent=2)


def _record(name: str, entry: dict) -> None:
    _results[name] = entry
    _flush()
    print(f"\n{name}: {entry}")


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class _env:
    """Set environment variables for the duration of a ``with`` block."""

    def __init__(self, env: dict) -> None:
        self.env = env

    def __enter__(self):
        for key, value in self.env.items():
            os.environ[key] = value

    def __exit__(self, *exc):
        for key in self.env:
            os.environ.pop(key, None)
        return False


def _sync_pass(session, size: int) -> tuple[float, float]:
    """One pass of SYNC_OPS synchronous reads; (p50_us, p95_us)."""
    span = DATA_BYTES - size
    lats = []
    for i in range(SYNC_OPS):
        started = time.perf_counter()
        session.read_at((i * size) % span, size)
        lats.append(time.perf_counter() - started)
    lats.sort()
    return (_percentile(lats, 0.50) * 1e6, _percentile(lats, 0.95) * 1e6)


def _stream_pass(session) -> float:
    """One pass of the pipelined 4 KiB read stream; elapsed seconds."""
    lease = session._lease
    span = DATA_BYTES - STREAM_BLOCK
    pendings = []
    done = 0
    started = time.perf_counter()
    for i in range(STREAM_OPS):
        pendings.append(lease.request_async(
            {"cmd": "read", "offset": (i * STREAM_BLOCK) % span,
             "size": STREAM_BLOCK}))
        if len(pendings) >= STREAM_WINDOW:
            fields, _ = pendings.pop(0).wait(30.0)
            raise_for_response(fields)
            done += 1
    for pending in pendings:
        fields, _ = pending.wait(30.0)
        raise_for_response(fields)
        done += 1
    elapsed = time.perf_counter() - started
    assert done == STREAM_OPS
    return elapsed


def _measure(tmp_path) -> dict[str, dict[str, dict]]:
    """All legs, one interleaved schedule: best-of-REPS per shape.

    Each repetition measures every leg back-to-back (same sizes, same
    schedule), so a machine slowdown lands on all legs of that rep and
    best-of discards it — sequential per-leg measurement was dominated
    by exactly that drift.  Rep 1 doubles as warm-up: it seeds the
    cost models' buckets so later reps reflect steady-state picks.
    """
    sessions = {}
    measured: dict[str, dict[str, dict]] = {}
    try:
        for leg, spec in LEGS.items():
            with _env(spec["open"]):
                path = tmp_path / f"{leg}.af"
                container = Container.create(path, SPEC,
                                             data=b"\xca" * DATA_BYTES)
                sessions[leg] = process_control.open_session(
                    container, pooled=False)
            measured[leg] = {
                f"sync_{size}": {"size": size, "ops": SYNC_OPS * REPS,
                                 "p50_us": float("inf"),
                                 "p95_us": float("inf")}
                for size in SIZES}
            measured[leg]["stream"] = {"ops": STREAM_OPS,
                                       "elapsed_s": float("inf")}
        for _ in range(REPS):
            for size in SIZES:
                for leg, session in sessions.items():
                    with _env(LEGS[leg]["op"]):
                        p50, p95 = _sync_pass(session, size)
                    entry = measured[leg][f"sync_{size}"]
                    entry["p50_us"] = round(min(entry["p50_us"], p50), 1)
                    entry["p95_us"] = round(min(entry["p95_us"], p95), 1)
            for leg, session in sessions.items():
                with _env(LEGS[leg]["op"]):
                    elapsed = _stream_pass(session)
                entry = measured[leg]["stream"]
                entry["elapsed_s"] = round(min(entry["elapsed_s"],
                                               elapsed), 4)
        for leg in LEGS:
            entry = measured[leg]["stream"]
            entry["ops_per_s"] = round(
                STREAM_OPS / entry["elapsed_s"], 1) \
                if entry["elapsed_s"] else 0.0
        return measured
    finally:
        for session in sessions.values():
            session.close()


def test_adaptive_plane_and_batching(tmp_path):
    measured = _measure(tmp_path)
    for leg, sections in measured.items():
        for shape, entry in sections.items():
            if shape == "stream":
                _record(f"stream_{leg}", entry)
            else:
                _record(f"{leg}_{entry['size']}", entry)

    speedup = round(
        measured["adaptive_batch"]["stream"]["ops_per_s"]
        / measured["fixed"]["stream"]["ops_per_s"], 2)
    _record("stream_speedup", {"batched_vs_fixed": speedup})

    doc = {"block_size": STREAM_BLOCK, "total_bytes": DATA_BYTES,
           "strategy": "process-control", "legs": sorted(LEGS),
           "results": _results}
    check_bench_schema(doc, BENCH_ADAPTIVE_RESULT_KEYS,
                       name="BENCH_adaptive.json")
    (REPO_ROOT / RESULTS_PATH).write_text(json.dumps(doc, indent=2) + "\n")

    # Gate 1: the cost model never loses a size bucket to the static
    # threshold (within CI noise) — adaptation is free downside-wise.
    for size in SIZES:
        fixed = measured["fixed"][f"sync_{size}"]["p50_us"]
        adaptive = measured["adaptive"][f"sync_{size}"]["p50_us"]
        assert adaptive <= fixed * NOISE, \
            f"adaptive p50 {adaptive}us vs fixed {fixed}us @ {size}B"

    # Gate 2: the submission ring pays for itself on a pipelined
    # small-op stream.
    assert speedup >= MIN_STREAM_SPEEDUP, \
        f"batched stream {speedup}x < {MIN_STREAM_SPEEDUP}x " \
        f"({measured['adaptive_batch']['stream']} vs " \
        f"{measured['fixed']['stream']})"
