"""Real-machine benchmarks of the container format and native opens."""

import pytest

from repro.core import Container, create_active, open_active
from repro.core.spec import SentinelSpec

NULL = SentinelSpec("repro.sentinels.null:NullFilterSentinel")


@pytest.mark.parametrize("size", [1024, 65536, 1048576])
def test_container_save(benchmark, tmp_path, size):
    benchmark.group = "container-save"
    container = Container(tmp_path / "bench.af", NULL, data=b"x" * size)

    benchmark(container.save)
    benchmark.extra_info["data_bytes"] = size


@pytest.mark.parametrize("size", [1024, 65536, 1048576])
def test_container_load(benchmark, tmp_path, size):
    benchmark.group = "container-load"
    Container.create(tmp_path / "bench.af", NULL, data=b"x" * size)

    result = benchmark(Container.load, tmp_path / "bench.af")
    assert len(result.data) == size


@pytest.mark.parametrize("strategy", ["inproc", "thread"])
def test_open_close_cycle(benchmark, tmp_path, strategy):
    """Native open cost: sentinel instantiation + (maybe) thread spawn."""
    benchmark.group = "native-open"
    create_active(tmp_path / "o.af",
                  "repro.sentinels.null:NullFilterSentinel", data=b"d")

    def cycle():
        with open_active(tmp_path / "o.af", "rb", strategy=strategy) as f:
            return f.read(1)

    assert benchmark(cycle) == b"d"


def test_open_close_cycle_process(benchmark, tmp_path):
    """Child-interpreter spawn per open: the native lifecycle extreme."""
    benchmark.group = "native-open"
    create_active(tmp_path / "p.af",
                  "repro.sentinels.null:NullFilterSentinel", data=b"d")

    def cycle():
        with open_active(tmp_path / "p.af", "rb",
                         strategy="process-control") as f:
            return f.read(1)

    result = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert result == b"d"


def test_compression_write_throughput(benchmark, tmp_path):
    benchmark.group = "sentinel-throughput"
    create_active(tmp_path / "z.af",
                  "repro.sentinels.compress:CompressionSentinel")
    payload = bytes(range(256)) * 256  # 64 KiB, mildly compressible

    def write_cycle():
        with open_active(tmp_path / "z.af", "wb", strategy="inproc") as f:
            return f.write(payload)

    assert benchmark(write_cycle) == len(payload)
