"""Multi-open scaling: pooled sentinel host vs one process per open.

DESIGN.md §5 ablation 7 asks what multi-open concurrency costs under
each arrangement.  This benchmark opens one container N times
concurrently, does a small read workload per open, and closes — once
over the pooled multiplexed host (one child interpreter, N logical
channels) and once over the legacy arrangement (one child interpreter
per open, via an exclusive lease).  The pooled path must win on
aggregate throughput at N >= 4: interpreter startup is paid once
instead of N times, and operations pipeline over one connection.
"""

import threading
import time

import pytest

from repro.core import create_active
from repro.core.container import Container
from repro.core.strategies import process_control

NULL = "repro.sentinels.null:NullFilterSentinel"

#: Reads performed by each concurrent open.
OPS_PER_OPEN = 25
BLOCK = 1024


def run_opens(container: Container, n: int, pooled: bool) -> None:
    """N concurrent open -> read*OPS -> close cycles; joins all workers."""
    errors = []

    def worker() -> None:
        try:
            session = process_control.open_session(container, pooled=pooled)
            try:
                for i in range(OPS_PER_OPEN):
                    session.read_at((i * BLOCK) % 65536, BLOCK)
            finally:
                session.close()
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


@pytest.fixture
def container(tmp_path):
    path = tmp_path / "multi.af"
    create_active(path, NULL, data=b"\x00" * 65536)
    return Container.load(str(path))


@pytest.mark.parametrize("n_opens", [4, 8])
def test_pooled_host_beats_per_open_spawn(container, n_opens):
    """Aggregate throughput: pooled multiplexed > legacy per-open spawn."""
    # warm-up: pay one-time import/spawn costs outside the timed region
    run_opens(container, 2, pooled=True)
    run_opens(container, 2, pooled=False)

    started = time.perf_counter()
    run_opens(container, n_opens, pooled=True)
    pooled_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    run_opens(container, n_opens, pooled=False)
    legacy_elapsed = time.perf_counter() - started

    pooled_rate = n_opens * OPS_PER_OPEN / pooled_elapsed
    legacy_rate = n_opens * OPS_PER_OPEN / legacy_elapsed
    print(f"\nn={n_opens}: pooled {pooled_elapsed:.3f}s "
          f"({pooled_rate:.0f} ops/s) vs per-open spawn "
          f"{legacy_elapsed:.3f}s ({legacy_rate:.0f} ops/s)")
    assert pooled_elapsed < legacy_elapsed, (
        f"pooled host ({pooled_elapsed:.3f}s) did not beat per-open "
        f"spawn ({legacy_elapsed:.3f}s) at {n_opens} concurrent opens")


@pytest.mark.parametrize("n_opens", [4])
def test_pooled_open_close_cycle(benchmark, container, n_opens):
    """pytest-benchmark timing for the pooled path (trend tracking)."""
    benchmark.group = "multiplex-opens"
    run_opens(container, 2, pooled=True)  # warm the pool
    benchmark(run_opens, container, n_opens, True)
    benchmark.extra_info["n_opens"] = n_opens
    benchmark.extra_info["ops_per_open"] = OPS_PER_OPEN
