"""Fan-out benchmark: one origin write reaches N subscribed opens.

Two legs over the same simulated WAN (500 µs one-way, 1 Gbps — every
origin exchange costs real wall time):

* ``independent_caches`` — N validating opens, no coherence domain.
  Every round the origin moves, so every reader pays its own stat +
  window refetch: origin traffic scales with N.
* ``coherent_fanout`` — the same N opens lease-coherent and subscribed,
  plus one writer.  Each round the writer pushes once and the domain
  push-installs the bytes into all N caches: readers serve the fresh
  window at memory speed with zero origin round trips, and origin
  traffic per round is O(1) instead of O(N).

Reported: aggregate read throughput per leg (the acceptance bar is a
≥5x coherent speedup at 100 subscribers), per-read latency, and the
invalidation-to-fresh-read distribution — the time from the writer's
update landing to each subscriber holding the new bytes — against a
declared SLO.

Artifact: ``BENCH_fanout.json`` at the repo root, schema-guarded by
``benchmarks/test_bench_schema.py``.

Environment knobs (CI smoke runs reduced):

* ``REPRO_BENCH_FANOUT_WIDTH``  — subscribed opens (default 100)
* ``REPRO_BENCH_FANOUT_ROUNDS`` — write/fan-out rounds (default 5)
* ``REPRO_BENCH_FANOUT_SLO_MS`` — invalidation-to-fresh-read p95 SLO
  (default 250 ms: at full width the tail reader drains ~100 queued
  cache reads after each write, with headroom for slow CI machines)
"""

import json
import os
import pathlib
import time

from benchmarks.conftest import BENCH_FANOUT_RESULT_KEYS, check_bench_schema
from repro.core import create_active, open_active
from repro.net import Address, FileServer, LinkProfile, Network, WallClock

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"

WIDTH = int(os.environ.get("REPRO_BENCH_FANOUT_WIDTH", "100"))
ROUNDS = int(os.environ.get("REPRO_BENCH_FANOUT_ROUNDS", "5"))
SLO_MS = float(os.environ.get("REPRO_BENCH_FANOUT_SLO_MS", "250"))

BLOCK = 4096
WINDOW = 4 * BLOCK           # the hot extent every subscriber re-reads
TOTAL = 64 * 1024            # origin blob size

RESULTS_PATH = os.environ.get("BENCH_FANOUT_JSON",
                              str(REPO_ROOT / "BENCH_fanout.json"))

_results: dict[str, dict] = {}


def _record(name: str, entry: dict) -> None:
    _results[name] = entry
    with open(RESULTS_PATH, "w") as handle:
        json.dump({"block_size": BLOCK, "total_bytes": TOTAL,
                   "link": {"latency_us": 500.0, "bandwidth_mbps": 1000.0},
                   "strategy": "process-control",
                   "results": _results}, handle, indent=2)
    print(f"\n{name}: {entry}")


def _percentile(ordered, q: float) -> float:
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(len(ordered) * q))]


def _wan():
    network = Network(profile=LinkProfile(latency_us=500.0,
                                          bandwidth_mbps=1000.0),
                      clock=WallClock())
    server = network.bind(Address("origin", 7000), FileServer())
    server.put_file("data/blob", b"\x11" * TOTAL)
    return network, server


def _make_remote(tmp_path, name, **params):
    path = tmp_path / f"{name}.af"
    create_active(path, REMOTE,
                  params={"address": "origin:7000", "path": "data/blob",
                          "cache": "memory", "block_size": BLOCK, **params},
                  meta={"data": "memory"})
    return str(path)


def _read_stats(per_read: list[float], elapsed: float,
                origin_requests: int) -> dict:
    ordered = sorted(per_read)
    reads = len(per_read)
    return {
        "subscribers": WIDTH,
        "rounds": ROUNDS,
        "reads": reads,
        "bytes_read": reads * WINDOW,
        "elapsed_s": round(elapsed, 4),
        "reads_per_s": round(reads / elapsed, 1) if elapsed else 0.0,
        "read_mbps": round(reads * WINDOW / elapsed / 1e6, 2)
        if elapsed else 0.0,
        "origin_requests": origin_requests,
        "p50_us": round(_percentile(ordered, 0.50) * 1e6, 1),
        "p95_us": round(_percentile(ordered, 0.95) * 1e6, 1),
    }


def test_fanout_vs_independent_caches(tmp_path):
    # -- leg 1: N independent validating caches ------------------------------
    network, server = _wan()
    path = _make_remote(tmp_path, "independent", validate=True)
    readers = [open_active(path, "rb", strategy="process-control",
                           network=network) for _ in range(WIDTH)]
    try:
        for stream in readers:
            stream.read(WINDOW)  # warm every cache outside timing
        per_read: list[float] = []
        before = network.stats.requests
        started = time.perf_counter()
        for round_index in range(ROUNDS):
            # the origin moves: every validating reader must notice
            server.put_file("data/blob",
                            bytes([round_index + 1]) * TOTAL)
            for stream in readers:
                stream.seek(0)
                op = time.perf_counter()
                assert len(stream.read(WINDOW)) == WINDOW
                per_read.append(time.perf_counter() - op)
        elapsed = time.perf_counter() - started
        baseline = _read_stats(per_read, elapsed,
                               network.stats.requests - before)
        _record("independent_caches", baseline)
    finally:
        for stream in readers:
            stream.close()

    # -- leg 2: the same width on the coherence + fan-out plane --------------
    network, server = _wan()
    path = _make_remote(tmp_path, "coherent", coherent=True)
    writer = open_active(path, "r+b", strategy="process-control",
                         network=network)
    readers = [open_active(path, "rb", strategy="process-control",
                           network=network) for _ in range(WIDTH)]
    try:
        subs = []
        for stream in readers:
            stream.read(WINDOW)  # warm the cache; the open granted a lease
            subs.append(stream.subscribe())
        per_read = []
        fresh_read_s: list[float] = []
        records = 0
        before = network.stats.requests
        started = time.perf_counter()
        for round_index in range(ROUNDS):
            # ONE origin write; the domain fans the bytes out to all N
            writer.seek(0)
            writer.write(bytes([round_index + 1]) * WINDOW)
            written_at = time.perf_counter()
            for stream, sub in zip(readers, subs):
                records += len(stream.poll(sub))
                stream.seek(0)
                op = time.perf_counter()
                assert len(stream.read(WINDOW)) == WINDOW
                per_read.append(time.perf_counter() - op)
                fresh_read_s.append(time.perf_counter() - written_at)
        elapsed = time.perf_counter() - started
        coherent = _read_stats(per_read, elapsed,
                               network.stats.requests - before)
        assert records == WIDTH * ROUNDS, \
            f"subscribers saw {records} records, want {WIDTH * ROUNDS}"
        stats, _ = writer.control("coherence-stats")
        ordered_fresh = sorted(fresh_read_s)
        coherent.update({
            "fresh_read_p50_ms": round(
                _percentile(ordered_fresh, 0.50) * 1e3, 2),
            "fresh_read_p95_ms": round(
                _percentile(ordered_fresh, 0.95) * 1e3, 2),
            "fresh_read_slo_ms": SLO_MS,
            "published": int(stats["published"]),
            "delivered": int(stats["delivered"]),
            "lease_invalidated": int(stats["lease_invalidated"]),
        })
        _record("coherent_fanout", coherent)
    finally:
        writer.close()
        for stream in readers:
            stream.close()

    # -- the acceptance bar --------------------------------------------------
    speedup = coherent["read_mbps"] / max(baseline["read_mbps"], 1e-9)
    origin_cut = baseline["origin_requests"] \
        / max(coherent["origin_requests"], 1)
    _record("speedup", {
        "aggregate_read_throughput": round(speedup, 2),
        "origin_request_reduction": round(origin_cut, 2),
    })
    with open(RESULTS_PATH) as handle:
        check_bench_schema(json.load(handle), BENCH_FANOUT_RESULT_KEYS,
                           name=RESULTS_PATH)
    assert speedup >= 5.0, \
        (f"coherent fan-out read throughput is only {speedup:.2f}x the "
         f"independent-cache baseline (want >= 5x at width {WIDTH})")
    assert coherent["fresh_read_p95_ms"] < SLO_MS, \
        (f"invalidation-to-fresh-read p95 "
         f"{coherent['fresh_read_p95_ms']:.2f}ms breaches the "
         f"{SLO_MS}ms SLO")
    assert coherent["lease_invalidated"] == 0, \
        "push-install writes must not revoke reader leases"
