#!/usr/bin/env python
"""Remote files as local files — the paper's flagship aggregation use.

"Seamless access to remote files that are not accessible via
network-mapped shares": one active file proxies a file on a remote
server, another proxies an authenticated FTP area, and a legacy viewer
reads both through plain open().  Also demonstrates the three caching
paths of Figure 5 and the consistency story (cache invalidation when
the remote copy changes).

Run:  python examples/remote_mount.py
"""

import tempfile
from pathlib import Path

from repro import MediatingConnector, create_active, open_active
from repro.net import Address, FileServer, FtpServer, Network
from repro.net.ftpd import FtpAccount

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-remote-"))
    network = Network()

    # -- the remote world ----------------------------------------------------
    fileserver = network.bind(
        Address("files.corp", 7000),
        FileServer({"reports/q2.txt": b"Q2 revenue: 1.21 gigadollars\n"}),
    )
    network.bind(
        Address("ftp.partner", 21),
        FtpServer({"bob": FtpAccount(password="hunter2",
                                     read_prefixes=("drop/",))},
                  files={"drop/spec.txt": b"Partner spec v7\n"}),
    )

    # -- local proxies ---------------------------------------------------------
    q2 = workdir / "q2.af"
    create_active(q2, REMOTE, params={
        "address": "files.corp:7000", "path": "reports/q2.txt",
        "cache": "memory", "validate": True,
    }, meta={"data": "memory"})

    spec = workdir / "spec.af"
    create_active(spec, REMOTE, params={
        "address": "ftp.partner:21", "path": "drop/spec.txt",
        "protocol": "ftp", "user": "bob", "password": "hunter2",
    }, meta={"data": "memory"})

    # -- a legacy viewer: plain open(), no network code anywhere ---------------
    def legacy_viewer(filename: str) -> str:
        with open(filename) as handle:
            return handle.read()

    with MediatingConnector(network=network):
        print("q2.af   ->", legacy_viewer(str(q2)).strip())
        print("spec.af ->", legacy_viewer(str(spec)).strip())

    # -- caching: repeat reads stop hitting the wire -----------------------------
    with open_active(q2, "rb", network=network) as stream:
        stream.read()
        before = network.stats.requests
        for _ in range(5):
            stream.seek(0)
            stream.read()
        cached = network.stats.requests - before
        fields, _ = stream.control("cache_stats")
        print(f"\n5 repeat reads issued {cached - 5} data requests "
              f"(cache: {fields['hits']} hits, {fields['misses']} misses)")

        # -- consistency: the remote copy changes; validate=True notices ----
        fileserver.put_file("reports/q2.txt",
                            b"Q2 revenue (restated): 0.99 gigadollars\n")
        stream.seek(0)
        print("after remote update:", stream.read().decode().strip())

    # -- writes go back to the origin ---------------------------------------------
    with open_active(q2, "r+b", network=network) as stream:
        stream.seek(0)
        stream.write(b"Q2 REVENUE")
    print("\nserver copy now starts with:",
          fileserver.get_file("reports/q2.txt")[:10].decode())


if __name__ == "__main__":
    main()
