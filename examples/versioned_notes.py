#!/usr/bin/env python
"""A notes file that versions itself.

Demonstrates an "intelligent file" built from the sentinel model: every
editing session snapshots the previous contents, and old versions are
listed, previewed and restored through control operations — no version
control system anywhere, just a file.

Run:  python examples/versioned_notes.py
"""

import tempfile
from pathlib import Path

from repro import create_active, open_active


def edit(path, text: str) -> None:
    """A 'text editor': truncate and rewrite, like editors do."""
    with open_active(path, "w+b") as stream:
        stream.write(text.encode())


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-versions-"))
    notes = workdir / "notes.af"
    create_active(notes, "repro.sentinels.versioned:VersioningSentinel",
                  params={"max_versions": 10})

    edit(notes, "v1: remember to buy milk\n")
    edit(notes, "v2: milk bought; call the bank\n")
    edit(notes, "v3: all done. relax.\n")

    with open_active(notes, "r+b") as stream:
        print("current:", stream.read().decode().strip())

        fields, _ = stream.control("versions")
        print("\nhistory:")
        for entry in fields["versions"]:
            print(f"  [{entry['index']}] {entry['label']:>6} "
                  f"({entry['size']} bytes)")

        _, payload = stream.control("peek", {"index": 0})
        print("\npeek at version 0:", payload.decode().strip())

        stream.control("restore", {"index": 1})
        stream.seek(0)
        print("after restore(1):", stream.read().decode().strip())


if __name__ == "__main__":
    main()
