"""Doctor tour: a clean bill of health, then a deliberately sick system.

Usage::

    python examples/doctor_tour.py OUTDIR

Phase 1 captures an evidence bundle from a healthy container via
``afctl stats --export`` and requires ``afctl doctor`` to exit 0.

Phase 2 manufactures real pathologies in-process — a chaos-scenario
replay (kill mid write-behind), a write-behind cache flushing into a
flaky origin, and a sentinel respawn storm (three SIGKILLs of one
container's host) — exports the aftermath as a second bundle, and
requires the doctor to exit 1 *and* to name the respawn-storm and
write-behind findings specifically.

Exits 0 only if both verdicts match; CI runs this as the doctor-smoke
job and uploads OUTDIR (bundles + JSON reports) as the artifact.
"""

import json
import os
import signal
import sys
import tempfile

from repro.cli import main
from repro.core import create_active, open_active
from repro.core.cache import BlockCache
from repro.core.datapart import MemoryDataPart
from repro.core.scenario import ScenarioRunner, load_scenario_file
from repro.core.telemetry import TELEMETRY
from repro.errors import ServiceError

NULL = "repro.sentinels.null:NullFilterSentinel"
SCENARIO = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tests", "chaos", "scenarios",
    "kill-under-write-behind.yaml")


def phase_clean(outdir: str, workdir: str) -> None:
    path = os.path.join(workdir, "healthy.af")
    create_active(path, NULL, data=b"steady state " * 4096)
    bundle = os.path.join(outdir, "clean")
    rc = main(["stats", path, "--export", bundle])
    assert rc == 0, f"stats --export failed ({rc})"
    rc = main(["doctor", "--bundle", bundle, "--report",
               os.path.join(outdir, "clean-report.json")])
    assert rc == 0, f"doctor on a healthy system must exit 0, got {rc}"
    print("phase 1: clean bundle -> doctor exit 0")


def break_write_behind() -> None:
    """Flush a write-behind cache into an origin that keeps failing."""
    failures = {"left": 2}

    def flaky_push(offset: int, data: bytes) -> int:
        if failures["left"] > 0:
            failures["left"] -= 1
            raise ServiceError("origin rejected the flush (injected)")
        return len(data)

    origin = b"0" * 65536
    cache = BlockCache(fetch=lambda off, size: origin[off:off + size],
                       push=flaky_push, store=MemoryDataPart(b""),
                       writeback=True)
    cache.write(0, b"dirty bytes that must not be lost")
    for _ in range(2):
        try:
            cache.flush()
        except ServiceError:
            pass
    cache.flush()  # third attempt lands; no data was lost
    assert cache.flush_failures == 2


def break_respawns(workdir: str) -> None:
    """SIGKILL one container's sentinel three times; supervision hides
    every crash behind plain reads, but the storm counter remembers."""
    path = os.path.join(workdir, "victim.af")
    create_active(path, NULL, data=b"v" * 4096)
    with open_active(path, "rb", strategy="process-control") as stream:
        assert stream.read(16)
        for _ in range(3):
            proc = stream.session.host.proc
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            stream.seek(0)
            assert stream.read(16)  # respawn + transparent retry


def phase_pathological(outdir: str, workdir: str) -> None:
    baseline = TELEMETRY.snapshot()
    was_tracing = TELEMETRY.tracing
    TELEMETRY.enable_tracing()
    try:
        scenario = load_scenario_file(SCENARIO)
        chaos_report = ScenarioRunner(scenario, seed=1).run()
        break_write_behind()
        break_respawns(workdir)
    finally:
        TELEMETRY.tracing = was_tracing
    bundle = os.path.join(outdir, "pathological")
    TELEMETRY.export_bundle(bundle, before=baseline,
                            chaos_report=chaos_report,
                            meta={"scenario": scenario.name})
    report_path = os.path.join(outdir, "pathological-report.json")
    rc = main(["doctor", "--bundle", bundle, "--report", report_path])
    assert rc == 1, f"doctor on a sick system must exit 1, got {rc}"
    with open(report_path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    fired = {finding["check"] for finding in report["findings"]}
    for expected in ("respawn-storm", "write-behind-failing",
                     "write-behind-degrading"):
        assert expected in fired, \
            f"{expected} must fire on this bundle (got {sorted(fired)})"
    print(f"phase 2: pathological bundle -> doctor exit 1, "
          f"findings {sorted(fired)}")


def run(outdir: str) -> int:
    os.makedirs(outdir, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="af-doctor-tour-") as workdir:
        phase_clean(outdir, workdir)
        phase_pathological(outdir, workdir)
    print("doctor tour: ok")
    return 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1] if len(sys.argv) > 1 else "doctor-artifacts"))
