#!/usr/bin/env python
r"""Editing the system registry with a text editor (paper §3).

"Filtering can also be used to provide a file-based interface to the
Windows system registry ... Any modifications by the client application
can in turn be parsed by the sentinel process and translated into
appropriate registry modifications."  The "editor" below is sed-like
string surgery on a plain text file.

Run:  python examples/registry_editor.py
"""

import tempfile
from pathlib import Path

from repro import MediatingConnector, create_active
from repro.net import Address, Network, RegistryServer

REGISTRY = "repro.sentinels.registryfs:RegistryFileSentinel"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-registry-"))
    network = Network()

    hive = network.bind(Address("registry.local", 1), RegistryServer())
    hive.set_value(r"HKLM\Software\PaperApp", "Version", "1.0")
    hive.set_value(r"HKLM\Software\PaperApp", "Port", 8080, "REG_DWORD")
    hive.set_value(r"HKLM\Software\PaperApp\UI", "Theme", "light")

    config = workdir / "config.af"
    create_active(config, REGISTRY,
                  params={"registry": "registry.local:1", "key": "HKLM"},
                  meta={"data": "memory"})

    with MediatingConnector(network=network):
        # a legacy "editor" sees a plain ini-style text file
        with open(config) as handle:
            text = handle.read()
        print("=== registry as a text file ===")
        print(text)

        # edit it like any config file
        edited = (text
                  .replace("REG_DWORD:8080", "REG_DWORD:9090")
                  .replace("REG_SZ:light", "REG_SZ:dark"))
        edited += "[Software\\PaperApp]\nLogLevel = REG_SZ:debug\n"
        with open(config, "w") as handle:
            handle.write(edited)
        # close parsed the text and issued the registry operations

    print("=== registry after the edit ===")
    print("Port     :", hive.get_value(r"HKLM\Software\PaperApp", "Port"))
    print("Theme    :", hive.get_value(r"HKLM\Software\PaperApp\UI", "Theme"))
    print("LogLevel :", hive.get_value(r"HKLM\Software\PaperApp", "LogLevel"))


if __name__ == "__main__":
    main()
