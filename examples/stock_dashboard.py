#!/usr/bin/env python
"""A live stock dashboard out of plain files (paper §3).

"An active file that reflects the latest stock quotes (downloaded by
the sentinel from a server) every time the file is opened" — plus an
aggregate file that merges the quote feed, a database and an HTTP page
into one report a legacy pager can read.

Run:  python examples/stock_dashboard.py
"""

import tempfile
from pathlib import Path

from repro import MediatingConnector, create_active, open_active
from repro.net import (
    Address,
    HttpServer,
    KeyValueStore,
    Network,
    QuoteServer,
)

QUOTES = "repro.sentinels.quotes:StockQuoteSentinel"
AGGREGATE = "repro.sentinels.aggregate:AggregateSentinel"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-stocks-"))
    network = Network()

    market = network.bind(Address("quotes.exchange", 7),
                          QuoteServer({"ACME": 101.50, "GLOBEX": 42.00,
                                       "INITECH": 13.37}))
    network.bind(Address("db.internal", 5432),
                 KeyValueStore({"positions": b"ACME:+300 GLOBEX:-120"}))
    network.bind(Address("intranet", 80),
                 HttpServer({"/banner.txt": b"*** trading floor bulletin ***"}))

    # -- the ticker file ---------------------------------------------------------
    ticker = workdir / "ticker.af"
    create_active(ticker, QUOTES, params={"address": "quotes.exchange:7"},
                  meta={"data": "memory"})

    def cat(path) -> str:
        """A legacy pager: opens a file, prints it."""
        with open(path) as handle:
            return handle.read()

    with MediatingConnector(network=network):
        print("--- open #1 ---")
        print(cat(ticker), end="")
        market.tick(5)  # the market moves
        print("--- open #2 (same file, fresh prices) ---")
        print(cat(ticker), end="")

    # -- the aggregate dashboard --------------------------------------------------
    dashboard = workdir / "dashboard.af"
    create_active(dashboard, AGGREGATE, params={
        "sources": [
            {"kind": "http", "address": "intranet:80", "path": "/banner.txt"},
            {"kind": "literal", "text": "\n\n[positions]\n"},
            {"kind": "kv", "address": "db.internal:5432",
             "keys": ["positions"]},
            {"kind": "literal", "text": "\n"},
        ],
    }, meta={"data": "memory"})
    with MediatingConnector(network=network):
        print("--- dashboard ---")
        print(cat(dashboard))

    # -- steering the sentinel from an aware application ----------------------------
    with open_active(ticker, "rb", network=network) as stream:
        market.tick(1)
        fields, _ = stream.control("refresh")
        stream.seek(0)
        print(f"--- mid-open refresh (feed generation "
              f"{fields['generation']}) ---")
        print(stream.read().decode(), end="")


if __name__ == "__main__":
    main()
