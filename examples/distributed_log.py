#!/usr/bin/env python
"""Concurrent intelligent logging (paper §3).

"Assume that several processes log events using the same log file ...
The processes generating the logs do not need to know about log file
locking."  Three writers — two in this process (different strategies)
and one in a real sentinel child process — append to one active log
file concurrently; the sentinel serializes the records.  The log also
tees every record to a remote collector via a distribution sentinel.

Run:  python examples/distributed_log.py
"""

import tempfile
import threading
from pathlib import Path

from repro import Container, create_active, open_active
from repro.net import Address, FileServer, Network

LOG = "repro.sentinels.logfile:ConcurrentLogSentinel"
DISTRIBUTE = "repro.sentinels.distribute:DistributionSentinel"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-log-"))
    logfile = workdir / "events.af"
    create_active(logfile, LOG, params={"max_records": 100})

    # -- three concurrent writers, three strategies ----------------------------
    def writer(tag: str, strategy: str) -> None:
        # each open spawns its own sentinel (§2.2); they coordinate
        # through the container's cross-process lock
        with open_active(logfile, "r+b", strategy=strategy) as stream:
            for i in range(5):
                stream.write(f"{tag} event {i}".encode())

    threads = [
        threading.Thread(target=writer, args=("alpha", "inproc")),
        threading.Thread(target=writer, args=("beta", "thread")),
        threading.Thread(target=writer, args=("gamma", "process-control")),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    records = Container.load(logfile).data.decode().splitlines()
    print(f"{len(records)} records, all intact, globally sequenced:")
    for record in records[:6]:
        print("  ", record)
    print("   ...")

    # per-writer order is preserved even though writers interleaved
    for tag in ("alpha", "beta", "gamma"):
        own = [r.split(" ", 1)[1] for r in records if f"{tag} event" in r]
        assert own == [f"{tag} event {i}" for i in range(5)], own
    print("per-writer ordering verified for alpha/beta/gamma")

    # -- log maintenance without touching the writers ---------------------------
    with open_active(logfile, "r+b") as stream:
        fields, _ = stream.control("stats")
        print(f"\nlog stats: {fields}")
        fields, _ = stream.control("compact", {"keep": 3})
        print(f"compacted: dropped {fields['dropped']}, kept {fields['kept']}")

    # -- distribution: tee to a remote collector ----------------------------------
    network = Network()
    collector = network.bind(Address("collector", 514), FileServer())
    audit = workdir / "audit.af"
    create_active(audit, DISTRIBUTE, params={"targets": [
        {"kind": "fileserver", "address": "collector:514",
         "path": "site-a.log"},
    ]})
    with open_active(audit, "r+b", network=network) as stream:
        stream.write(b"deploy started\n")
        stream.write(b"deploy finished\n")
    print("\nremote collector received:",
          collector.get_file("site-a.log").decode().strip().split("\n"))


if __name__ == "__main__":
    main()
