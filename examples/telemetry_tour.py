#!/usr/bin/env python
"""One request, one tree: tracing a fault-injected remote read.

The telemetry plane stitches a single span tree per open across both
processes: app call → channel frame → sentinel dispatch → cache fill →
network bridge → origin exchange.  This tour injects a host kill under
a seeded fault plane mid-read, lets the supervisor respawn and retry,
then prints the resulting timeline, exports it as JSONL, and dumps the
unified counter snapshot — every counter family the runtime keeps,
behind one ``TELEMETRY.snapshot()``.

Run:  python examples/telemetry_tour.py [spans.jsonl]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import create_active, open_active
from repro.core.faults import FaultPlane
from repro.core.runner import HOST_POOL
from repro.core.telemetry import (
    TELEMETRY,
    render_snapshot,
    render_timeline,
)
from repro.net import Address, FileServer, Network

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"


def main() -> None:
    export = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    workdir = Path(tempfile.mkdtemp(prefix="af-telemetry-"))
    network = Network()

    # -- a remote origin and a local proxy for it ---------------------------
    server = network.bind(Address("origin", 9000), FileServer())
    server.put_file("/data.bin", b"x" * 65536)
    proxy = workdir / "traced.af"
    create_active(proxy, REMOTE, params={
        "address": "origin:9000", "path": "/data.bin",
        "cache": "memory", "block_size": 4096, "readahead": 4,
        "retry_seed": 1,
    })

    # -- a deterministic crash: kill the sentinel host on the first read ----
    plane = FaultPlane(seed=7)
    plane.rule("send", "kill", op="read", times=1)
    HOST_POOL.faults = plane

    TELEMETRY.reset()
    TELEMETRY.enable_tracing()
    try:
        with open_active(proxy, "rb", strategy="process-control",
                         network=network) as stream:
            data = stream.read(16384)
    finally:
        TELEMETRY.disable_tracing()
        HOST_POOL.faults = None

    assert data == b"x" * 16384, "recovery must be invisible to the app"
    assert plane.summary().get("send:kill") == 1, "the kill must have fired"

    # -- the trace: one linked tree covering both processes -----------------
    spans = TELEMETRY.spans()
    print(render_timeline(spans, limit=80))
    assert len({span.trace for span in spans}) == 1, "one open, one trace"
    assert len({span.pid for span in spans}) == 2, \
        "sentinel-side spans piggyback home on the reply"
    names = {span.name for span in spans}
    for expected in ("file", "app.read", "op.read", "respawn",
                     "frame.read", "dispatch.read", "cache.fill",
                     "bridge.read", "net.read"):
        assert expected in names, f"missing span {expected!r}"

    out = export or (workdir / "trace_spans.jsonl")
    count = TELEMETRY.export_jsonl(out)
    print(f"\nexported {count} spans -> {out}")

    # -- the counters: every family, one snapshot ---------------------------
    print()
    print(render_snapshot(TELEMETRY.snapshot()))


if __name__ == "__main__":
    main()
