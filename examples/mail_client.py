#!/usr/bin/env python
"""A file-based mail client (paper §3).

Inbox: "reading it causes new messages to be retrieved possibly from
multiple remote POP servers".  Outbox: "the sentinel process parses the
data written to the file to extract the 'To' addresses and send the
data to each recipient".  The 'mail client' below is just code that
reads and writes two text files.

Run:  python examples/mail_client.py
"""

import tempfile
from pathlib import Path

from repro import MediatingConnector, create_active
from repro.net import Address, Network, Pop3Server, SmtpServer
from repro.net.pop3 import MailMessage

INBOX = "repro.sentinels.mailbox:InboxSentinel"
OUTBOX = "repro.sentinels.mailbox:OutboxSentinel"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-mail-"))
    network = Network()

    # two POP accounts on different servers, one SMTP relay
    work_pop = network.bind(Address("pop.work", 110),
                            Pop3Server({"dana": "w0rk", "boss": "b0ss"}))
    home_pop = network.bind(Address("pop.home", 110),
                            Pop3Server({"dana": "h0me"}))
    smtp = network.bind(Address("smtp.out", 25), SmtpServer())
    smtp.register_domain("work.example", work_pop)

    work_pop.deliver(MailMessage("boss@work.example", "dana@work.example",
                                 "Standup moved", "Now at 9:15."))
    home_pop.deliver(MailMessage("club@hobby.org", "dana@home.example",
                                 "Race Sunday", "Bring the fast bike."))

    inbox = workdir / "inbox.af"
    create_active(inbox, INBOX, params={"accounts": [
        {"address": "pop.work:110", "user": "dana", "password": "w0rk"},
        {"address": "pop.home:110", "user": "dana", "password": "h0me"},
    ]}, meta={"data": "memory"})

    outbox = workdir / "outbox.af"
    create_active(outbox, OUTBOX, params={
        "smtp": "smtp.out:25", "sender": "dana@laptop",
    }, meta={"data": "memory"})

    # -- the whole mail client -------------------------------------------------
    with MediatingConnector(network=network):
        print("=== INBOX (both servers aggregated) ===")
        with open(inbox) as handle:
            print(handle.read())

        print("=== composing a reply (writing a text file) ===")
        with open(outbox, "w") as handle:
            handle.write("To: boss@work.example\n"
                         "Subject: Re: Standup moved\n"
                         "\n"
                         "Works for me.\n")
        # closing the file sent the mail

    delivered = work_pop.message_count("boss")
    print(f"boss's mailbox now holds {delivered} message(s) "
          f"(relay log: {[m.subject for m in smtp.sent]})")

    # new mail shows up on the next inbox open — no decoupled snapshot
    work_pop.deliver(MailMessage("boss@work.example", "dana@work.example",
                                 "Re: Re: Standup moved", "Great."))
    with MediatingConnector(network=network):
        with open(inbox) as handle:
            body = handle.read()
    assert "Re: Re: Standup moved" in body
    print("boss's answer visible in the inbox on re-open")


if __name__ == "__main__":
    main()
