#!/usr/bin/env python
"""Quickstart: create, open and transparently intercept active files.

Walks the core ideas of the paper in five minutes:

1. an active file is a regular-looking file whose open launches a
   sentinel;
2. the four implementation strategies serve the same semantics;
3. unmodified legacy code gets active files through open() interception;
4. sentinels can generate data out of thin air (empty data part).

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import MediatingConnector, create_active, open_active


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-quickstart-"))
    print(f"working in {workdir}\n")

    # -- 1. the null filter: an active file that behaves passively --------
    notes = workdir / "notes.af"
    create_active(notes, "repro.sentinels.null:NullFilterSentinel",
                  data=b"An active file looks exactly like a file.\n")
    with open_active(notes, "r+b") as stream:
        print("read:", stream.read().decode().strip())
        stream.seek(0, 2)
        stream.write(b"This line was appended through a sentinel.\n")

    # -- 2. same file, all four strategies ---------------------------------
    print("\nstrategies:")
    for strategy in ("inproc", "thread", "process-control", "process"):
        with open_active(notes, "rb", strategy=strategy) as stream:
            first = stream.read(13).decode()
            print(f"  {strategy:>16}: {first!r}")

    # -- 3. legacy code + interception -------------------------------------
    def legacy_line_counter(filename: str) -> int:
        """Knows nothing about active files: plain open()."""
        with open(filename) as handle:
            return sum(1 for _ in handle)

    with MediatingConnector():
        count = legacy_line_counter(str(notes))
    print(f"\nlegacy app counted {count} lines via plain open()")

    # -- 4. data generation: a file with no data part ----------------------
    randfile = workdir / "random.af"
    create_active(randfile, "repro.sentinels.generate:RandomBytesSentinel",
                  params={"seed": 2024}, meta={"data": "memory"})
    with open_active(randfile, "rb") as stream:
        sample = stream.read(16)
    print(f"infinite random file, first 16 bytes: {sample.hex()}")

    # -- 5. filtering: transparent per-file compression --------------------
    compressed = workdir / "story.af"
    create_active(compressed, "repro.sentinels.compress:CompressionSentinel")
    story = ("It was a dark and stormy byte. " * 200).encode()
    with open_active(compressed, "wb") as stream:
        stream.write(story)
    stored = compressed.stat().st_size
    with open_active(compressed, "rb") as stream:
        assert stream.read() == story
    print(f"compression filter: {len(story)} logical bytes, "
          f"{stored} on disk ({stored * 100 // len(story)}%)")

    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
