#!/usr/bin/env python
"""Reproduce the paper's Figure 6 and print paper-vs-measured tables.

Runs the six panels on the simulated NT testbed (1000 calls per point,
like the paper), checks every qualitative claim, and prints the series
side by side with the paper's printed axis tops.

Run:  python examples/figure6_repro.py [--calls N]
"""

import argparse

from repro.afsim.figure6 import (
    PANELS,
    check_claims,
    format_panel,
    run_panel,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--calls", type=int, default=1000)
    args = parser.parse_args()

    violations = []
    for panel in PANELS:
        for op in ("read", "write"):
            series = run_panel(panel, op, calls=args.calls)
            print(format_panel(series, panel, op))
            problems = check_claims(series, panel, op)
            violations.extend(problems)
            print("  claims:", "OK" if not problems else problems)
            print()

    print("=" * 64)
    if violations:
        print(f"{len(violations)} claim violations — calibration drifted")
        raise SystemExit(1)
    print("Every qualitative claim of Section 6 reproduced:")
    print("  - Process > Thread > DLL at every point")
    print("  - DLL indistinguishable from direct access")
    print("  - costs grow with block size; network > disk > memory checks")


if __name__ == "__main__":
    main()
