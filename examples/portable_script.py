#!/usr/bin/env python
"""Self-contained active files: code that travels with the data.

The paper stores the sentinel *executable itself* inside the active
file (as an NTFS stream), so copying the file copies its behaviour.
``ScriptSentinel`` restores that property here: the active part is
Python source embedded in the container.  Combined with the §2.3
sandbox, a recipient can open a foreign active file under an explicit
resource policy.

Run:  python examples/portable_script.py
"""

import tempfile
from pathlib import Path

from repro import Container, create_active, open_active
from repro.core.sandbox import SandboxPolicy, sandbox_spec
from repro.errors import SandboxViolation
from repro.sentinels.script import script_spec

ROT13_SOURCE = '''
def _rot13(data):
    out = bytearray()
    for b in data:
        if 65 <= b <= 90:
            out.append(65 + (b - 65 + 13) % 26)
        elif 97 <= b <= 122:
            out.append(97 + (b - 97 + 13) % 26)
        else:
            out.append(b)
    return bytes(out)

def on_read(ctx, offset, size):
    return _rot13(ctx.data.read_at(offset, size))

def on_write(ctx, offset, data):
    return ctx.data.write_at(offset, _rot13(data))
'''


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="af-script-"))

    # -- author a self-contained active file --------------------------------
    original = workdir / "note.af"
    create_active(original, script_spec(ROT13_SOURCE))
    with open_active(original, "wb", strategy="inproc") as stream:
        stream.write(b"meet me at the usual place")
    stored = Container.load(original).data
    print("on disk (rot13):", stored.decode())

    # -- 'mail it' to another directory: behaviour travels too ---------------
    received = workdir / "inbox" / "note.af"
    received.parent.mkdir()
    Container.load(original).copy_to(received)
    with open_active(received, "rb", strategy="thread") as stream:
        print("recipient reads:", stream.read().decode())

    # -- the recipient doesn't trust the embedded code: sandbox it ------------
    boxed = workdir / "inbox" / "note-sandboxed.af"
    container = Container.load(received)
    container.path = boxed
    container.spec = sandbox_spec(container.spec, SandboxPolicy(
        allow_writes=False,      # read-only
        max_total_bytes=64,      # tiny budget
        allowed_hosts=(),        # no network at all
    ))
    container.save()

    with open_active(boxed, "r+b", strategy="inproc") as stream:
        print("sandboxed read :", stream.read(26).decode())
        try:
            stream.write(b"tamper attempt")
        except SandboxViolation as exc:
            print("write blocked  :", exc)
        try:
            stream.seek(0)
            stream.read(64)  # blows the 64-byte budget
        except SandboxViolation as exc:
            print("budget enforced:", exc)


if __name__ == "__main__":
    main()
