#!/usr/bin/env python
"""Visualizing the paper's §6 critical paths on the simulated kernel.

Prints, for one 512-byte read on the network path under each strategy:

* the scheduler timeline (context switches, blocks, wakes) — the
  narrative the paper walks through in prose;
* the per-process CPU attribution — where the overhead actually lives.

Run:  python examples/critical_path.py
"""

from repro.afsim.backings import make_backing
from repro.afsim.sessions import open_session
from repro.ntos import Kernel, Tracer


def trace_one_read(strategy: str) -> None:
    kernel = Kernel()
    tracer = Tracer.attach(kernel)
    app = kernel.create_process("app")

    def main():
        backing = make_backing(kernel, "network")
        session = open_session(strategy, kernel, app, backing)
        start = kernel.now
        session.read(512)
        main.latency = kernel.now - start
        session.close()

    kernel.create_thread(app, main, "app:main")
    kernel.run()

    print(f"\n=== {strategy}: one 512 B read over the network ===")
    print(f"latency: {main.latency:.1f} virtual µs")
    cpu = kernel.cpu_by_process()
    attribution = ", ".join(f"{name}={us:.1f}µs"
                            for name, us in sorted(cpu.items()))
    print(f"CPU by process: {attribution}")
    print(f"context switches: {kernel.context_switches} "
          f"(cross-process: {kernel.process_switches})")
    blocks = tracer.blocks_by_reason()
    if blocks:
        print(f"blocking events: {blocks}")
    print(tracer.render_timeline(limit=14))


def main() -> None:
    for strategy in ("process-control", "thread", "dll"):
        trace_one_read(strategy)

    print("\nReading the timelines against the paper's §6:")
    print(" - process-control: command pipe -> process switch -> sentinel")
    print("   RPC -> pipe back -> process switch; 'extra buffer copying and")
    print("   process context switching occurring in the critical path'")
    print(" - thread: two cheap thread switches and one user-level copy")
    print(" - dll: no switches at all; the read IS the network RPC")


if __name__ == "__main__":
    main()
