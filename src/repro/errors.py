"""Exception hierarchy for the active-files reproduction.

Every exception raised by this library derives from :class:`ActiveFileError`
so callers can guard a whole interaction with one ``except`` clause while
still being able to discriminate the failure class.  The hierarchy mirrors
the layers of the system: container/spec problems, strategy/runtime
problems, control-protocol problems, network problems and simulated-OS
problems.
"""

from __future__ import annotations

__all__ = [
    "ActiveFileError",
    "ContainerError",
    "ContainerFormatError",
    "SpecError",
    "SentinelError",
    "SentinelCrashError",
    "SentinelCrashedError",
    "SessionCloseError",
    "FlushError",
    "FanoutError",
    "SubscriberEvictedError",
    "DistributionError",
    "AggregationError",
    "StrategyError",
    "UnsupportedOperationError",
    "HandleError",
    "ProtocolError",
    "FrameError",
    "ChannelClosedError",
    "DeadlineExceededError",
    "HostOverloadedError",
    "ShmError",
    "ShmCorruptError",
    "ShmStaleGenerationError",
    "CacheError",
    "InterceptionError",
    "SandboxViolation",
    "NetworkError",
    "AddressError",
    "ServiceError",
    "RemoteFileNotFound",
    "AuthenticationError",
    "NTOSError",
    "DeadlockError",
    "SimulationError",
    "ChaosError",
    "ChaosSafetyError",
    "ScenarioError",
    "DoctorError",
    "DiskFullError",
    "wire_error_registry",
]


class ActiveFileError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


# --------------------------------------------------------------------------
# Container / spec layer
# --------------------------------------------------------------------------

class ContainerError(ActiveFileError):
    """A problem with an ``.af`` container file."""


class ContainerFormatError(ContainerError):
    """The on-disk bytes do not parse as a valid container."""


class SpecError(ActiveFileError):
    """A sentinel spec string or payload is malformed or unresolvable."""


# --------------------------------------------------------------------------
# Runtime layer
# --------------------------------------------------------------------------

class SentinelError(ActiveFileError):
    """The sentinel raised or misbehaved while serving the application."""


class SentinelCrashError(SentinelError):
    """The sentinel process/thread died while the file was open."""


#: Preferred spelling for the supervised-transport crash error; the
#: supervision layer raises it when a crash could not be recovered
#: transparently.  One class, two names, so both round-trip the wire.
SentinelCrashedError = SentinelCrashError


class SessionCloseError(SentinelError):
    """The session's close handshake failed (sentinel gone or wedged)."""


class FlushError(SentinelError):
    """Buffered writes could not be delivered; data did NOT silently
    vanish — this error reports exactly the unflushed state."""


class FanoutError(SentinelError):
    """A pub/sub fan-out operation on the coherence domain failed."""


class SubscriberEvictedError(FanoutError):
    """A slow subscriber's bounded queue overflowed and it was evicted.

    The subscriber must resubscribe (and re-read for a fresh view);
    updates between eviction and resubscription were dropped, not
    silently reordered.
    """


class DistributionError(SentinelError):
    """One or more downstream legs of a distribution fan-out failed.

    Carries the per-target failures so the application can tell *which*
    replicas missed the write instead of a generic sentinel failure.
    """

    def __init__(self, message: str = "",
                 failures: "list[tuple[str, str]] | None" = None) -> None:
        self.failures = list(failures or [])
        if not message and self.failures:
            legs = "; ".join(f"{target}: {cause}"
                             for target, cause in self.failures)
            message = f"{len(self.failures)} distribution leg(s) failed: {legs}"
        super().__init__(message)


class AggregationError(SentinelError):
    """One or more upstream sources of an aggregation could not be read."""

    def __init__(self, message: str = "",
                 failures: "list[tuple[str, str]] | None" = None) -> None:
        self.failures = list(failures or [])
        if not message and self.failures:
            legs = "; ".join(f"{source}: {cause}"
                             for source, cause in self.failures)
            message = f"{len(self.failures)} aggregation source(s) failed: {legs}"
        super().__init__(message)


class StrategyError(ActiveFileError):
    """The requested implementation strategy cannot serve this request."""


class UnsupportedOperationError(StrategyError):
    """Operation has no mapping in this strategy (e.g. seek over bare pipes).

    Mirrors the paper's process-based implementation, where calls such as
    ``ReadFileScatter`` or ``GetFileSize`` "are simply dropped (with an
    appropriate return code)".
    """


class HandleError(ActiveFileError):
    """An operation used a closed, foreign, or otherwise invalid handle."""


class CacheError(ActiveFileError):
    """The caching layer hit an inconsistency."""


class InterceptionError(ActiveFileError):
    """The mediating-connectors analogue could not (un)install itself."""


class SandboxViolation(ActiveFileError):
    """A sandboxed sentinel (or its caller) exceeded the sandbox policy."""


# --------------------------------------------------------------------------
# Control protocol
# --------------------------------------------------------------------------

class ProtocolError(ActiveFileError):
    """A control-channel exchange violated the protocol."""


class FrameError(ProtocolError):
    """A control frame failed to encode or decode."""


class ChannelClosedError(ProtocolError):
    """The peer closed the channel mid-conversation."""


class DeadlineExceededError(ActiveFileError, TimeoutError):
    """A blocking wait outlived its :class:`~repro.core.policy.Deadline`.

    Subclasses :class:`TimeoutError` so callers guarding waits with the
    builtin still catch the typed form.
    """


class HostOverloadedError(ActiveFileError):
    """The sentinel host fast-rejected an operation at admission.

    Raised past the host's in-flight high-water mark (or a channel's
    FIFO bound) *before* the operation is queued or executed — so a
    retry is always safe, idempotent command or not.  The supervised
    session layer backs off and retries within the deadline; raw
    channel users see the typed error round-trip the wire.
    """


# --------------------------------------------------------------------------
# Shared-memory data plane
# --------------------------------------------------------------------------

class ShmError(ProtocolError):
    """A shared-memory slot exchange could not be completed.

    The sender falls back to an inline payload when it sees one of
    these, so an shm failure degrades performance, never correctness.
    """


class ShmCorruptError(ShmError):
    """A slot's bytes failed their checksum — the slab was scribbled on."""


class ShmStaleGenerationError(ShmError):
    """A slot descriptor outlived its lease (generation mismatch)."""


# --------------------------------------------------------------------------
# Simulated network
# --------------------------------------------------------------------------

class NetworkError(ActiveFileError):
    """Base class for simulated-network failures."""


class AddressError(NetworkError):
    """No service is bound at the requested address."""


class ServiceError(NetworkError):
    """A remote service rejected or failed a request."""


class RemoteFileNotFound(ServiceError):
    """The remote source has no such file/object."""


class AuthenticationError(ServiceError):
    """The remote source rejected the supplied credentials."""


# --------------------------------------------------------------------------
# Simulated OS
# --------------------------------------------------------------------------

class NTOSError(ActiveFileError):
    """Base class for simulated-kernel failures."""


class DeadlockError(NTOSError):
    """Every simulated thread is blocked and no timer can release one."""


class SimulationError(NTOSError):
    """The simulation harness was misused or reached an impossible state."""


# --------------------------------------------------------------------------
# Chaos engine
# --------------------------------------------------------------------------

class ChaosError(ActiveFileError):
    """Base class for chaos-engine failures (injection and scenarios)."""


class ChaosSafetyError(ChaosError):
    """A blast-radius guard refused an injection.

    Raised *instead of* performing the requested action: signalling a
    pid no live :class:`~repro.core.runner.SentinelHost` owns, exceeding
    the per-fault or total injection-duration caps, or arming an
    unbounded destructive rule outside of tests.
    """


class ScenarioError(ChaosError):
    """A chaos scenario file is malformed or failed validation."""


# --------------------------------------------------------------------------
# Diagnostics engine
# --------------------------------------------------------------------------

class DoctorError(ActiveFileError):
    """The diagnostics engine could not run: a missing or malformed
    evidence bundle, or a declarative check file that failed lint."""


class DiskFullError(ActiveFileError, OSError):
    """The ``disk-full`` resource fault's quota is exhausted.

    Subclasses :class:`OSError` with ``errno`` set to ``ENOSPC`` so
    application code guarding writes with the builtin still catches the
    injected form exactly like a real full disk.
    """

    def __init__(self, message: str = "injected disk-full quota exhausted"
                 ) -> None:
        import errno
        super().__init__(message)
        self.errno = errno.ENOSPC


# --------------------------------------------------------------------------
# Wire round-tripping
# --------------------------------------------------------------------------

def wire_error_registry() -> dict[str, type[Exception]]:
    """Map exception-class name -> class for every public library error.

    The control channel round-trips failures by class name
    (:mod:`repro.core.control`); building the registry from this module's
    ``__all__`` means a sentinel raising *any* library exception
    re-raises as the same type on the application side instead of
    silently degrading to :class:`SentinelError`.
    """
    registry: dict[str, type[Exception]] = {}
    for name in __all__:
        obj = globals().get(name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            registry[name] = obj
    return registry
