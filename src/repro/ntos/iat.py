"""Import address tables and the mediating-connectors toolkit.

Appendix A: "At compile time, the linker constructs an import address
table (IAT) for the process, which becomes the target for all API
calls ... We manipulate the import table of a running process, so that
it can use active files."

Each simulated process owns an :class:`ImportAddressTable` mapping API
names to callables.  :func:`mediate` rebinds an entry to a wrapper that
receives the original binding — exactly the Detours/Mediating-Connectors
interposition shape — and :func:`inject_dll` is the bulk form used when
an active file open injects the stub DLL.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError

__all__ = ["ImportAddressTable", "mediate", "inject_dll"]


class ImportAddressTable:
    """One process's API-name -> implementation bindings."""

    def __init__(self) -> None:
        self._entries: dict[str, Callable] = {}
        #: Names that have been rebound at least once (telemetry).
        self.mediated: set[str] = set()

    def bind(self, name: str, fn: Callable) -> None:
        """Initial (load-time) binding of an API entry."""
        self._entries[name] = fn

    def lookup(self, name: str) -> Callable:
        try:
            return self._entries[name]
        except KeyError:
            raise SimulationError(f"unresolved import: {name}") from None

    def call(self, name: str, *args, **kwargs):
        """Call through the table — the application's only call path."""
        return self.lookup(name)(*args, **kwargs)

    def rebind(self, name: str, fn: Callable) -> Callable:
        """Replace an entry; returns the previous binding."""
        previous = self.lookup(name)
        self._entries[name] = fn
        self.mediated.add(name)
        return previous

    def names(self) -> list[str]:
        return sorted(self._entries)


def mediate(iat: ImportAddressTable, name: str,
            wrapper_factory: Callable[[Callable], Callable]) -> None:
    """Rebind *name* to ``wrapper_factory(original)``.

    The factory receives the original binding so the wrapper can fall
    through for non-active files, like the paper's stubs do.
    """
    original = iat.lookup(name)
    iat.rebind(name, wrapper_factory(original))


def inject_dll(iat: ImportAddressTable,
               stubs: dict[str, Callable[[Callable], Callable]]) -> None:
    """Inject a stub DLL: mediate every entry in *stubs* at once."""
    for name, factory in stubs.items():
        mediate(iat, name, factory)
