"""Dispatcher objects: events, semaphores, mutexes.

These are the NT synchronization primitives the paper's thread-based
implementation builds its shared-memory channel from ("these 'messages'
are implemented using events and shared memory").  Waits and signals
charge syscall-ish costs from the :class:`~repro.ntos.costs.CostModel`;
blocking waits park the simulated thread on the kernel.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.ntos.kernel import Kernel, SimThread

__all__ = ["KEvent", "KSemaphore", "KMutex"]


class KEvent:
    """An NT event object (manual- or auto-reset)."""

    def __init__(self, kernel: Kernel, manual_reset: bool = False,
                 signaled: bool = False, name: str = "") -> None:
        self.kernel = kernel
        kernel.charge_if_running(kernel.costs.event_signal_us)
        self.manual_reset = manual_reset
        self.signaled = signaled
        self.name = name or "event"
        self._waiters: deque[SimThread] = deque()

    def set(self) -> None:
        """SetEvent: release one waiter (auto) or all waiters (manual)."""
        self.kernel.syscall(self.kernel.costs.event_signal_us)
        if self._waiters:
            if self.manual_reset:
                self.signaled = True
                while self._waiters:
                    self.kernel.wake(self._waiters.popleft())
            else:
                # auto-reset with a waiter: hand the signal straight over
                self.kernel.wake(self._waiters.popleft())
        else:
            self.signaled = True

    def reset(self) -> None:
        self.kernel.syscall(self.kernel.costs.event_signal_us)
        self.signaled = False

    def wait(self) -> None:
        """WaitForSingleObject."""
        self.kernel.syscall(self.kernel.costs.event_wait_us)
        if self.signaled:
            if not self.manual_reset:
                self.signaled = False
            return
        self._waiters.append(self.kernel.current)
        self.kernel.block(f"wait({self.name})")


class KSemaphore:
    """An NT semaphore."""

    def __init__(self, kernel: Kernel, initial: int = 0,
                 name: str = "") -> None:
        if initial < 0:
            raise SimulationError("semaphore count cannot be negative")
        self.kernel = kernel
        self.count = initial
        self.name = name or "semaphore"
        self._waiters: deque[SimThread] = deque()

    def release(self, count: int = 1) -> None:
        self.kernel.syscall(self.kernel.costs.event_signal_us)
        for _ in range(count):
            if self._waiters:
                self.kernel.wake(self._waiters.popleft())
            else:
                self.count += 1

    def acquire(self) -> None:
        self.kernel.syscall(self.kernel.costs.event_wait_us)
        if self.count > 0:
            self.count -= 1
            return
        self._waiters.append(self.kernel.current)
        self.kernel.block(f"acquire({self.name})")


class KMutex:
    """An NT mutex (owned, non-recursive here for simplicity)."""

    def __init__(self, kernel: Kernel, name: str = "") -> None:
        self.kernel = kernel
        self.name = name or "mutex"
        self.owner: SimThread | None = None
        self._waiters: deque[SimThread] = deque()

    def acquire(self) -> None:
        self.kernel.syscall(self.kernel.costs.event_wait_us)
        me = self.kernel.current
        if self.owner is None:
            self.owner = me
            return
        if self.owner is me:
            raise SimulationError(f"recursive acquire of {self.name}")
        self._waiters.append(me)
        self.kernel.block(f"acquire({self.name})")
        # ownership was transferred to us by release()

    def release(self) -> None:
        self.kernel.syscall(self.kernel.costs.event_signal_us)
        if self.owner is not self.kernel.current:
            raise SimulationError(
                f"{self.kernel.current} released {self.name} it does not own"
            )
        if self._waiters:
            self.owner = self._waiters.popleft()
            self.kernel.wake(self.owner)
        else:
            self.owner = None

    def __enter__(self) -> "KMutex":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
