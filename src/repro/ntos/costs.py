"""The calibrated cost model for the simulated testbed.

All values are virtual microseconds (or µs per byte) chosen to sit in
the plausible range for the paper's hardware — Windows NT 4 on a
300 MHz Pentium II with 100 Mbps Fast Ethernet — and then lightly tuned
so the simulated Figure 6 endpoints land near the paper's printed axes.
The *relative* results (process ≫ thread ≫ DLL, network > disk >
memory, read > write) do not depend on fine tuning: they fall out of
how many syscalls, copies and context switches each strategy's critical
path contains.

Sources for the ballparks: NT-era microbenchmark literature (lmbench on
P6-class machines) puts a null syscall at ~2-4 µs, a process context
switch at ~10-20 µs, pipe latency at ~20-60 µs round trip, memcpy
bandwidth around 80-150 MB/s, and small-message UDP/TCP round trips on
100 Mbps Ethernet at ~150-300 µs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs charged by the simulated kernel's primitives."""

    # -- CPU / kernel crossings --------------------------------------------------
    #: Entering and leaving the kernel for one system call.
    syscall_us: float = 3.0
    #: Switching between threads of one process.
    thread_switch_us: float = 6.0
    #: Switching between threads of different processes (address-space
    #: change, TLB effects).
    process_switch_us: float = 14.0
    #: Fixed cost of a user-level procedure call through a rebound IAT
    #: entry (the DLL-only diversion) — "only a very thin layer of code".
    stub_call_us: float = 0.35
    #: CreateThread (NT-era: object + stack + scheduler insertion).
    thread_create_us: float = 90.0
    #: CreateProcess (address space, image load amortized) — why the
    #: per-open sentinel launch is the process strategies' hidden tax.
    process_create_us: float = 2000.0

    # -- memory -------------------------------------------------------------------
    #: One user-level memcpy, per byte (~100 MB/s on a PII).
    memcpy_us_per_byte: float = 0.010
    #: Crossing user/kernel during pipe I/O copies the buffer twice as
    #: expensively (cache-cold kernel buffers).
    kernel_copy_us_per_byte: float = 0.014

    # -- kernel objects --------------------------------------------------------------
    #: Signalling or resetting an event (SetEvent/ResetEvent syscalls).
    event_signal_us: float = 3.5
    #: A blocking wait that actually parks the thread (WaitForSingleObject).
    event_wait_us: float = 4.0
    #: Fixed per-operation overhead of a pipe read or write, on top of
    #: the syscall and the per-byte copies.
    pipe_op_us: float = 11.0
    #: Capacity of an anonymous pipe's in-kernel buffer (NT-era default
    #: was small; 4 KiB makes writers throttle at the consumer's
    #: bandwidth, which the Write curves rely on).
    pipe_capacity: int = 4096

    # -- storage ---------------------------------------------------------------------
    #: Fixed overhead of one ReadFile hitting the filesystem (buffer-
    #: cache lookup, FS code path) beyond the bare syscall.
    disk_read_op_us: float = 60.0
    #: Per-byte cost of file reads (cache misses amortized over the
    #: 1000-call scan — reads are the slow direction).
    disk_read_us_per_byte: float = 0.25
    #: Fixed overhead of one WriteFile (write-behind: data lands in the
    #: buffer cache and the lazy writer flushes asynchronously).
    disk_write_op_us: float = 20.0
    #: Per-byte cost of cached file writes (≈ a kernel-side copy).
    disk_write_us_per_byte: float = 0.03

    # -- network ---------------------------------------------------------------------
    #: One-way small-message latency through the protocol stack and wire.
    net_latency_us: float = 90.0
    #: 100 Mbps Fast Ethernet = 12.5 bytes/µs -> 0.08 µs per byte.
    net_us_per_byte: float = 0.08
    #: Server-side processing per request at the remote source.
    server_us: float = 25.0

    def tuned(self, **overrides: float) -> "CostModel":
        """A copy with some parameters replaced (for ablations)."""
        return replace(self, **overrides)

    @classmethod
    def modern(cls) -> "CostModel":
        """A 2020s-laptop regime (for robustness ablations).

        Roughly 20-50x faster CPU-side primitives, ~100x faster memcpy,
        10 GbE networking and NVMe-class storage.  The paper's relative
        claims must survive this recalibration — they depend on the
        *structure* of each strategy's critical path, not the constants.
        """
        return cls(
            syscall_us=0.15,
            thread_switch_us=1.2,
            process_switch_us=2.5,
            stub_call_us=0.01,
            thread_create_us=8.0,
            process_create_us=250.0,
            memcpy_us_per_byte=0.0001,
            kernel_copy_us_per_byte=0.00015,
            event_signal_us=0.2,
            event_wait_us=0.25,
            pipe_op_us=0.6,
            pipe_capacity=65536,
            disk_read_op_us=6.0,
            disk_read_us_per_byte=0.0015,
            disk_write_op_us=2.0,
            disk_write_us_per_byte=0.0005,
            net_latency_us=12.0,
            net_us_per_byte=0.0008,   # 10 Gb/s
            server_us=2.0,
        )

    def net_transfer_us(self, nbytes: int) -> float:
        """One-way network cost of an *nbytes* message."""
        return self.net_latency_us + nbytes * self.net_us_per_byte

    def switch_us(self, same_process: bool) -> float:
        return self.thread_switch_us if same_process else self.process_switch_us
