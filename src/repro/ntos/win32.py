"""The Win32 file API veneer over the simulated kernel.

Applications in the simulation are "compiled with loose links": every
file operation goes through the process's import address table, so the
active-files stub DLL (:mod:`repro.afsim.stubs`) can divert them without
the application changing — the Appendix A arrangement, executable.

Only the file-flavoured subset the paper exercises is provided:
``CreateFile``, ``ReadFile``, ``WriteFile``, ``SetFilePointer``,
``GetFileSize``, ``CloseHandle``, plus ``CreateThread`` and
``CreatePipe`` conveniences used by stubs and sentinels.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.ntos.fs import NTFile, NTFileSystem
from repro.ntos.iat import ImportAddressTable
from repro.ntos.kernel import Kernel, SimProcess
from repro.ntos.pipes import KPipe

__all__ = ["Win32"]


class Win32:
    """One process's view of the Win32 API (calls go through its IAT)."""

    def __init__(self, kernel: Kernel, process: SimProcess,
                 fs: NTFileSystem) -> None:
        self.kernel = kernel
        self.process = process
        self.fs = fs
        self._handles: dict[int, object] = {}
        self._refcounts: dict[int, int] = {}  # id(obj) -> open handles
        self._next_handle = 4
        if process.iat is None:
            process.iat = ImportAddressTable()
        self.iat = process.iat
        self._bind_defaults()

    # -- handle table -----------------------------------------------------------------

    def _allocate(self, obj: object) -> int:
        handle = self._next_handle
        self._next_handle += 4
        self._handles[handle] = obj
        self._refcounts[id(obj)] = self._refcounts.get(id(obj), 0) + 1
        return handle

    def _get(self, handle: int) -> object:
        try:
            return self._handles[handle]
        except KeyError:
            raise SimulationError(f"invalid handle: {handle}") from None

    def register_handle(self, obj: object) -> int:
        """Allocate a (possibly fictitious) handle for stub-owned state."""
        return self._allocate(obj)

    def handle_object(self, handle: int) -> object:
        return self._get(handle)

    # -- default (kernel32) bindings -----------------------------------------------------

    def _bind_defaults(self) -> None:
        self.iat.bind("CreateFile", self._create_file)
        self.iat.bind("ReadFile", self._read_file)
        self.iat.bind("WriteFile", self._write_file)
        self.iat.bind("SetFilePointer", self._set_file_pointer)
        self.iat.bind("GetFileSize", self._get_file_size)
        self.iat.bind("CloseHandle", self._close_handle)

    def _create_file(self, path: str, create: bool = False) -> int:
        return self._allocate(self.fs.open(path, create=create))

    def _read_file(self, handle: int, size: int) -> bytes:
        stream = self._get(handle)
        if not isinstance(stream, NTFile):
            raise SimulationError(f"ReadFile on non-file handle {handle}")
        return stream.read(size)

    def _write_file(self, handle: int, data: bytes) -> int:
        stream = self._get(handle)
        if not isinstance(stream, NTFile):
            raise SimulationError(f"WriteFile on non-file handle {handle}")
        return stream.write(data)

    def _set_file_pointer(self, handle: int, offset: int) -> int:
        stream = self._get(handle)
        if not isinstance(stream, NTFile):
            raise SimulationError(f"SetFilePointer on non-file handle {handle}")
        self.kernel.syscall()
        return stream.seek(offset)

    def _get_file_size(self, handle: int) -> int:
        stream = self._get(handle)
        if not isinstance(stream, NTFile):
            raise SimulationError(f"GetFileSize on non-file handle {handle}")
        return stream.size()

    def _close_handle(self, handle: int) -> None:
        obj = self._handles.pop(handle, None)
        if obj is None:
            raise SimulationError(f"invalid handle: {handle}")
        self.kernel.syscall()
        # NT semantics: the object goes away with its *last* handle
        remaining = self._refcounts.get(id(obj), 1) - 1
        if remaining > 0:
            self._refcounts[id(obj)] = remaining
            return
        self._refcounts.pop(id(obj), None)
        close = getattr(obj, "close", None)
        if callable(close):
            close()

    # -- application-facing API (through the IAT) --------------------------------------------

    def CreateFile(self, path: str, create: bool = False) -> int:
        return self.iat.call("CreateFile", path, create)

    def ReadFile(self, handle: int, size: int) -> bytes:
        return self.iat.call("ReadFile", handle, size)

    def WriteFile(self, handle: int, data: bytes) -> int:
        return self.iat.call("WriteFile", handle, data)

    def SetFilePointer(self, handle: int, offset: int) -> int:
        return self.iat.call("SetFilePointer", handle, offset)

    def GetFileSize(self, handle: int) -> int:
        return self.iat.call("GetFileSize", handle)

    def CloseHandle(self, handle: int) -> None:
        return self.iat.call("CloseHandle", handle)

    # -- process/thread/pipe conveniences ----------------------------------------------------

    def CreateThread(self, target: Callable[[], None], name: str = ""):
        """Spawn a thread in this process (charged as a syscall)."""
        self.kernel.syscall(self.kernel.costs.event_signal_us)
        return self.kernel.create_thread(self.process, target,
                                         name or f"{self.process.name}:thr")

    def CreatePipe(self, name: str = "") -> KPipe:
        self.kernel.syscall(self.kernel.costs.pipe_op_us)
        return KPipe(self.kernel, name=name)

    def DuplicateHandle(self, handle: int) -> int:
        """Appendix A.2: "pipe handles are duplicated using the
        DuplicateHandle function" — a second handle onto the same
        kernel object."""
        target = self._get(handle)
        self.kernel.syscall()
        return self._allocate(target)

    def WaitForSingleObject(self, thread) -> None:
        """Block until *thread* (a SimThread) finishes."""
        self.kernel.join(thread)

    def WaitForMultipleObjects(self, threads, wait_all: bool = True) -> None:
        """Figure 2's ``WaitForMultipleObjects(2, hthrd, TRUE, INFINITE)``."""
        if not wait_all:
            raise SimulationError("only wait_all=True is modelled")
        self.kernel.join_all(threads)
