"""The virtual-time cooperative kernel.

Simulated threads are carried by real Python threads, but *exactly one*
is ever runnable: every blocking primitive hands the CPU to the next
ready thread (charging a context switch) and parks the caller on a
private condition variable.  Time is a virtual microsecond clock that
only moves when a primitive charges it or when the scheduler jumps to
the next timer while everything is blocked.

The design invariants (tested in ``tests/ntos``):

* single-runnable — at most one simulated thread executes between
  handoffs;
* monotonic clock — ``kernel.now`` never decreases;
* determinism — FIFO ready queue + sequence-numbered timers, no wall
  clock, no RNG: identical programs produce identical schedules and
  identical final clocks;
* deadlock detection — if every thread is blocked and no timer is
  pending, the kernel raises :class:`~repro.errors.DeadlockError`
  instead of hanging the host process.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Callable

from repro.errors import DeadlockError, SimulationError
from repro.ntos.costs import CostModel

__all__ = ["Kernel", "SimProcess", "SimThread"]


class SimProcess:
    """A simulated address space; threads of one process switch cheaply."""

    def __init__(self, kernel: "Kernel", name: str, pid: int) -> None:
        self.kernel = kernel
        self.name = name
        self.pid = pid
        self.threads: list["SimThread"] = []
        #: Import address table; populated lazily by the win32 veneer.
        self.iat = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimProcess({self.name!r}, pid={self.pid})"


class SimThread:
    """A simulated thread carried by one (parked) real Python thread."""

    def __init__(self, kernel: "Kernel", process: SimProcess,
                 target: Callable[[], None], name: str, tid: int) -> None:
        self.kernel = kernel
        self.process = process
        self.name = name
        self.tid = tid
        self.target = target
        self.finished = False
        self.blocked_on: str | None = None
        #: Threads blocked in join() on this thread.
        self.joiners: list["SimThread"] = []
        #: Virtual µs of CPU charged while this thread was current.
        self.cpu_us = 0.0
        self._turn = threading.Condition()
        self._can_run = False
        self._carrier = threading.Thread(target=self._main, name=name,
                                         daemon=True)

    # -- carrier-thread machinery -------------------------------------------------

    def _main(self) -> None:
        self._await_turn()
        try:
            if self.kernel._failure is None:
                self.target()
        except DeadlockError:
            pass  # already recorded by the scheduler
        except BaseException as exc:  # propagate to the host thread
            self.kernel._record_failure(exc)
        finally:
            self.kernel._thread_exit(self)

    def _await_turn(self) -> None:
        with self._turn:
            while not self._can_run:
                self._turn.wait()
            self._can_run = False

    def _resume(self) -> None:
        with self._turn:
            self._can_run = True
            self._turn.notify()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else (self.blocked_on or "ready")
        return f"SimThread({self.name!r}, {state})"


class Kernel:
    """Scheduler, virtual clock and accounting for one simulation run."""

    def __init__(self, costs: CostModel | None = None) -> None:
        self.costs = costs or CostModel()
        self.now = 0.0
        self.current: SimThread | None = None
        self._ready: deque[SimThread] = deque()
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = itertools.count()
        self._pid_seq = itertools.count(4, 4)
        self._tid_seq = itertools.count(100, 4)
        self._live = 0
        self._threads: list[SimThread] = []
        self._done = threading.Condition()
        self._failure: BaseException | None = None
        # accounting
        self.context_switches = 0
        self.process_switches = 0
        self.syscalls = 0
        self.started = False

    # -- construction ---------------------------------------------------------------

    def create_process(self, name: str) -> SimProcess:
        self.charge_if_running(self.costs.process_create_us)
        return SimProcess(self, name, next(self._pid_seq))

    def create_thread(self, process: SimProcess, target: Callable[[], None],
                      name: str = "") -> SimThread:
        """Create a thread; it becomes ready immediately (NT semantics)."""
        self.charge_if_running(self.costs.thread_create_us)
        tid = next(self._tid_seq)
        thread = SimThread(self, process, target,
                           name or f"{process.name}:t{tid}", tid)
        process.threads.append(thread)
        self._threads.append(thread)
        self._live += 1
        self._ready.append(thread)
        thread._carrier.start()
        return thread

    # -- time ------------------------------------------------------------------------

    def charge(self, microseconds: float) -> None:
        """Advance the clock: the current thread spent this much CPU."""
        if microseconds < 0:
            raise SimulationError("cannot charge negative time")
        self.now += microseconds
        if self.current is not None:
            self.current.cpu_us += microseconds

    def cpu_by_process(self) -> dict[str, float]:
        """Aggregate charged CPU per process name (analysis helper)."""
        totals: dict[str, float] = {}
        for thread in self._threads:
            name = thread.process.name
            totals[name] = totals.get(name, 0.0) + thread.cpu_us
        return totals

    def charge_if_running(self, microseconds: float) -> None:
        """Charge only when a simulated thread is executing (creation
        from the host thread during setup is free)."""
        if self.current is not None:
            self.charge(microseconds)

    def syscall(self, extra_us: float = 0.0) -> None:
        """Charge one kernel crossing (plus *extra_us* of kernel work)."""
        self.syscalls += 1
        self.charge(self.costs.syscall_us + extra_us)

    def at(self, deadline_us: float, callback: Callable[[], None]) -> None:
        """Run *callback* when the clock reaches *deadline_us*."""
        heapq.heappush(self._timers, (deadline_us, next(self._timer_seq),
                                      callback))

    # -- scheduling core ----------------------------------------------------------------

    def _pick_next(self, blocking: SimThread | None) -> SimThread | None:
        """Next ready thread, advancing the clock over timers if needed.

        Returns ``None`` only when no thread exists to run and no timer
        can create one — the caller decides whether that is normal
        termination or deadlock.
        """
        while True:
            if self._ready:
                return self._ready.popleft()
            if self._timers:
                deadline, _, callback = heapq.heappop(self._timers)
                if deadline > self.now:
                    self.now = deadline
                callback()
                continue
            return None

    def _handoff(self, me: SimThread, make_me_ready: bool,
                 reason: str = "") -> None:
        """Give up the CPU; return when scheduled again."""
        if self.current is not me:
            raise SimulationError(
                f"{me.name} tried to hand off while {self.current} runs"
            )
        if make_me_ready:
            self._ready.append(me)
        else:
            me.blocked_on = reason or "blocked"
        nxt = self._pick_next(blocking=me)
        if nxt is me:
            me.blocked_on = None
            return  # sole runnable thread: keep going, no switch cost
        if nxt is None:
            self._record_failure(DeadlockError(
                f"all threads blocked ({me.name} on "
                f"{reason or 'unknown'}) with no pending timers"
            ))
            raise self._failure  # unwind this carrier thread
        self._switch_to(nxt, from_thread=me)
        me._await_turn()
        me.blocked_on = None
        if self._failure is not None:
            raise self._failure

    def _switch_to(self, nxt: SimThread, from_thread: SimThread | None) -> None:
        self.context_switches += 1
        same = (from_thread is not None
                and nxt.process is from_thread.process)
        if not same:
            self.process_switches += 1
        if from_thread is not None:
            self.charge(self.costs.switch_us(same))
        self.current = nxt
        nxt._resume()

    # -- public scheduling primitives --------------------------------------------------

    def yield_cpu(self) -> None:
        """Voluntarily reschedule (stay ready)."""
        self._handoff(self.current, make_me_ready=True)

    def block(self, reason: str) -> None:
        """Park the current thread; someone must :meth:`wake` it."""
        self._handoff(self.current, make_me_ready=False, reason=reason)

    def wake(self, thread: SimThread) -> None:
        """Make a blocked thread ready (runs when its turn comes)."""
        if thread.finished:
            raise SimulationError(f"cannot wake finished thread {thread.name}")
        self._ready.append(thread)

    def sleep(self, duration_us: float) -> None:
        """Block the current thread for *duration_us* of virtual time."""
        me = self.current
        self.at(self.now + duration_us, lambda: self.wake(me))
        self.block(f"sleep({duration_us})")

    def join(self, thread: SimThread) -> None:
        """Block until *thread* finishes (WaitForSingleObject on a thread)."""
        if thread is self.current:
            raise SimulationError(f"{thread.name} cannot join itself")
        self.syscall(self.costs.event_wait_us)
        if thread.finished:
            return
        thread.joiners.append(self.current)
        self.block(f"join({thread.name})")

    def join_all(self, threads) -> None:
        """WaitForMultipleObjects(..., TRUE, INFINITE) over threads."""
        for thread in threads:
            self.join(thread)

    def _thread_exit(self, thread: SimThread) -> None:
        thread.finished = True
        for joiner in thread.joiners:
            self._ready.append(joiner)
        thread.joiners.clear()
        with self._done:
            self._live -= 1
            if self._live == 0 or self._failure is not None:
                self._done.notify_all()
                if self._live == 0:
                    return
        if self._failure is not None:
            return
        nxt = self._pick_next(blocking=None)
        if nxt is None:
            self._record_failure(DeadlockError(
                f"{thread.name} exited leaving only blocked threads"
            ))
            return
        self._switch_to(nxt, from_thread=thread)

    def _record_failure(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        with self._done:
            self._done.notify_all()
        # wake every parked carrier so it can observe the failure and
        # unwind (they check self._failure when resumed)
        for thread in self._threads:
            if not thread.finished:
                thread._resume()

    # -- running ---------------------------------------------------------------------------

    def run(self) -> float:
        """Start scheduling and block (host thread) until completion.

        Returns the final virtual clock in microseconds.  Re-raises any
        failure (including deadlock) detected during the run.
        """
        if self.started:
            raise SimulationError("kernel already ran; create a fresh one")
        self.started = True
        if not self._ready:
            return self.now
        first = self._ready.popleft()
        self.current = first
        first._resume()
        with self._done:
            while self._live > 0 and self._failure is None:
                self._done.wait()
        if self._failure is not None:
            raise self._failure
        return self.now

    def run_program(self, main: Callable[[], None],
                    process_name: str = "main") -> float:
        """Convenience: one process, one thread running *main*, then run."""
        process = self.create_process(process_name)
        self.create_thread(process, main, name=f"{process_name}:main")
        return self.run()
