r"""An NTFS-flavoured filesystem with named streams and disk costs.

Two roles:

* **packaging** — Appendix A: "Both are saved as (passive) files,
  relying on NTFS streams capability to package them as a single data
  file".  A file here is a dictionary of named streams; the unnamed
  stream is the regular contents, and active files store their
  executable reference under ``:active`` next to the data in the
  unnamed stream.  Copy/rename move all streams at once.

* **cost model** — file reads and writes charge the syscall, a fixed
  filesystem operation cost and a per-byte transfer cost; this is the
  backing of the paper's path 2 ("the sentinel interacts with its local
  file").
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.ntos.kernel import Kernel
from repro.util.bytesbuf import ByteBuffer

__all__ = ["NTFileSystem", "NTFile"]

#: The default (anonymous) stream, like NTFS's unnamed data stream.
DEFAULT_STREAM = ""


def split_stream(path: str) -> tuple[str, str]:
    """Split ``name:stream`` NTFS syntax into (name, stream)."""
    if ":" in path:
        name, _, stream = path.partition(":")
        return name, stream
    return path, DEFAULT_STREAM


class NTFile:
    """An open handle onto one stream of one file."""

    def __init__(self, fs: "NTFileSystem", name: str, stream: str) -> None:
        self.fs = fs
        self.name = name
        self.stream = stream
        self.position = 0
        self.closed = False

    def _body(self) -> ByteBuffer:
        return self.fs._stream(self.name, self.stream)

    def _charge_read(self, nbytes: int) -> None:
        kernel = self.fs.kernel
        kernel.syscall(kernel.costs.disk_read_op_us)
        kernel.charge(nbytes * kernel.costs.disk_read_us_per_byte)

    def _charge_write(self, nbytes: int) -> None:
        kernel = self.fs.kernel
        kernel.syscall(kernel.costs.disk_write_op_us)
        kernel.charge(nbytes * kernel.costs.disk_write_us_per_byte)

    def read(self, size: int) -> bytes:
        if self.closed:
            raise SimulationError(f"read on closed {self.name}")
        data = self._body().read_at(self.position, size)
        self._charge_read(len(data))
        self.position += len(data)
        return data

    def read_at(self, offset: int, size: int) -> bytes:
        if self.closed:
            raise SimulationError(f"read on closed {self.name}")
        data = self._body().read_at(offset, size)
        self._charge_read(len(data))
        return data

    def write(self, data: bytes) -> int:
        if self.closed:
            raise SimulationError(f"write on closed {self.name}")
        self._charge_write(len(data))
        written = self._body().write_at(self.position, data)
        self.position += written
        return written

    def write_at(self, offset: int, data: bytes) -> int:
        if self.closed:
            raise SimulationError(f"write on closed {self.name}")
        self._charge_write(len(data))
        return self._body().write_at(offset, data)

    def seek(self, offset: int) -> int:
        self.position = offset
        return offset

    def size(self) -> int:
        self.fs.kernel.syscall()  # GetFileSize is a cheap metadata call
        return self._body().size

    def close(self) -> None:
        self.closed = True


class NTFileSystem:
    """The volume: named files, each a dict of streams."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._files: dict[str, dict[str, ByteBuffer]] = {}

    # -- namespace ---------------------------------------------------------------

    def _stream(self, name: str, stream: str) -> ByteBuffer:
        try:
            return self._files[name][stream]
        except KeyError:
            raise SimulationError(f"no such file/stream: {name}:{stream}") \
                from None

    def create(self, path: str, contents: bytes = b"") -> None:
        """Create a file (or one of its streams)."""
        name, stream = split_stream(path)
        streams = self._files.setdefault(name, {})
        streams[stream] = ByteBuffer(contents)

    def exists(self, path: str) -> bool:
        name, stream = split_stream(path)
        return name in self._files and stream in self._files[name]

    def streams_of(self, name: str) -> list[str]:
        if name not in self._files:
            raise SimulationError(f"no such file: {name}")
        return sorted(self._files[name])

    def open(self, path: str, create: bool = False) -> NTFile:
        name, stream = split_stream(path)
        if create and not self.exists(path):
            self.create(path)
        self.kernel.syscall(self.kernel.costs.disk_read_op_us)  # open touches FS
        self._stream(name, stream)  # existence check
        return NTFile(self, name, stream)

    def read_whole(self, path: str) -> bytes:
        """Metadata-ish helper without positional bookkeeping (charged)."""
        name, stream = split_stream(path)
        body = self._stream(name, stream)
        self.kernel.syscall(self.kernel.costs.disk_read_op_us)
        self.kernel.charge(body.size * self.kernel.costs.disk_read_us_per_byte)
        return body.getvalue()

    # -- directory operations (move all streams together) -------------------------

    def copy(self, source: str, destination: str) -> None:
        """Copy a file with *all* its streams (the paper's §2.1 property)."""
        if source not in self._files:
            raise SimulationError(f"no such file: {source}")
        total = sum(body.size for body in self._files[source].values())
        self.kernel.syscall(self.kernel.costs.disk_read_op_us)
        self.kernel.charge(total * (self.kernel.costs.disk_read_us_per_byte
                                    + self.kernel.costs.disk_write_us_per_byte))
        self._files[destination] = {
            stream: ByteBuffer(body.getvalue())
            for stream, body in self._files[source].items()
        }

    def rename(self, source: str, destination: str) -> None:
        if source not in self._files:
            raise SimulationError(f"no such file: {source}")
        self.kernel.syscall(self.kernel.costs.disk_read_op_us)
        self._files[destination] = self._files.pop(source)

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise SimulationError(f"no such file: {name}")
        self.kernel.syscall(self.kernel.costs.disk_read_op_us)
        del self._files[name]

    def listdir(self) -> list[str]:
        return sorted(self._files)
