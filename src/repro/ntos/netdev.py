"""The NIC and wire model — path 1's remote information source.

A :class:`RemoteHost` stands for one machine across the 100 Mbps Fast
Ethernet link.  Two interaction shapes cover what the paper's sentinels
do:

* :meth:`RemoteHost.request` — a blocking RPC: send a request, the
  server processes it, the response comes back.  The caller's simulated
  thread parks for the whole round trip (other threads may run — that
  overlap is what lets write streaming "hide some of the latency").
* :meth:`RemoteHost.send` — a one-way update message ("sends an update
  message to the remote service"): the caller pays the local send cost
  (serialization onto the wire) and continues; delivery completes via a
  timer.

A bounded number of in-flight one-way messages models the transmit
queue: once it is full, further sends block until the wire drains —
the bandwidth restriction the Write curves measure.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import SimulationError
from repro.ntos.kernel import Kernel, SimThread

__all__ = ["NetDevice", "RemoteHost"]


class NetDevice:
    """The local NIC: serializes outbound messages one at a time."""

    def __init__(self, kernel: Kernel, queue_limit: int = 8) -> None:
        self.kernel = kernel
        self.queue_limit = queue_limit
        self._in_flight = 0
        self._blocked_senders: deque[SimThread] = deque()
        #: Virtual time at which the transmitter becomes free.
        self._tx_free_at = 0.0
        self.messages_sent = 0
        self.bytes_sent = 0

    def _tx_time(self, nbytes: int) -> float:
        """Wire occupancy of one message (serialization only)."""
        return nbytes * self.kernel.costs.net_us_per_byte

    def transmit(self, nbytes: int, on_delivered: Callable[[], None],
                 block_until_sent: bool = False) -> None:
        """Queue one message; *on_delivered* fires at the receiver.

        The caller is charged the protocol-stack cost synchronously and
        blocks if the transmit queue is full.  With *block_until_sent*
        the caller additionally waits until the message has left the
        wire (a send through a small socket buffer), which is how the
        sentinel's synchronous update messages behave.
        """
        kernel = self.kernel
        while self._in_flight >= self.queue_limit:
            self._blocked_senders.append(kernel.current)
            kernel.block("nic-queue-full")
        # protocol stack work (buffer handoff into the driver)
        kernel.syscall(nbytes * kernel.costs.kernel_copy_us_per_byte)
        start = max(kernel.now, self._tx_free_at)
        done = start + self._tx_time(nbytes)
        self._tx_free_at = done
        self._in_flight += 1
        self.messages_sent += 1
        self.bytes_sent += nbytes
        delivered_at = done + kernel.costs.net_latency_us

        def arrive() -> None:
            self._in_flight -= 1
            while self._blocked_senders and self._in_flight < self.queue_limit:
                kernel.wake(self._blocked_senders.popleft())
            on_delivered()

        kernel.at(delivered_at, arrive)
        if block_until_sent and done > kernel.now:
            me = kernel.current
            state = {"sent": False}

            def wire_clear() -> None:
                state["sent"] = True
                kernel.wake(me)

            kernel.at(done, wire_clear)
            while not state["sent"]:
                kernel.block("nic-wire-busy")


class RemoteHost:
    """One remote machine reachable through the local NIC."""

    def __init__(self, kernel: Kernel, nic: NetDevice, name: str = "") -> None:
        self.kernel = kernel
        self.nic = nic
        self.name = name or "remote"
        self.requests = 0
        self.one_way_messages = 0

    def request(self, request_bytes: int, response_bytes: int,
                server_us: float | None = None) -> None:
        """Blocking RPC round trip; returns when the response arrived."""
        kernel = self.kernel
        if server_us is None:
            server_us = kernel.costs.server_us
        me = kernel.current
        state = {"responded": False}

        def response_arrived() -> None:
            state["responded"] = True
            kernel.wake(me)

        def request_arrived() -> None:
            # server processes, then the response crosses the wire back;
            # response NIC is the server's, modelled with the same params
            response_at = (kernel.now + server_us
                           + self.nic._tx_time(response_bytes)
                           + kernel.costs.net_latency_us)
            kernel.at(response_at, response_arrived)

        self.requests += 1
        self.nic.transmit(request_bytes, request_arrived)
        while not state["responded"]:
            kernel.block(f"rpc({self.name})")
        # response delivery into our buffers
        kernel.syscall(response_bytes * kernel.costs.kernel_copy_us_per_byte)

    def send(self, nbytes: int, blocking: bool = False) -> None:
        """One-way update message.

        Non-blocking (default): returns once the NIC queued it.
        Blocking: returns once the message has left the wire — the
        shape of a sentinel's synchronous update send through a small
        socket buffer.
        """
        self.one_way_messages += 1
        self.nic.transmit(nbytes, lambda: None, block_until_sent=blocking)

    def drain(self) -> None:
        """Block until every queued one-way message is delivered."""
        kernel = self.kernel
        if self.nic._in_flight == 0:
            return
        me = kernel.current
        state = {"done": False}

        def check() -> None:
            if self.nic._in_flight == 0:
                state["done"] = True
                kernel.wake(me)
            else:
                kernel.at(kernel.now + 1.0, check)

        kernel.at(kernel.now + 1.0, check)
        while not state["done"]:
            kernel.block("nic-drain")

