"""Anonymous pipes with kernel-crossing costs.

Pipes are the transport of both process-based strategies.  Their cost
structure is exactly why those strategies are slow: every operation is
a system call, and "file data is ... copied from user space to kernel
space and then to user space" — one kernel copy on write, one on read,
each charged per byte, plus fixed pipe bookkeeping.

A bounded in-kernel buffer provides the flow control the evaluation
relies on for writes: "writes are issued without waiting for their
completion", so a fast writer eventually fills the pipe and runs at the
consumer's bandwidth.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.ntos.kernel import Kernel, SimThread

__all__ = ["KPipe"]


class KPipe:
    """A unidirectional anonymous pipe."""

    def __init__(self, kernel: Kernel, capacity: int | None = None,
                 name: str = "") -> None:
        self.kernel = kernel
        kernel.charge_if_running(kernel.costs.syscall_us
                                 + kernel.costs.pipe_op_us)
        self.capacity = capacity or kernel.costs.pipe_capacity
        self.name = name or "pipe"
        self._buffer = bytearray()
        self._read_closed = False
        self._write_closed = False
        self._readers: deque[SimThread] = deque()
        self._writers: deque[SimThread] = deque()
        self.bytes_transferred = 0

    # -- helpers --------------------------------------------------------------------

    def _charge_op(self, nbytes: int) -> None:
        self.kernel.syscall(self.kernel.costs.pipe_op_us)
        self.kernel.charge(nbytes * self.kernel.costs.kernel_copy_us_per_byte)

    def _wake_all(self, queue: deque[SimThread]) -> None:
        while queue:
            self.kernel.wake(queue.popleft())

    # -- write side -------------------------------------------------------------------

    def write(self, data: bytes) -> int:
        """Write all of *data*, blocking while the pipe is full."""
        if self._write_closed:
            raise SimulationError(f"write on closed {self.name}")
        remaining = memoryview(bytes(data))
        total = len(remaining)
        while len(remaining):
            if self._read_closed:
                raise SimulationError(f"{self.name}: read end closed (EPIPE)")
            space = self.capacity - len(self._buffer)
            if space == 0:
                self._writers.append(self.kernel.current)
                self.kernel.block(f"pipe-full({self.name})")
                continue
            chunk = remaining[:space]
            self._charge_op(len(chunk))
            self._buffer.extend(chunk)
            self.bytes_transferred += len(chunk)
            remaining = remaining[len(chunk):]
            self._wake_all(self._readers)
        return total

    def close_write(self) -> None:
        self._write_closed = True
        self._wake_all(self._readers)

    # -- read side ---------------------------------------------------------------------

    def read(self, size: int) -> bytes:
        """Read up to *size* bytes; blocks while empty; b'' at EOF."""
        if self._read_closed:
            raise SimulationError(f"read on closed {self.name}")
        if size <= 0:
            return b""
        while not self._buffer:
            if self._write_closed:
                return b""
            self._readers.append(self.kernel.current)
            self.kernel.block(f"pipe-empty({self.name})")
        chunk = bytes(self._buffer[:size])
        del self._buffer[:size]
        self._charge_op(len(chunk))
        self._wake_all(self._writers)
        return chunk

    def read_exact(self, size: int) -> bytes:
        """Read exactly *size* bytes; raises on EOF mid-read."""
        pieces = []
        remaining = size
        while remaining:
            chunk = self.read(remaining)
            if not chunk:
                raise SimulationError(
                    f"{self.name}: EOF with {remaining} bytes outstanding"
                )
            pieces.append(chunk)
            remaining -= len(chunk)
        return b"".join(pieces)

    def close_read(self) -> None:
        self._read_closed = True
        self._wake_all(self._writers)

    @property
    def fill(self) -> int:
        return len(self._buffer)
