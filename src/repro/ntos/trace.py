"""Execution tracing for the simulated kernel.

A :class:`Tracer` records scheduler-level events — context switches,
blocks, wakes, timer firings, syscalls — with their virtual timestamps,
bounded to a maximum event count so tracing a long run cannot exhaust
memory.  The timeline renderer turns a trace into the kind of
critical-path narrative the paper's §6 walks through ("completing the
read operation requires a thread in the sentinel process to receive the
read request, copy the buffer, send a message, and context switch...").

Usage::

    kernel = Kernel()
    tracer = Tracer.attach(kernel)
    ... run ...
    print(tracer.render_timeline())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ntos.kernel import Kernel

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler-level event."""

    at_us: float
    kind: str           # "switch" | "block" | "wake" | "exit" | "spawn"
    thread: str
    detail: str = ""


class Tracer:
    """Bounded recorder of kernel scheduling events.

    Attaching wraps the kernel's scheduling entry points; detaching (or
    hitting the bound) restores them.  The kernel itself stays
    trace-agnostic.
    """

    def __init__(self, kernel: Kernel, max_events: int = 100_000) -> None:
        self.kernel = kernel
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._originals: dict[str, Any] = {}

    # -- recording ---------------------------------------------------------------

    def _record(self, kind: str, thread: str, detail: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(at_us=self.kernel.now, kind=kind,
                                      thread=thread, detail=detail))

    @classmethod
    def attach(cls, kernel: Kernel, max_events: int = 100_000) -> "Tracer":
        tracer = cls(kernel, max_events)
        tracer._originals = {
            "_switch_to": kernel._switch_to,
            "block": kernel.block,
            "wake": kernel.wake,
            "create_thread": kernel.create_thread,
            "_thread_exit": kernel._thread_exit,
        }

        def traced_switch_to(nxt, from_thread):
            source = from_thread.name if from_thread else "<scheduler>"
            tracer._record("switch", nxt.name, f"from {source}")
            return tracer._originals["_switch_to"](nxt, from_thread)

        def traced_block(reason):
            current = kernel.current.name if kernel.current else "?"
            tracer._record("block", current, reason)
            return tracer._originals["block"](reason)

        def traced_wake(thread):
            tracer._record("wake", thread.name)
            return tracer._originals["wake"](thread)

        def traced_create_thread(process, target, name=""):
            thread = tracer._originals["create_thread"](process, target, name)
            tracer._record("spawn", thread.name, f"in {process.name}")
            return thread

        def traced_thread_exit(thread):
            tracer._record("exit", thread.name)
            return tracer._originals["_thread_exit"](thread)

        kernel._switch_to = traced_switch_to
        kernel.block = traced_block
        kernel.wake = traced_wake
        kernel.create_thread = traced_create_thread
        kernel._thread_exit = traced_thread_exit
        return tracer

    def detach(self) -> None:
        for name, original in self._originals.items():
            setattr(self.kernel, name, original)
        self._originals = {}

    # -- analysis ------------------------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def blocks_by_reason(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for event in self.events:
            if event.kind == "block":
                # collapse parametric reasons: "sleep(3.0)" -> "sleep"
                reason = event.detail.split("(", 1)[0]
                totals[reason] = totals.get(reason, 0) + 1
        return totals

    def render_timeline(self, limit: int = 50) -> str:
        """A human-readable critical-path narrative."""
        lines = [f"{'t (µs)':>10}  {'event':<7} {'thread':<28} detail"]
        for event in self.events[:limit]:
            lines.append(f"{event.at_us:>10.2f}  {event.kind:<7} "
                         f"{event.thread:<28} {event.detail}")
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events"
                         + (f" ({self.dropped} dropped)" if self.dropped else ""))
        return "\n".join(lines)
