"""Shared-memory sections.

The DLL-with-thread strategy's data plane: "the data is passed using a
shared memory buffer", so a transfer costs exactly one user-level
memcpy — the paper's "only one user-level copy" advantage over pipes.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.ntos.kernel import Kernel

__all__ = ["SharedSection"]


class SharedSection:
    """A fixed-size mapped memory region."""

    def __init__(self, kernel: Kernel, size: int, name: str = "") -> None:
        if size <= 0:
            raise SimulationError("shared section size must be positive")
        self.kernel = kernel
        kernel.charge_if_running(kernel.costs.syscall_us)
        self.size = size
        self.name = name or "section"
        self._memory = bytearray(size)
        #: Bytes meaningful in the section (set by the last copy_in).
        self.used = 0

    def copy_in(self, data: bytes, offset: int = 0) -> int:
        """memcpy user buffer -> section; charges per byte."""
        if offset + len(data) > self.size:
            raise SimulationError(
                f"{self.name}: copy_in of {len(data)}B at {offset} exceeds "
                f"section size {self.size}"
            )
        self.kernel.charge(len(data) * self.kernel.costs.memcpy_us_per_byte)
        self._memory[offset:offset + len(data)] = data
        self.used = max(self.used, offset + len(data))
        return len(data)

    def copy_out(self, size: int, offset: int = 0) -> bytes:
        """memcpy section -> user buffer; charges per byte."""
        if offset + size > self.size:
            raise SimulationError(
                f"{self.name}: copy_out of {size}B at {offset} exceeds "
                f"section size {self.size}"
            )
        self.kernel.charge(size * self.kernel.costs.memcpy_us_per_byte)
        return bytes(self._memory[offset:offset + size])
