"""Plugin: the span-tree analyzers over the bundle's spans.jsonl."""

from __future__ import annotations

from typing import Any

from repro.doctor.engine import Analyzer, register
from repro.doctor.spans import (
    QueueWaitSkew,
    ReadaheadCollapse,
    RetryDominatedOpens,
)


@register("spantree")
def _build(config: dict[str, Any]) -> list[Analyzer]:
    return [RetryDominatedOpens(), QueueWaitSkew(), ReadaheadCollapse()]
