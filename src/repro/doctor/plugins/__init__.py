"""Doctor analyzer plugins (entry-point style discovery).

Every module in this package is imported by
:func:`repro.doctor.engine.build_analyzers`; a module registers its
analyzer factory with :func:`repro.doctor.engine.register` at import
time.  Dropping a new module here is the entire registration ceremony
— no central list to edit.
"""
