"""Plugin: the declarative YAML checks under ``doctor/checks/``."""

from __future__ import annotations

from typing import Any

from repro.doctor.checks import (
    DeclarativeCheck,
    default_checks_dir,
    load_checks,
)
from repro.doctor.engine import Analyzer, register


@register("declarative")
def _build(config: dict[str, Any]) -> list[Analyzer]:
    checks_dir = config.get("checks_dir") or default_checks_dir()
    return [DeclarativeCheck(doc) for doc in load_checks(checks_dir)]
