"""``afctl doctor`` — a plugin-based diagnostics engine.

The observability plane (PRs 4–8) produces snapshots, span exports and
chaos reports; this package interprets them.  Diagnostics consume and
produce plain files — an evidence *bundle* directory in, a ranked
findings report out — so they compose with everything else in the
system exactly like active files themselves do.

Public surface:

* :class:`~repro.doctor.engine.Evidence` — load a bundle directory or
  capture one live from a running sentinel host;
* :func:`~repro.doctor.engine.run_doctor` — run every registered
  analyzer (declarative YAML checks + span-tree analyzers + any
  plugin-provided ones) and emit the report;
* :func:`~repro.doctor.engine.render_report` — the summary tree.

See DESIGN.md "Diagnostics engine" for how to add a check.
"""

from repro.doctor.engine import (  # noqa: F401
    Analyzer,
    Evidence,
    Finding,
    build_analyzers,
    render_report,
    run_doctor,
)

__all__ = ["Analyzer", "Evidence", "Finding", "build_analyzers",
           "render_report", "run_doctor"]
