"""The diagnostics engine: evidence in, ranked findings out.

Three layers, mirroring the chaos engine's declarative design:

* **Evidence** — a loaded telemetry bundle (merged snapshot, optional
  earlier snapshot for trend checks, optional span JSONL, optional
  chaos report, optional live-host ``ping`` reply), with a *flattened*
  view: every observable folded into one ``{dotted.key: number}`` dict
  (plus a per-container scoped variant) so checks reference stable
  names instead of walking nested snapshot shapes.

* **Analyzers** — plugin objects with an ``analyze(evidence) ->
  [Finding]`` method.  Discovery is entry-point style: every module in
  :mod:`repro.doctor.plugins` is imported and registers factories via
  :func:`register`; the two shipped plugins wrap the declarative YAML
  checks (:mod:`repro.doctor.checks`) and the span-tree analyzers
  (:mod:`repro.doctor.spans`).

* **Report** — findings ranked by severity under a stable schema with
  a chaos-style deterministic ``fingerprint``: replaying the doctor
  over the same bundle yields an identical fingerprint, so "did this
  change what doctor sees" is one dict comparison.

The flattening contract (``KNOWN_METRICS`` below) is the seam every
future perf PR extends: land a counter, add its key here, ship a
declarative check that encodes the regression it guards against.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.telemetry import (
    BUNDLE_SCHEMA,
    TELEMETRY,
    MetricsRegistry,
)
from repro.errors import DoctorError

__all__ = [
    "DOCTOR_SCHEMA",
    "SEVERITIES",
    "KNOWN_METRICS",
    "KNOWN_METRIC_PREFIXES",
    "known_metric",
    "Finding",
    "Evidence",
    "Analyzer",
    "register",
    "build_analyzers",
    "run_doctor",
    "render_report",
    "flatten_snapshot",
    "flatten_scopes",
]

#: Version of the doctor report format (bumped on breaking changes;
#: guarded by the schema-contract test).
DOCTOR_SCHEMA = 1

#: Finding severities, most severe first (also the report sort order).
SEVERITIES = ("critical", "warning", "info")
_SEV_RANK = {sev: rank for rank, sev in enumerate(SEVERITIES)}

# ---------------------------------------------------------------------------
# The metric catalog: every dotted key the flattener can produce.  The
# checks linter rejects references to anything else, so a typo'd check
# fails lint instead of silently never firing.
# ---------------------------------------------------------------------------

#: Exact flattened keys (see :func:`flatten_snapshot` for provenance).
KNOWN_METRICS = frozenset({
    # metrics registry (global scope)
    "batch.flushes", "batch.frames.served", "batch.ops.batched",
    "batch.ops.served", "batch.singleton",
    "host.backpressure.stalls", "host.rejects.total", "host.respawns",
    "hosts.pooled", "hosts.spawned",
    "plane.crossover_bytes", "plane.explore", "plane.samples",
    "plane.adaptive", "plane.static_min_bytes",
    "plane.selected.inline", "plane.selected.binhdr", "plane.selected.shm",
    "shm.bytes", "shm.fallback_inline", "shm.slots_leased",
    # coherence + fan-out plane
    "fanout.published", "fanout.delivered", "fanout.dropped",
    "fanout.evicted", "fanout.subscribers",
    "lease.granted", "lease.invalidated", "lease.fill_coalesced",
    "lease.write_waits",
    "transport.header.binary", "transport.header.json",
    # host.* latency-split histograms (flattened)
    "host.queue_wait_s.count", "host.queue_wait_s.sum",
    "host.queue_wait_s.p50", "host.queue_wait_s.p95",
    "host.service_s.count", "host.service_s.sum",
    "host.service_s.p50", "host.service_s.p95",
    # transport totals
    "transport.requests_sent", "transport.replies_received",
    "transport.requests_served", "transport.requests_failed",
    "transport.bytes_sent", "transport.bytes_received",
    "transport.in_flight", "transport.max_in_flight",
    "transport.close_errors",
    # cache aggregate (summed across registered caches)
    "cache.hits", "cache.misses", "cache.prefetch_issued",
    "cache.prefetch_used", "cache.coalesced_flushes",
    "cache.dirty_high_water", "cache.flush_failures", "cache.dirty_bytes",
    "cache.blocks", "cache.inflight_blocks", "cache.window",
    "cache.writeback",
    # host serving loop (section and/or live ping)
    "host.channels.active", "host.queue.depth", "host.inflight",
    "host.rejects", "host.executors", "host.timers",
    "host.sessions", "host.threads",
    # network aggregate
    "network.requests", "network.bytes_sent", "network.bytes_received",
    "network.charged_us", "network.partitions", "network.heals",
    "network.partition_drops",
    # bookkeeping
    "spans.buffered", "spans.dropped", "close_errors.count",
    # per-container (scoped) file stats
    "file.reads", "file.writes", "file.bytes_read", "file.bytes_written",
    "file.seeks", "file.controls", "file.cache_hits", "file.cache_misses",
    "file.prefetch_issued", "file.prefetch_used", "file.coalesced_flushes",
    "file.dirty_high_water",
})

#: Open-ended key families (suffix varies per run: fault rules, op
#: families, session strategies, live latency splits).
KNOWN_METRIC_PREFIXES = (
    "faults.injected.", "faults.fired.", "plane.crossover.",
    "sessions.opened.", "host.lat.", "transport.latency.",
)


def known_metric(name: str) -> bool:
    """True when *name* is a key the flattener can produce."""
    return name in KNOWN_METRICS or name.startswith(KNOWN_METRIC_PREFIXES)


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

@dataclass
class Finding:
    """One diagnosis: what is wrong, how bad, and what to do about it."""

    check: str                 #: the analyzer/check that produced it
    severity: str              #: one of :data:`SEVERITIES`
    subsystem: str             #: shm / cache / host / transport / ...
    message: str               #: human-readable diagnosis
    action: str = ""           #: suggested operator action
    evidence: dict[str, float] = field(default_factory=dict)
    scope: str = ""            #: container path / trace id ("" = global)

    def to_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "severity": self.severity,
            "subsystem": self.subsystem,
            "message": self.message,
            "action": self.action,
            "evidence": {key: self.evidence[key]
                         for key in sorted(self.evidence)},
            "scope": self.scope,
        }

    def sort_key(self) -> tuple:
        return (_SEV_RANK.get(self.severity, len(SEVERITIES)),
                self.subsystem, self.check, self.scope)


# ---------------------------------------------------------------------------
# Snapshot flattening
# ---------------------------------------------------------------------------

def _hist_percentile(snap: dict[str, Any], q: float) -> float:
    """The *q*-quantile of a serialized histogram snap (bucket upper
    bound, in the histogram's native unit; 0.0 when empty)."""
    count = int(snap.get("count") or 0)
    if count <= 0:
        return 0.0
    buckets: list[tuple[float, int]] = []
    for key, tally in (snap.get("buckets") or {}).items():
        if not key.startswith("le_"):
            continue
        bound = float("inf") if key == "le_inf" else float(key[3:])
        buckets.append((bound, int(tally)))
    buckets.sort()
    rank = max(1, int(q * count + 0.999999))
    seen = 0
    last_finite = 0.0
    for bound, tally in buckets:
        if bound != float("inf"):
            last_finite = bound
        seen += tally
        if seen >= rank:
            return last_finite
    return last_finite


def _flat_metrics(metrics: dict[str, Any]) -> dict[str, float]:
    """One metrics scope flattened, histograms gaining p50/p95 keys."""
    flat = MetricsRegistry._flat(metrics)
    for name, value in metrics.items():
        if isinstance(value, dict) and "buckets" in value:
            flat[f"{name}.p50"] = _hist_percentile(value, 0.50)
            flat[f"{name}.p95"] = _hist_percentile(value, 0.95)
    return flat


def _sum_into(out: dict[str, float], key: str, value: Any,
              how: str = "sum") -> None:
    if isinstance(value, bool):
        value = int(value)
    if not isinstance(value, (int, float)):
        return
    if how == "max":
        out[key] = max(out.get(key, 0), value)
    elif how == "min":
        out[key] = min(out.get(key, value), value)
    else:
        out[key] = out.get(key, 0) + value


#: cache fields where summing across caches would be wrong.
_CACHE_MAX_FIELDS = frozenset({"window", "dirty_high_water"})
#: plane fields where the effective value is the min/max across hosts.
_PLANE_MIN_PREFIXES = ("plane.crossover",)
_PLANE_MAX_KEYS = frozenset({"plane.adaptive", "plane.static_min_bytes"})


def flatten_snapshot(snap: dict[str, Any],
                     ping: dict[str, Any] | None = None) -> dict[str, float]:
    """Fold one :meth:`Telemetry.snapshot` into ``{dotted.key: number}``.

    Aggregation rules, section by section (the contract checks rely
    on — extend :data:`KNOWN_METRICS` when extending this):

    * ``cache`` — fields summed across caches (``cache.hits`` ...),
      except ``window``/``dirty_high_water`` which take the max;
    * ``host`` — the serving loop's already-prefixed ``host.*`` gauges,
      summed across loops; a live ``ping`` reply overrides them and
      adds ``host.sessions``/``host.threads`` and ``host.lat.*``;
    * ``plane`` — selection counters summed, ``plane.crossover*``
      min'd (the effective break-even), flags max'd;
    * ``network`` — numeric fields summed (``network.requests`` ...);
    * ``faults`` — armed-plane summaries as ``faults.fired.<rule>``;
    * ``transport`` — the totals dict as ``transport.<key>``;
    * ``spans`` / ``close_errors`` — bookkeeping scalars;
    * ``metrics.global`` — overlaid **last** (authoritative where a
      registry counter shadows a section aggregate), histograms
      contributing ``.count``/``.sum``/``.p50``/``.p95``.
    """
    out: dict[str, float] = {}
    for entry in (snap.get("cache") or {}).values():
        if isinstance(entry, dict):
            for fld, value in entry.items():
                _sum_into(out, f"cache.{fld}", value,
                          "max" if fld in _CACHE_MAX_FIELDS else "sum")
    for entry in (snap.get("host") or {}).values():
        if isinstance(entry, dict):
            for key, value in entry.items():
                _sum_into(out, key, value)
    for entry in (snap.get("plane") or {}).values():
        if isinstance(entry, dict):
            for key, value in entry.items():
                if key.startswith(_PLANE_MIN_PREFIXES):
                    _sum_into(out, key, value, "min")
                elif key in _PLANE_MAX_KEYS:
                    _sum_into(out, key, value, "max")
                else:
                    _sum_into(out, key, value)
    for entry in (snap.get("network") or {}).values():
        if isinstance(entry, dict):
            for fld, value in entry.items():
                _sum_into(out, f"network.{fld}", value)
    for entry in (snap.get("faults") or {}).values():
        if isinstance(entry, dict):
            for rule, value in entry.items():
                _sum_into(out, f"faults.fired.{rule}", value)
    for key, value in (snap.get("transport") or {}).get("totals",
                                                        {}).items():
        _sum_into(out, f"transport.{key}", value)
    spans_info = snap.get("spans") or {}
    _sum_into(out, "spans.buffered", spans_info.get("buffered", 0))
    _sum_into(out, "spans.dropped", spans_info.get("dropped", 0))
    _sum_into(out, "close_errors.count",
              (snap.get("close_errors") or {}).get("count", 0))
    if ping:
        for key, value in (ping.get("host") or {}).items():
            if isinstance(value, (int, float)):
                out[key] = value  # live beats the section aggregate
        for key, value in (ping.get("lat") or {}).items():
            if isinstance(value, (int, float)):
                out[f"host.lat.{key}"] = value
        for key in ("sessions", "threads"):
            if isinstance(ping.get(key), (int, float)):
                out[f"host.{key}"] = ping[key]
    metrics = (snap.get("metrics") or {}).get("global") or {}
    out.update(_flat_metrics(metrics))
    return out


def flatten_scopes(snap: dict[str, Any]) -> dict[str, dict[str, float]]:
    """Per-container flat views: scoped registry metrics (e.g. the
    ``host.respawns`` storm counter) merged with per-open ``file.*``
    stats (collector keys strip their ``#N`` uniquifier)."""
    out: dict[str, dict[str, float]] = {}
    for scope, metrics in ((snap.get("metrics") or {}).get("scopes")
                           or {}).items():
        out.setdefault(scope, {}).update(_flat_metrics(metrics))
    for key, entry in (snap.get("files") or {}).items():
        if not isinstance(entry, dict):
            continue
        scope = key.rsplit("#", 1)[0]
        flat = out.setdefault(scope, {})
        for fld, value in entry.items():
            _sum_into(flat, f"file.{fld}", value)
    return out


# ---------------------------------------------------------------------------
# Evidence
# ---------------------------------------------------------------------------

class Evidence:
    """A telemetry evidence bundle, loaded or captured, plus flat views."""

    def __init__(self, snapshot: dict[str, Any], *,
                 before: dict[str, Any] | None = None,
                 spans: list[dict[str, Any]] | None = None,
                 ping: dict[str, Any] | None = None,
                 chaos_report: dict[str, Any] | None = None,
                 meta: dict[str, Any] | None = None,
                 source: str = "") -> None:
        self.snapshot = snapshot or {}
        self.before = before
        self.spans = list(spans or [])
        self.ping = ping
        self.chaos_report = chaos_report
        self.meta = dict(meta or {})
        self.source = source
        self._flat: dict[str, float] | None = None
        self._flat_before: dict[str, float] | None = None
        self._scoped: dict[str, dict[str, float]] | None = None

    # -- flat views ----------------------------------------------------------

    @property
    def flat(self) -> dict[str, float]:
        if self._flat is None:
            self._flat = flatten_snapshot(self.snapshot, ping=self.ping)
        return self._flat

    @property
    def flat_before(self) -> dict[str, float] | None:
        """Flattened earlier snapshot (None = trend checks skip)."""
        if self.before is None:
            return None
        if self._flat_before is None:
            self._flat_before = flatten_snapshot(self.before)
        return self._flat_before

    @property
    def scoped(self) -> dict[str, dict[str, float]]:
        if self._scoped is None:
            self._scoped = flatten_scopes(self.snapshot)
        return self._scoped

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_bundle(cls, dirname: str) -> "Evidence":
        """Load a bundle directory written by ``afctl stats --export``
        (or any :meth:`Telemetry.export_bundle` caller)."""
        if not os.path.isdir(dirname):
            raise DoctorError(f"evidence bundle {dirname!r} is not a "
                              "directory")

        def read_json(name: str, required: bool = False):
            path = os.path.join(dirname, name)
            if not os.path.exists(path):
                if required:
                    raise DoctorError(
                        f"bundle {dirname!r} is missing {name}")
                return None
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    return json.load(fh)
            except ValueError as exc:
                raise DoctorError(f"bundle file {name} is not valid "
                                  f"JSON: {exc}") from None

        meta = read_json("meta.json") or {}
        if meta and meta.get("kind") not in (None, "af-evidence"):
            raise DoctorError(f"bundle {dirname!r} meta.json has kind "
                              f"{meta.get('kind')!r}, not 'af-evidence'")
        schema = meta.get("schema", BUNDLE_SCHEMA)
        if not isinstance(schema, int) or schema > BUNDLE_SCHEMA:
            raise DoctorError(
                f"bundle schema {schema!r} is newer than this doctor "
                f"understands ({BUNDLE_SCHEMA})")
        snapshot = read_json("snapshot.json", required=True)
        spans: list[dict[str, Any]] = []
        spans_path = os.path.join(dirname, "spans.jsonl")
        if os.path.exists(spans_path):
            with open(spans_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                    except ValueError:
                        continue  # one bad line must not sink the bundle
                    if isinstance(doc, dict):
                        spans.append(doc)
        return cls(snapshot,
                   before=read_json("snapshot_before.json"),
                   spans=spans,
                   ping=read_json("ping.json"),
                   chaos_report=read_json("chaos_report.json"),
                   meta=meta, source=f"bundle:{dirname}")

    @classmethod
    def capture_live(cls, path: str, *,
                     strategy: str = "process-control",
                     sample_bytes: int = 65536,
                     network: Any = None) -> "Evidence":
        """Capture a bundle from a live open of *path*.

        Runs a sample read under tracing, grabs before/after snapshots
        (so trend checks work on a single capture), and — when the open
        rides a pooled sentinel host — the channel-0 ``ping`` reply
        with the host's ``host.*`` gauges and queue-wait/service split.
        """
        from repro.core import open_active

        before = TELEMETRY.snapshot()
        was_tracing = TELEMETRY.tracing
        TELEMETRY.enable_tracing()
        ping = None
        try:
            with open_active(path, "rb", strategy=strategy,
                             network=network) as stream:
                stream.read(sample_bytes)
                host = getattr(getattr(stream, "session", None),
                               "host", None)
                if host is not None and getattr(host, "alive", False):
                    try:
                        ping = host.ping()
                    except Exception:
                        ping = None  # a dying host still yields evidence
        finally:
            TELEMETRY.tracing = was_tracing
        return cls(TELEMETRY.snapshot(), before=before,
                   spans=[span.to_dict() for span in TELEMETRY.spans()],
                   ping=ping, meta={"container": str(path)},
                   source=f"live:{path}")

    def export(self, dirname: str) -> dict[str, str]:
        """Persist this evidence as a bundle directory (plain files)."""
        os.makedirs(dirname, exist_ok=True)
        written: dict[str, str] = {}

        def emit(name: str, doc: Any) -> None:
            target = os.path.join(dirname, name)
            with open(target, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, default=str)
                fh.write("\n")
            written[name] = target

        emit("snapshot.json", self.snapshot)
        if self.before is not None:
            emit("snapshot_before.json", self.before)
        if self.spans:
            target = os.path.join(dirname, "spans.jsonl")
            with open(target, "w", encoding="utf-8") as fh:
                for span in self.spans:
                    fh.write(json.dumps(span, sort_keys=True,
                                        default=str) + "\n")
            written["spans.jsonl"] = target
        if self.ping is not None:
            emit("ping.json", self.ping)
        if self.chaos_report is not None:
            emit("chaos_report.json", self.chaos_report)
        emit("meta.json", {"kind": "af-evidence", "schema": BUNDLE_SCHEMA,
                           "files": sorted(written),
                           **{k: v for k, v in self.meta.items()
                              if k not in ("kind", "schema", "files")}})
        return written


# ---------------------------------------------------------------------------
# Analyzer registry (entry-point style discovery over doctor/plugins/)
# ---------------------------------------------------------------------------

class Analyzer:
    """Base class: one diagnostic lens over an :class:`Evidence`."""

    #: Unique analyzer id (shown in reports; sort key for determinism).
    name = ""
    subsystem = "general"

    def analyze(self, evidence: Evidence) -> list[Finding]:
        raise NotImplementedError


#: plugin name -> factory(config) -> list[Analyzer]
_FACTORIES: dict[str, Callable[[dict[str, Any]], list[Analyzer]]] = {}
_PLUGINS_LOADED = False


def register(name: str):
    """Decorator: register an analyzer factory under *name*.

    The factory receives a config dict (currently ``{"checks_dir":
    str | None}``) and returns the analyzers it contributes.  Plugin
    modules call this at import time; :func:`build_analyzers` imports
    every module in :mod:`repro.doctor.plugins`, so dropping a new
    module there is the whole registration ceremony.
    """
    def wrap(factory: Callable[[dict[str, Any]], list[Analyzer]]):
        _FACTORIES[name] = factory
        return factory
    return wrap


def _load_plugins() -> None:
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED:
        return
    from repro.doctor import plugins as pkg
    for info in pkgutil.iter_modules(pkg.__path__):
        importlib.import_module(f"{pkg.__name__}.{info.name}")
    _PLUGINS_LOADED = True


def build_analyzers(checks_dir: str | None = None) -> list[Analyzer]:
    """Every registered analyzer, deterministically ordered by name."""
    _load_plugins()
    config = {"checks_dir": checks_dir}
    out: list[Analyzer] = []
    for plugin in sorted(_FACTORIES):
        out.extend(_FACTORIES[plugin](config))
    out.sort(key=lambda a: a.name)
    names = [a.name for a in out]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise DoctorError(f"duplicate analyzer names: {sorted(dupes)}")
    return out


# ---------------------------------------------------------------------------
# Running + reporting
# ---------------------------------------------------------------------------

def run_doctor(evidence: Evidence,
               checks_dir: str | None = None) -> dict[str, Any]:
    """Run every analyzer over *evidence*; return the structured report.

    The report's ``fingerprint`` covers schema + ordered findings +
    verdict and nothing wall-clock-dependent, so replaying the doctor
    over the same bundle is fingerprint-identical (the chaos engine's
    replay contract, applied to diagnostics).
    """
    analyzers = build_analyzers(checks_dir)
    findings: list[Finding] = []
    for analyzer in analyzers:
        found = analyzer.analyze(evidence)
        for finding in found:
            if finding.severity not in SEVERITIES:
                raise DoctorError(
                    f"analyzer {analyzer.name} produced invalid "
                    f"severity {finding.severity!r}")
        findings.extend(found)
    findings.sort(key=Finding.sort_key)
    rendered = [finding.to_dict() for finding in findings]
    summary = {sev: 0 for sev in SEVERITIES}
    for finding in findings:
        summary[finding.severity] += 1
    fingerprint: dict[str, Any] = {
        "schema": DOCTOR_SCHEMA,
        "findings": rendered,
        "clean": not findings,
    }
    digest = hashlib.sha256(
        json.dumps(fingerprint, sort_keys=True).encode()).hexdigest()[:16]
    fingerprint["digest"] = digest
    return {
        "schema": DOCTOR_SCHEMA,
        "source": evidence.source,
        "bundle": {key: evidence.meta[key]
                   for key in sorted(evidence.meta) if key != "files"},
        "analyzers": [analyzer.name for analyzer in analyzers],
        "findings": rendered,
        "summary": summary,
        "clean": not findings,
        "fingerprint": fingerprint,
    }


def render_report(report: dict[str, Any]) -> str:
    """The human summary tree (``--json`` bypasses this)."""
    lines: list[str] = []
    summary = report.get("summary") or {}
    total = sum(summary.values())
    if report.get("clean"):
        verdict = "clean"
    else:
        parts = [f"{summary[sev]} {sev}" for sev in SEVERITIES
                 if summary.get(sev)]
        verdict = f"{total} finding{'s' if total != 1 else ''} " \
                  f"({', '.join(parts)})"
    source = report.get("source") or "evidence"
    lines.append(f"doctor: {verdict} — {source} "
                 f"[{len(report.get('analyzers', []))} analyzers, "
                 f"fingerprint {report['fingerprint']['digest']}]")
    by_subsystem: dict[str, list[dict[str, Any]]] = {}
    for finding in report.get("findings", []):
        by_subsystem.setdefault(finding["subsystem"], []).append(finding)
    for subsystem in sorted(by_subsystem):
        lines.append(f"  {subsystem}:")
        for finding in by_subsystem[subsystem]:
            where = f" [{finding['scope']}]" if finding.get("scope") else ""
            lines.append(f"    [{finding['severity']}] "
                         f"{finding['check']}{where} — "
                         f"{finding['message']}")
            evidence = finding.get("evidence") or {}
            if evidence:
                detail = " ".join(f"{key}={value:g}"
                                  for key, value in evidence.items())
                lines.append(f"        evidence: {detail}")
            if finding.get("action"):
                lines.append(f"        action: {finding['action']}")
    return "\n".join(lines)
