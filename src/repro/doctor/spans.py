"""Span-tree analyzers: diagnoses only visible in trace structure.

Counters say *how much*; span trees say *where the time went and why*.
These analyzers walk the bundle's ``spans.jsonl`` (the
:meth:`Span.to_dict` shape: trace / sid / parent / name / start_us /
end_us / attrs) and flag pathologies a snapshot cannot express:

* **retry-dominated-opens** — traces whose ``op.*`` spans are mostly
  crash-retry replays (``attrs.cause == "retry"``): the work succeeded
  but only by brute force, and the respawn path is carrying load the
  happy path should;
* **queue-wait-skew** — ``frame.*`` spans whose child ``dispatch.*``
  span (the actual service time, re-parented from the host loop) is a
  sliver of the frame's wall time: requests spend their budget waiting
  in the host's queue, not executing;
* **readahead-collapse** — ``cache.fill`` spans mostly carrying
  ``cause == "demand"`` even though prefetching is active: the
  read-ahead window stopped covering the access pattern.

Each analyzer abstains (returns nothing) below a minimum sample count
— a two-span trace proves nothing either way.
"""

from __future__ import annotations

from typing import Any

from repro.doctor.engine import Analyzer, Evidence, Finding

__all__ = ["RetryDominatedOpens", "QueueWaitSkew", "ReadaheadCollapse"]


def _duration(span: dict[str, Any]) -> float | None:
    start, end = span.get("start_us"), span.get("end_us")
    if isinstance(start, (int, float)) and isinstance(end, (int, float)):
        return float(end) - float(start)
    return None


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class RetryDominatedOpens(Analyzer):
    """Flag traces where crash-retry replays dominate the op stream."""

    name = "retry-dominated-opens"
    subsystem = "transport"

    MIN_RETRIES = 2       #: fewer replays than this is routine recovery
    RETRY_FRACTION = 0.25  #: replays / ops at which retries "dominate"

    def analyze(self, evidence: Evidence) -> list[Finding]:
        per_trace: dict[str, list[int]] = {}
        for span in evidence.spans:
            name = str(span.get("name") or "")
            if not name.startswith("op."):
                continue
            tally = per_trace.setdefault(str(span.get("trace") or "?"),
                                         [0, 0])
            tally[0] += 1
            if (span.get("attrs") or {}).get("cause") == "retry":
                tally[1] += 1
        findings = []
        for trace in sorted(per_trace):
            ops, retries = per_trace[trace]
            if retries >= self.MIN_RETRIES and \
                    retries / ops >= self.RETRY_FRACTION:
                findings.append(Finding(
                    check=self.name, severity="warning",
                    subsystem=self.subsystem,
                    message=f"{retries} of {ops} ops in this trace are "
                            "crash-retry replays — the respawn path is "
                            "carrying the load",
                    action="check host.respawns per container; a flapping "
                           "sentinel wants a spec or resource fix, not "
                           "more retries",
                    evidence={"ops": float(ops), "retries": float(retries),
                              "retry_fraction": retries / ops},
                    scope=trace))
        return findings


class QueueWaitSkew(Analyzer):
    """Flag frames whose service time is a sliver of their wall time."""

    name = "queue-wait-skew"
    subsystem = "host"

    MIN_SAMPLES = 8        #: frame/dispatch pairs needed for a verdict
    SERVICE_FRACTION = 0.2  #: median service/frame ratio below this fires
    MIN_FRAME_US = 1000.0  #: sub-ms frames carry sub-ms waits — noise

    def analyze(self, evidence: Evidence) -> list[Finding]:
        dispatch_by_parent: dict[str, float] = {}
        for span in evidence.spans:
            if str(span.get("name") or "").startswith("dispatch."):
                duration = _duration(span)
                parent = span.get("parent")
                if duration is not None and parent:
                    dispatch_by_parent[str(parent)] = duration
        ratios: list[float] = []
        for span in evidence.spans:
            if not str(span.get("name") or "").startswith("frame."):
                continue
            frame_duration = _duration(span)
            service = dispatch_by_parent.get(str(span.get("sid")))
            if frame_duration and frame_duration >= self.MIN_FRAME_US \
                    and service is not None:
                ratios.append(service / frame_duration)
        if len(ratios) < self.MIN_SAMPLES:
            return []
        median = _median(ratios)
        if median >= self.SERVICE_FRACTION:
            return []
        return [Finding(
            check=self.name, severity="warning", subsystem=self.subsystem,
            message=f"median service time is {median:.0%} of frame wall "
                    "time — requests queue far longer than they execute",
            action="raise the host's executor count or in-flight "
                   "high-water mark, or spread containers across hosts",
            evidence={"samples": float(len(ratios)),
                      "median_service_fraction": median})]


class ReadaheadCollapse(Analyzer):
    """Flag fills going demand-miss although prefetching is active."""

    name = "readahead-collapse"
    subsystem = "cache"

    MIN_FILLS = 8          #: cache.fill spans needed for a verdict
    DEMAND_FRACTION = 0.6  #: demand share at which the window "collapsed"

    def analyze(self, evidence: Evidence) -> list[Finding]:
        fills = demand = 0
        for span in evidence.spans:
            if str(span.get("name") or "") != "cache.fill":
                continue
            fills += 1
            if (span.get("attrs") or {}).get("cause") == "demand":
                demand += 1
        # No prefetch fills at all means read-ahead is off, not broken.
        if fills < self.MIN_FILLS or demand == fills:
            return []
        if demand / fills < self.DEMAND_FRACTION:
            return []
        return [Finding(
            check=self.name, severity="info", subsystem=self.subsystem,
            message=f"{demand} of {fills} cache fills are demand misses "
                    "despite active prefetching — the read-ahead window "
                    "collapsed against this access pattern",
            action="widen the cache's read-ahead window, or check for a "
                   "seek-heavy workload defeating sequential detection",
            evidence={"fills": float(fills), "demand": float(demand),
                      "demand_fraction": demand / fills})]
