"""Declarative metric checks: threshold / ratio / trend rules as data.

Each ``doctor/checks/*.yaml`` file declares exactly one rule over the
flattened snapshot keys (:data:`repro.doctor.engine.KNOWN_METRICS`),
parsed with the same YAML subset the chaos engine's scenarios use.  A
check is the cheapest possible regression guard: when a perf PR lands a
counter, a ten-line file encodes "this ratio going bad means the
feature regressed", and every future ``afctl doctor`` run enforces it.

Three rule types:

* ``threshold`` — compare one metric against a bound
  (``above`` / ``below`` / ``at_least`` / ``at_most``), optionally
  gated by a ``when`` condition on a second metric and optionally
  evaluated ``scope: container`` (once per container, for rules like
  the respawn storm);
* ``ratio`` — ``metric / over`` against a bound, skipped while the
  denominator is below ``min_denominator`` (no verdicts from noise);
* ``trend`` — the metric's delta between the bundle's earlier and
  later snapshots against ``delta_above`` / ``delta_at_least``,
  skipped when the bundle carries no ``snapshot_before.json``.

The linter runs at load time and rejects unknown keys and unknown
metric names outright — a typo'd check fails fast instead of shipping
as a rule that never fires.
"""

from __future__ import annotations

import os
from typing import Any

from repro.doctor.engine import (
    SEVERITIES,
    Analyzer,
    Evidence,
    Finding,
    known_metric,
)
from repro.errors import DoctorError
from repro.util import yamlite

__all__ = ["default_checks_dir", "load_checks", "lint_check",
           "DeclarativeCheck"]

#: Comparator key -> predicate(value, bound).
_COMPARATORS = {
    "above": lambda value, bound: value > bound,
    "below": lambda value, bound: value < bound,
    "at_least": lambda value, bound: value >= bound,
    "at_most": lambda value, bound: value <= bound,
}
_TREND_COMPARATORS = {"delta_above": "above", "delta_at_least": "at_least"}

_COMMON_KEYS = {"name", "type", "metric", "severity", "subsystem",
                "message", "action", "scope", "when"}
_ALLOWED_KEYS = {
    "threshold": _COMMON_KEYS | set(_COMPARATORS),
    "ratio": _COMMON_KEYS | set(_COMPARATORS) | {"over",
                                                 "min_denominator"},
    "trend": _COMMON_KEYS | set(_TREND_COMPARATORS),
}
_WHEN_KEYS = {"metric"} | set(_COMPARATORS)
_SCOPES = ("global", "container")


def default_checks_dir() -> str:
    """The shipped ``doctor/checks/`` directory."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "checks")


def _bound_of(doc: dict[str, Any], comparators: dict, where: str
              ) -> tuple[str, float]:
    """The single comparator key present in *doc* (lint: exactly one)."""
    present = [key for key in comparators if key in doc]
    if len(present) != 1:
        raise DoctorError(
            f"{where}: expected exactly one of "
            f"{sorted(comparators)}, got {sorted(present) or 'none'}")
    key = present[0]
    bound = doc[key]
    if isinstance(bound, bool) or not isinstance(bound, (int, float)):
        raise DoctorError(f"{where}: bound {key!r} must be a number, "
                          f"got {bound!r}")
    return key, float(bound)


def lint_check(doc: Any, where: str = "check") -> dict[str, Any]:
    """Validate one parsed check document; return it normalized.

    Raises :class:`DoctorError` naming *where* on any problem — unknown
    keys, unknown metrics, bad severity/type/scope, missing fields.
    """
    if not isinstance(doc, dict):
        raise DoctorError(f"{where}: check document must be a mapping")
    kind = doc.get("type")
    if kind not in _ALLOWED_KEYS:
        raise DoctorError(f"{where}: type must be one of "
                          f"{sorted(_ALLOWED_KEYS)}, got {kind!r}")
    unknown = set(doc) - _ALLOWED_KEYS[kind]
    if unknown:
        raise DoctorError(f"{where}: unknown keys for a {kind} check: "
                          f"{sorted(unknown)}")
    for required in ("name", "metric", "message"):
        if not isinstance(doc.get(required), str) or not doc[required]:
            raise DoctorError(f"{where}: missing required key "
                              f"{required!r}")
    severity = doc.get("severity", "warning")
    if severity not in SEVERITIES:
        raise DoctorError(f"{where}: severity must be one of "
                          f"{list(SEVERITIES)}, got {severity!r}")
    scope = doc.get("scope", "global")
    if scope not in _SCOPES:
        raise DoctorError(f"{where}: scope must be one of "
                          f"{list(_SCOPES)}, got {scope!r}")
    metrics = [doc["metric"]]
    if kind == "ratio":
        over = doc.get("over")
        if not isinstance(over, str) or not over:
            raise DoctorError(f"{where}: ratio check needs 'over'")
        metrics.append(over)
        min_den = doc.get("min_denominator", 1)
        if isinstance(min_den, bool) or not isinstance(min_den,
                                                       (int, float)) \
                or min_den <= 0:
            raise DoctorError(f"{where}: min_denominator must be a "
                              f"positive number, got {min_den!r}")
        if scope != "global":
            raise DoctorError(f"{where}: ratio checks are global-only")
    if kind == "trend":
        _bound_of(doc, _TREND_COMPARATORS, where)
        if scope != "global":
            raise DoctorError(f"{where}: trend checks are global-only")
    else:
        _bound_of(doc, _COMPARATORS, where)
    when = doc.get("when")
    if when is not None:
        if not isinstance(when, dict):
            raise DoctorError(f"{where}: 'when' must be a mapping")
        unknown = set(when) - _WHEN_KEYS
        if unknown:
            raise DoctorError(f"{where}: unknown keys in 'when': "
                              f"{sorted(unknown)}")
        if not isinstance(when.get("metric"), str) or not when["metric"]:
            raise DoctorError(f"{where}: 'when' needs a metric")
        metrics.append(when["metric"])
        _bound_of(when, _COMPARATORS, f"{where} (when)")
    for metric in metrics:
        if not known_metric(metric):
            raise DoctorError(
                f"{where}: unknown metric {metric!r} — not in the "
                "doctor's flattened-snapshot catalog (KNOWN_METRICS)")
    return doc


def load_checks(dirname: str) -> list[dict[str, Any]]:
    """Parse + lint every ``*.yaml`` under *dirname*, sorted by file."""
    if not os.path.isdir(dirname):
        raise DoctorError(f"checks directory {dirname!r} does not exist")
    checks: list[dict[str, Any]] = []
    names: set[str] = set()
    for entry in sorted(os.listdir(dirname)):
        if not entry.endswith((".yaml", ".yml")):
            continue
        path = os.path.join(dirname, entry)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            doc = yamlite.loads(text)
        except yamlite.YamliteError as exc:
            raise DoctorError(f"{entry}: {exc}") from None
        doc = lint_check(doc, where=entry)
        if doc["name"] in names:
            raise DoctorError(f"{entry}: duplicate check name "
                              f"{doc['name']!r}")
        names.add(doc["name"])
        checks.append(doc)
    return checks


class DeclarativeCheck(Analyzer):
    """One linted YAML rule, evaluated against an evidence bundle.

    Missing metrics read as ``0.0`` (a counter that never incremented
    was never observed misbehaving); ratio checks abstain below their
    ``min_denominator``; trend checks abstain without a before
    snapshot.  Abstaining is silence, not a finding.
    """

    def __init__(self, doc: dict[str, Any]) -> None:
        self.doc = doc
        self.name = doc["name"]
        self.subsystem = doc.get("subsystem", "general")
        self.severity = doc.get("severity", "warning")

    def _when_holds(self, flat: dict[str, float]) -> tuple[bool,
                                                           dict[str, float]]:
        when = self.doc.get("when")
        if when is None:
            return True, {}
        key, bound = _bound_of(when, _COMPARATORS, self.name)
        value = float(flat.get(when["metric"], 0.0))
        return (_COMPARATORS[key](value, bound),
                {when["metric"]: value})

    def _finding(self, evidence_keys: dict[str, float],
                 scope: str = "") -> Finding:
        return Finding(check=self.name, severity=self.severity,
                       subsystem=self.subsystem,
                       message=self.doc["message"],
                       action=self.doc.get("action", ""),
                       evidence=evidence_keys, scope=scope)

    def analyze(self, evidence: Evidence) -> list[Finding]:
        doc = self.doc
        kind = doc["type"]
        metric = doc["metric"]
        if kind == "trend":
            before = evidence.flat_before
            if before is None:
                return []
            key, bound = _bound_of(doc, _TREND_COMPARATORS, self.name)
            now = float(evidence.flat.get(metric, 0.0))
            delta = now - float(before.get(metric, 0.0))
            if _COMPARATORS[_TREND_COMPARATORS[key]](delta, bound):
                return [self._finding({metric: now,
                                       f"{metric}.delta": delta})]
            return []
        key, bound = _bound_of(doc, _COMPARATORS, self.name)
        predicate = _COMPARATORS[key]
        if kind == "ratio":
            flat = evidence.flat
            holds, gate = self._when_holds(flat)
            if not holds:
                return []
            num = float(flat.get(metric, 0.0))
            den = float(flat.get(doc["over"], 0.0))
            if den < float(doc.get("min_denominator", 1)):
                return []
            if predicate(num / den, bound):
                return [self._finding({metric: num, doc["over"]: den,
                                       "ratio": num / den, **gate})]
            return []
        # threshold
        if doc.get("scope", "global") == "container":
            findings = []
            for scope in sorted(evidence.scoped):
                flat = evidence.scoped[scope]
                holds, gate = self._when_holds(flat)
                value = float(flat.get(metric, 0.0))
                if holds and predicate(value, bound):
                    findings.append(self._finding({metric: value, **gate},
                                                  scope=scope))
            return findings
        flat = evidence.flat
        holds, gate = self._when_holds(flat)
        if not holds:
            return []
        value = float(flat.get(metric, 0.0))
        if predicate(value, bound):
            return [self._finding({metric: value, **gate})]
        return []
