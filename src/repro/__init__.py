"""Active Files — a reproduction of Dasgupta, Itzkovitz & Karamcheti,
"Active Files: A Mechanism for Integrating Legacy Applications into
Distributed Systems" (ICDCS 2000).

Quick start::

    from repro import create_active, open_active

    create_active("quotes.af",
                  "repro.sentinels.quotes:StockQuoteSentinel",
                  params={"address": "quotes.example:7"})
    with open_active("quotes.af", "rb", network=net) as stream:
        print(stream.read().decode())

Package map:

* :mod:`repro.core` — the active-files runtime (containers, sentinels,
  the four implementation strategies, interception, Win32-style API);
* :mod:`repro.sentinels` — ready-made sentinels for every Section 3 use;
* :mod:`repro.net` — the simulated network and remote services;
* :mod:`repro.ntos` — the virtual-time NT-like OS substrate;
* :mod:`repro.afsim` — active files on that substrate, reproducing the
  paper's Figure 6 performance study.
"""

from repro.core import (
    ACTIVE_SUFFIX,
    ActiveFile,
    Container,
    MediatingConnector,
    STRATEGIES,
    Sentinel,
    SentinelContext,
    SentinelSpec,
    StreamSentinel,
    Win32Api,
    create_active,
    is_active_path,
    open_active,
)
from repro.errors import ActiveFileError

__version__ = "1.0.0"

__all__ = [
    "ACTIVE_SUFFIX",
    "ActiveFile",
    "ActiveFileError",
    "Container",
    "MediatingConnector",
    "STRATEGIES",
    "Sentinel",
    "SentinelContext",
    "SentinelSpec",
    "StreamSentinel",
    "Win32Api",
    "__version__",
    "create_active",
    "is_active_path",
    "open_active",
]
