"""``afctl`` — command-line tooling for active files.

Subcommands::

    afctl create <path> <module:factory> [--param k=v ...] [--data FILE]
    afctl info <path>                 inspect a container
    afctl ls [<dir>]                  list active files in a directory
    afctl cat <path>                  read an active file to stdout
    afctl write <path>                write stdin into an active file
    afctl copy <src> <dst>            copy (both parts move together)
    afctl adapt <path>                stream sentinel -> random access (§5)
    afctl sandbox <path> [...]        wrap the sentinel in a policy (§2.3)
    afctl strategies                  list implementation strategies
    afctl figure6 [...]               run the Figure 6 harness
    afctl stats <path>                sample workload + telemetry snapshot
    afctl trace <path> -- <op> [...]  run one op traced; print its timeline
    afctl chaos run|dry-run|lint <scenario.yaml>   declarative chaos engine
    afctl doctor --bundle DIR|--live PATH          diagnose telemetry evidence

Network-backed sentinels need in-process services and are therefore
exercised from Python (see ``examples/``); the CLI covers local and
generated files.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import Container, create_active, open_active
from repro.core.strategies import STRATEGIES, resolve_strategy
from repro.errors import ActiveFileError

__all__ = ["main"]


def _parse_params(pairs: list[str]) -> dict:
    params: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"afctl: bad --param {pair!r} (expected k=v)")
        key, _, raw = pair.partition("=")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def cmd_create(args) -> int:
    data = b""
    if args.data:
        with open(args.data, "rb") as stream:
            data = stream.read()
    meta = {"data": "memory"} if args.ephemeral else None
    create_active(args.path, args.target, params=_parse_params(args.param),
                  data=data, meta=meta, exist_ok=args.force)
    print(f"created {args.path} ({args.target})")
    return 0


def cmd_info(args) -> int:
    container = Container.load(args.path)
    print(f"path:      {container.path}")
    print(f"sentinel:  {container.spec.target}")
    print(f"params:    {json.dumps(dict(container.spec.params), sort_keys=True)}")
    print(f"meta:      {json.dumps(container.meta, sort_keys=True)}")
    print(f"data part: {len(container.data)} bytes")
    return 0


def cmd_cat(args) -> int:
    with open_active(args.path, "rb", strategy=args.strategy) as stream:
        remaining = args.limit
        while True:
            chunk = stream.read(min(65536, remaining) if remaining else 65536)
            if not chunk:
                break
            sys.stdout.buffer.write(chunk)
            if remaining:
                remaining -= len(chunk)
                if remaining <= 0:
                    break
    sys.stdout.buffer.flush()
    return 0


def cmd_write(args) -> int:
    body = sys.stdin.buffer.read()
    mode = "ab" if args.append else "wb"
    with open_active(args.path, mode, strategy=args.strategy) as stream:
        stream.write(body)
    print(f"wrote {len(body)} bytes to {args.path}", file=sys.stderr)
    return 0


def cmd_copy(args) -> int:
    Container.load(args.source).copy_to(args.destination)
    print(f"copied {args.source} -> {args.destination} "
          "(active and data parts together)")
    return 0


def cmd_strategies(args) -> int:
    descriptions = {
        "process": "child process, two bare pipes (§4.1; sequential only)",
        "process-control": "child process + control channel (§4.2; full API)",
        "thread": "sentinel thread, shared memory + events (§4.3)",
        "inproc": "direct routing, DLL-only analogue (§4.4)",
    }
    for name in STRATEGIES:
        print(f"{name:>16}  {descriptions[name]}")
    return 0


def cmd_ls(args) -> int:
    """List active files in a directory with their sentinel types."""
    import os

    from repro.core.container import is_active_path, sniff

    rows = []
    for name in sorted(os.listdir(args.directory)):
        full = os.path.join(args.directory, name)
        if not os.path.isfile(full):
            continue
        if not (is_active_path(full) or (args.sniff and sniff(full))):
            continue
        try:
            container = Container.load(full)
        except ActiveFileError:
            rows.append((name, "<unreadable container>", "-"))
            continue
        rows.append((name, container.spec.target,
                     f"{len(container.data)}B"))
    if not rows:
        print("no active files found")
        return 0
    width = max(len(name) for name, _, _ in rows)
    for name, target, size in rows:
        print(f"{name:<{width}}  {size:>8}  {target}")
    return 0


def cmd_adapt(args) -> int:
    """Translate a stream-sentinel container for random-access strategies."""
    from repro.core.adapter import adapt_spec

    container = Container.load(args.path)
    container.spec = adapt_spec(container.spec)
    container.save()
    print(f"adapted {args.path}: now served through "
          f"{container.spec.target}")
    return 0


def cmd_sandbox(args) -> int:
    """Wrap a container's sentinel in a sandbox policy."""
    from repro.core.sandbox import SandboxPolicy, sandbox_spec

    policy = SandboxPolicy(
        max_op_bytes=args.max_op_bytes,
        max_total_bytes=args.max_total_bytes,
        max_operations=args.max_operations,
        allow_writes=not args.read_only,
        allow_truncate=not args.read_only,
        allowed_hosts=(tuple(args.allow_host)
                       if args.allow_host is not None else None),
    )
    container = Container.load(args.path)
    container.spec = sandbox_spec(container.spec, policy)
    container.save()
    print(f"sandboxed {args.path}: {policy}")
    return 0


def cmd_stats(args) -> int:
    """Run a small sample workload, then print the telemetry snapshot.

    ``--export DIR`` additionally writes a self-contained evidence
    bundle (before/after snapshots, sample-workload spans, the host's
    ping reply when one serves this path) for ``afctl doctor``.
    """
    from repro.core.telemetry import TELEMETRY, render_snapshot

    before = TELEMETRY.snapshot() if args.export else None
    was_tracing = TELEMETRY.tracing
    if args.export:
        # Trace the sample workload so the bundle carries a span tree
        # for the doctor's structural analyzers, not just counters.
        TELEMETRY.enable_tracing()
    ping = None
    try:
        with open_active(args.path, "rb", strategy=args.strategy) as stream:
            stream.read(args.bytes)
            file_view = stream.telemetry()
            host = getattr(getattr(stream, "session", None), "host", None)
            if host is not None and getattr(host, "alive", False):
                try:
                    ping = host.ping()
                except ActiveFileError:
                    ping = None
    finally:
        TELEMETRY.tracing = was_tracing
    snap = TELEMETRY.snapshot()
    if args.export:
        written = TELEMETRY.export_bundle(args.export, before=before,
                                          ping=ping,
                                          meta={"container": args.path})
        print(f"exported evidence bundle ({len(written)} files) "
              f"to {args.export}", file=sys.stderr)
    if args.json:
        print(json.dumps({"file": file_view, "snapshot": snap},
                         sort_keys=True, default=str))
        return 0
    print(render_snapshot(snap))
    lat = (ping or {}).get("lat") or {}
    if lat.get("queue_wait_ops") or lat.get("service_ops"):
        # Where did this path's time go: waiting in the host's queue,
        # or actually executing?  (Only pooled hosts can answer.)
        print("latency split (host):")
        for side, label in (("queue_wait", "queue-wait"),
                            ("service", "service")):
            print(f"  {label:<10} ops={lat.get(f'{side}_ops', 0):<6} "
                  f"mean={lat.get(f'{side}_mean_us', 0):.0f}us "
                  f"p50={lat.get(f'{side}_p50_us', 0):.0f}us "
                  f"p95={lat.get(f'{side}_p95_us', 0):.0f}us")
    else:
        print("latency split: unavailable (no pooled host on this path)")
    return 0


def cmd_trace(args) -> int:
    """Run one operation under tracing and print the span timeline.

    The op spec follows ``--``: ``cat [limit]``, ``read [offset size]``,
    ``write [text...]``, or ``size``.
    """
    from repro.core.telemetry import TELEMETRY, render_timeline

    op = list(args.op)
    if op and op[0] == "--":
        op = op[1:]
    verb, rest = (op[0], op[1:]) if op else ("cat", [])
    if verb not in ("cat", "read", "write", "size"):
        print(f"afctl trace: unknown op {verb!r} "
              "(use cat|read|write|size)", file=sys.stderr)
        return 1
    was_tracing = TELEMETRY.tracing
    TELEMETRY.enable_tracing()
    trace_id = None
    try:
        mode = "r+b" if verb == "write" else "rb"
        with open_active(args.path, mode, strategy=args.strategy) as stream:
            trace_id = stream._trace.id if stream._trace else None
            if verb == "cat":
                stream.read(int(rest[0]) if rest else 1 << 20)
            elif verb == "read":
                stream.seek(int(rest[0]) if rest else 0)
                stream.read(int(rest[1]) if len(rest) > 1 else 65536)
            elif verb == "write":
                stream.write(" ".join(rest).encode() or b"traced write")
            else:  # size
                print(f"size: {stream.seek(0, 2)}", file=sys.stderr)
    finally:
        TELEMETRY.tracing = was_tracing
    spans = TELEMETRY.spans(trace=trace_id)
    if args.export:
        count = TELEMETRY.export_jsonl(args.export, trace=trace_id)
        print(f"exported {count} spans to {args.export}", file=sys.stderr)
    if args.json:
        print(json.dumps([span.to_dict() for span in spans],
                         sort_keys=True, default=str))
    else:
        print(render_timeline(spans))
    return 0


def cmd_chaos(args) -> int:
    """Run, dry-run, or lint a declarative chaos scenario file.

    ``run`` executes the scenario (workload + seeded injections) and
    exits 0/1 on pass/fail; ``dry-run`` lints and prints the resolved
    timeline without building a workload or performing any injection;
    ``lint`` just validates.  The CLI never relaxes the safety rails:
    unbounded destructive rules are a lint failure here, always.
    """
    from repro.core.scenario import (
        ScenarioRunner,
        lint_scenario,
        load_scenario_file,
        render_report,
    )

    scenario = load_scenario_file(args.scenario)
    if args.verb == "lint":
        problems = lint_scenario(scenario)
        if args.json:
            print(json.dumps({"scenario": scenario.name,
                              "problems": problems,
                              "ok": not problems}, sort_keys=True))
        elif problems:
            for problem in problems:
                print(f"afctl chaos lint: {problem}", file=sys.stderr)
        else:
            print(f"scenario {scenario.name}: ok "
                  f"({len(scenario.timeline)} injections, "
                  f"{len(scenario.invariants)} invariants)")
        return 1 if problems else 0

    runner = ScenarioRunner(scenario, seed=args.seed,
                            dry_run=args.verb == "dry-run")
    report = runner.run()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, default=str)
            handle.write("\n")
    if args.json:
        print(json.dumps(report, sort_keys=True, default=str))
    else:
        print(render_report(report))
    return 0 if report["passed"] else 1


def cmd_doctor(args) -> int:
    """Diagnose a telemetry evidence bundle (or a live open).

    Exit-code contract: ``0`` clean, ``1`` findings, ``2`` the doctor
    itself could not run (missing/malformed bundle, checks that fail
    lint, bad usage).  Scripts can therefore gate on "no findings"
    without parsing anything.
    """
    from repro.doctor import Evidence, render_report, run_doctor
    from repro.errors import DoctorError

    try:
        if args.bundle:
            evidence = Evidence.from_bundle(args.bundle)
        else:
            evidence = Evidence.capture_live(args.live,
                                             strategy=args.strategy)
        report = run_doctor(evidence, checks_dir=args.checks)
    except DoctorError as exc:
        print(f"afctl doctor: {exc}", file=sys.stderr)
        return 2
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, default=str)
            handle.write("\n")
    if args.json:
        print(json.dumps(report, sort_keys=True, default=str))
    else:
        print(render_report(report))
    return 0 if report["clean"] else 1


def cmd_figure6(args) -> int:
    from repro.afsim.figure6 import main as figure6_main

    forwarded = ["--panel", args.panel, "--op", args.op,
                 "--calls", str(args.calls)]
    if args.check:
        forwarded.append("--check")
    if args.plot:
        forwarded.append("--plot")
    return figure6_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="afctl",
                                     description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_create = sub.add_parser("create", help="create an active file")
    p_create.add_argument("path")
    p_create.add_argument("target", help="sentinel spec, module:factory")
    p_create.add_argument("--param", action="append", default=[],
                          help="sentinel parameter k=v (JSON values ok)")
    p_create.add_argument("--data", help="file providing the initial data part")
    p_create.add_argument("--ephemeral", action="store_true",
                          help="in-memory data part (generators)")
    p_create.add_argument("--force", action="store_true",
                          help="overwrite an existing container")
    p_create.set_defaults(fn=cmd_create)

    p_info = sub.add_parser("info", help="inspect a container")
    p_info.add_argument("path")
    p_info.set_defaults(fn=cmd_info)

    p_cat = sub.add_parser("cat", help="read an active file to stdout")
    p_cat.add_argument("path")
    p_cat.add_argument("--strategy", default="thread",
                       type=lambda s: resolve_strategy(s)[0])
    p_cat.add_argument("--limit", type=int, default=0,
                       help="stop after N bytes (endless generators)")
    p_cat.set_defaults(fn=cmd_cat)

    p_write = sub.add_parser("write", help="write stdin into an active file")
    p_write.add_argument("path")
    p_write.add_argument("--strategy", default="thread",
                         type=lambda s: resolve_strategy(s)[0])
    p_write.add_argument("--append", action="store_true")
    p_write.set_defaults(fn=cmd_write)

    p_copy = sub.add_parser("copy", help="copy an active file")
    p_copy.add_argument("source")
    p_copy.add_argument("destination")
    p_copy.set_defaults(fn=cmd_copy)

    p_strategies = sub.add_parser("strategies",
                                  help="list implementation strategies")
    p_strategies.set_defaults(fn=cmd_strategies)

    p_ls = sub.add_parser("ls", help="list active files in a directory")
    p_ls.add_argument("directory", nargs="?", default=".")
    p_ls.add_argument("--sniff", action="store_true",
                      help="also detect containers without the .af suffix")
    p_ls.set_defaults(fn=cmd_ls)

    p_adapt = sub.add_parser(
        "adapt", help="translate a stream sentinel for random access (§5)")
    p_adapt.add_argument("path")
    p_adapt.set_defaults(fn=cmd_adapt)

    p_sandbox = sub.add_parser(
        "sandbox", help="wrap a container's sentinel in a sandbox (§2.3)")
    p_sandbox.add_argument("path")
    p_sandbox.add_argument("--max-op-bytes", type=int, default=1 << 20)
    p_sandbox.add_argument("--max-total-bytes", type=int, default=None)
    p_sandbox.add_argument("--max-operations", type=int, default=None)
    p_sandbox.add_argument("--read-only", action="store_true")
    p_sandbox.add_argument("--allow-host", action="append", default=None,
                           help="allowlist a network host (repeatable; "
                                "omit for unrestricted)")
    p_sandbox.set_defaults(fn=cmd_sandbox)

    p_stats = sub.add_parser(
        "stats", help="run a sample read and print the telemetry snapshot")
    p_stats.add_argument("path")
    p_stats.add_argument("--strategy", default="thread",
                         type=lambda s: resolve_strategy(s)[0])
    p_stats.add_argument("--bytes", type=int, default=65536,
                         help="how much to read for the sample workload")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the raw snapshot as JSON")
    p_stats.add_argument("--export", metavar="DIR",
                         help="also write a self-contained evidence "
                              "bundle for afctl doctor")
    p_stats.set_defaults(fn=cmd_stats)

    p_trace = sub.add_parser(
        "trace", help="run one op under tracing and print its span timeline")
    p_trace.add_argument("path")
    p_trace.add_argument("--strategy", default="thread",
                         type=lambda s: resolve_strategy(s)[0])
    p_trace.add_argument("--export", metavar="FILE",
                         help="also write the spans as JSONL to FILE")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the spans as JSON instead of a timeline")
    p_trace.add_argument("op", nargs=argparse.REMAINDER,
                         help="after --: cat [limit] | read [offset size] | "
                              "write [text...] | size")
    p_trace.set_defaults(fn=cmd_trace)

    p_chaos = sub.add_parser(
        "chaos", help="run declarative chaos scenarios with safety rails")
    chaos_sub = p_chaos.add_subparsers(dest="verb", required=True)
    for verb, blurb in (("run", "execute the scenario; exit 0/1 on "
                                "pass/fail"),
                        ("dry-run", "resolve and print the timeline "
                                    "without injecting anything"),
                        ("lint", "validate the scenario file")):
        p_verb = chaos_sub.add_parser(verb, help=blurb)
        p_verb.add_argument("scenario", help="scenario file (.yaml or .json)")
        p_verb.add_argument("--json", action="store_true",
                            help="emit the structured report as JSON")
        if verb != "lint":
            p_verb.add_argument("--seed", type=int, default=None,
                                help="override the scenario's seed")
            p_verb.add_argument("--report", metavar="FILE",
                                help="also write the JSON report to FILE")
        p_verb.set_defaults(fn=cmd_chaos, verb=verb)

    p_doctor = sub.add_parser(
        "doctor", help="diagnose telemetry evidence "
                       "(exit 0 clean / 1 findings / 2 error)")
    source = p_doctor.add_mutually_exclusive_group(required=True)
    source.add_argument("--bundle", metavar="DIR",
                        help="evidence bundle from afctl stats --export")
    source.add_argument("--live", metavar="PATH",
                        help="capture evidence live from this active file")
    p_doctor.add_argument("--strategy", default="process-control",
                          type=lambda s: resolve_strategy(s)[0],
                          help="strategy for --live capture")
    p_doctor.add_argument("--checks", metavar="DIR",
                          help="replace the shipped checks directory")
    p_doctor.add_argument("--json", action="store_true",
                          help="emit the structured report as JSON")
    p_doctor.add_argument("--report", metavar="FILE",
                          help="also write the JSON report to FILE")
    p_doctor.set_defaults(fn=cmd_doctor)

    p_fig = sub.add_parser("figure6", help="run the Figure 6 harness")
    p_fig.add_argument("--panel", choices=("a", "b", "c", "all"),
                       default="all")
    p_fig.add_argument("--op", choices=("read", "write", "both"),
                       default="both")
    p_fig.add_argument("--calls", type=int, default=1000)
    p_fig.add_argument("--check", action="store_true")
    p_fig.add_argument("--plot", action="store_true")
    p_fig.set_defaults(fn=cmd_figure6)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ActiveFileError as exc:
        print(f"afctl: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
