"""The sentinel library — every use from the paper's Section 3.

Each module provides one or more sentinel classes usable as container
spec targets, e.g. ``"repro.sentinels.null:NullFilterSentinel"``.
"""

from repro.sentinels.null import NullFilterSentinel
from repro.sentinels.generate import (
    CounterSentinel,
    RandomBytesSentinel,
    SequenceSentinel,
)
from repro.sentinels.compress import CompressionSentinel
from repro.sentinels.cipher import XorCipherSentinel
from repro.sentinels.logfile import ConcurrentLogSentinel
from repro.sentinels.audit import AuditSentinel
from repro.sentinels.registryfs import RegistryFileSentinel
from repro.sentinels.remotefile import RemoteFileSentinel
from repro.sentinels.aggregate import AggregateSentinel
from repro.sentinels.quotes import StockQuoteSentinel
from repro.sentinels.mailbox import InboxSentinel, OutboxSentinel
from repro.sentinels.distribute import DistributionSentinel
from repro.sentinels.script import ScriptSentinel, script_spec
from repro.sentinels.compose import PipelineSentinel, pipeline_spec
from repro.sentinels.versioned import VersioningSentinel

__all__ = [
    "PipelineSentinel",
    "pipeline_spec",
    "VersioningSentinel",
    "ScriptSentinel",
    "script_spec",
    "NullFilterSentinel",
    "CounterSentinel",
    "RandomBytesSentinel",
    "SequenceSentinel",
    "CompressionSentinel",
    "XorCipherSentinel",
    "ConcurrentLogSentinel",
    "AuditSentinel",
    "RegistryFileSentinel",
    "RemoteFileSentinel",
    "AggregateSentinel",
    "StockQuoteSentinel",
    "InboxSentinel",
    "OutboxSentinel",
    "DistributionSentinel",
]
