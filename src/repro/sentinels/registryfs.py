r"""File interface to the Windows-style registry (paper §3).

"Filtering can also be used to provide a file-based interface to the
Windows system registry, considerably simplifying system configuration.
The sentinel checks the registry, providing a simplified version (e.g.,
a plain text file) to the client application.  Any modifications by the
client application can in turn be parsed by the sentinel process and
translated into appropriate registry modifications."

Rendered format (ini-flavoured, one section per key)::

    [Software\App]
    Port = REG_DWORD:8080
    Version = REG_SZ:1.2

Edits are applied on flush/close by diffing the parsed text against the
snapshot taken at open: changed and added values become ``set`` calls,
removed values become ``delete_value`` calls.
"""

from __future__ import annotations

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["RegistryFileSentinel", "render_registry", "parse_registry"]


def render_registry(tree: dict, prefix: str = "") -> str:
    """Render a registry dump (see ``RegistryServer.dump_subtree``) as text."""
    lines: list[str] = []

    def walk(node: dict, path: str) -> None:
        if node["values"]:
            lines.append(f"[{path}]" if path else "[.]")
            for name, value in sorted(node["values"].items()):
                lines.append(f"{name} = {value['type']}:{value['data']}")
            lines.append("")
        for name, child in sorted(node["subkeys"].items()):
            walk(child, f"{path}\\{name}" if path else name)

    walk(tree, prefix)
    return "\n".join(lines) + ("\n" if lines and lines[-1] else "")


def parse_registry(text: str) -> dict[tuple[str, str], tuple[str, str]]:
    """Parse rendered text into ``{(key_path, name): (type, data)}``."""
    values: dict[tuple[str, str], tuple[str, str]] = {}
    section = None
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith((";", "#")):
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1]
            if section == ".":
                section = ""
            continue
        if "=" not in line:
            raise SentinelError(f"registry text line {lineno}: no '=' in {line!r}")
        if section is None:
            raise SentinelError(f"registry text line {lineno}: value before any [key]")
        name, _, typed = (part.strip() for part in line.partition("="))
        value_type, sep, data = typed.partition(":")
        if not sep:
            value_type, data = "REG_SZ", typed
        values[(section, name)] = (value_type.strip(), data)
    return values


class RegistryFileSentinel(Sentinel):
    """Plain-text file view of a registry subtree.

    Params: ``registry`` (address string of a
    :class:`~repro.net.RegistryServer`), ``key`` (subtree to expose,
    e.g. ``"HKLM\\Software\\App"``), ``read_only`` (bool, default
    False).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        if "registry" not in self.params:
            raise SentinelError("registry sentinel requires a 'registry' address param")
        self.key = str(self.params.get("key", ""))
        self.read_only = bool(self.params.get("read_only", False))
        self._view = ByteBuffer()
        self._baseline: dict[tuple[str, str], tuple[str, str]] = {}
        self._dirty = False

    def _connection(self, ctx: SentinelContext):
        return ctx.connect(str(self.params["registry"]))

    # -- sentinel interface ---------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        response = self._connection(ctx).expect("dump", key=self.key)
        text = render_registry(response.fields["tree"])
        self._view.setvalue(text.encode("utf-8"))
        self._baseline = parse_registry(text)
        self._dirty = False

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        return self._view.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        if self.read_only:
            from repro.errors import UnsupportedOperationError

            raise UnsupportedOperationError("registry view is read-only")
        self._dirty = True
        return self._view.write_at(offset, data)

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        self._dirty = True
        self._view.truncate(size)

    def on_size(self, ctx: SentinelContext) -> int:
        return self._view.size

    def on_flush(self, ctx: SentinelContext) -> None:
        self._apply(ctx)

    def on_close(self, ctx: SentinelContext) -> None:
        self._apply(ctx)

    def _apply(self, ctx: SentinelContext) -> None:
        """Diff the edited text against the open-time snapshot and push."""
        if not self._dirty:
            return
        text = self._view.getvalue().decode("utf-8")
        edited = parse_registry(text)
        connection = self._connection(ctx)
        for (key_path, name), (value_type, data) in sorted(edited.items()):
            if self._baseline.get((key_path, name)) != (value_type, data):
                full_key = f"{self.key}\\{key_path}" if key_path else self.key
                connection.expect("set", key=full_key, name=name,
                                  type=value_type, data=data)
        for (key_path, name) in sorted(set(self._baseline) - set(edited)):
            full_key = f"{self.key}\\{key_path}" if key_path else self.key
            connection.expect("delete_value", key=full_key, name=name)
        self._baseline = edited
        self._dirty = False
