"""Access-auditing sentinel (paper §3).

"The owner/creator of a file may wish to control and log its accesses
... A file containing sensitive data would like to log every access
from users, even if these users are trusted users."  This sentinel is a
pass-through filter whose side effect is an append-only audit trail of
every operation, written as JSON lines to a separate real file so the
trail survives the sentinel and is visible to external monitors.

It also demonstrates access control ("the file itself can specify the
kind of access control policies"): ``deny_writes`` / ``deny_reads``
params reject the corresponding operations while still logging the
attempt — resource-centric control, per the paper's contrast with
Janus/Ufo's process-centric control.
"""

from __future__ import annotations

import json
import os

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError, UnsupportedOperationError

__all__ = ["AuditSentinel"]


class AuditSentinel(Sentinel):
    """Pass-through filter with an append-only JSON-lines audit trail.

    Params: ``audit_path`` (required; real filesystem path),
    ``deny_reads`` / ``deny_writes`` (bools, default False),
    ``identity`` (string recorded with each entry, default "anonymous").
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.audit_path = self.params.get("audit_path")
        if not self.audit_path:
            raise SentinelError("audit sentinel requires an 'audit_path' param")
        self.deny_reads = bool(self.params.get("deny_reads", False))
        self.deny_writes = bool(self.params.get("deny_writes", False))
        self.identity = str(self.params.get("identity", "anonymous"))
        self._seq = 0

    def _record(self, event: str, **detail) -> None:
        entry = {"seq": self._seq, "who": self.identity, "event": event,
                 **detail}
        self._seq += 1
        line = (json.dumps(entry, separators=(",", ":"), sort_keys=True)
                + "\n").encode("utf-8")
        # O_APPEND keeps concurrent sentinel processes from interleaving
        # partial lines.
        fd = os.open(self.audit_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    # -- sentinel interface ---------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._record("open", path=ctx.path, strategy=ctx.strategy)

    def on_close(self, ctx: SentinelContext) -> None:
        self._record("close", path=ctx.path)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        if self.deny_reads:
            self._record("read-denied", offset=offset, size=size)
            raise UnsupportedOperationError("reads denied by file policy")
        data = ctx.data.read_at(offset, size)
        self._record("read", offset=offset, size=size, returned=len(data))
        return data

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        if self.deny_writes:
            self._record("write-denied", offset=offset, size=len(data))
            raise UnsupportedOperationError("writes denied by file policy")
        written = ctx.data.write_at(offset, data)
        self._record("write", offset=offset, size=written)
        return written

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        if self.deny_writes:
            self._record("truncate-denied", size=size)
            raise UnsupportedOperationError("writes denied by file policy")
        ctx.data.truncate(size)
        self._record("truncate", size=size)

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "trail":
            try:
                with open(self.audit_path, "rb") as stream:
                    return {}, stream.read()
            except FileNotFoundError:
                return {}, b""
        return super().on_control(ctx, op, args, payload)
