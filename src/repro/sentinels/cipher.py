"""Encryption filter sentinel (a §3 filtering variant).

The data part holds ciphertext; the application reads and writes
plaintext.  The cipher is a position-keyed XOR keystream — *not*
cryptographically strong, and documented as such; the point being
demonstrated is the filtering mechanism ("the client application is
completely unaware"), not cryptography.  Because XOR with a
position-derived keystream is offset-local, random access needs no
block alignment at all.
"""

from __future__ import annotations

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError
from repro.sentinels.generate import _splitmix64

__all__ = ["XorCipherSentinel"]


class XorCipherSentinel(Sentinel):
    """Transparent XOR-keystream cipher filter.

    Params: ``key`` (string, required).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        key = self.params.get("key")
        if not key:
            raise SentinelError("cipher sentinel requires a non-empty 'key' param")
        key_bytes = str(key).encode("utf-8")
        self._key_seed = int.from_bytes(key_bytes[:8].ljust(8, b"\x55"), "little")
        self._key_seed ^= len(key_bytes) * 0x9E3779B9

    def _keystream(self, offset: int, size: int) -> bytes:
        first_word = offset // 8
        last_word = (offset + size - 1) // 8 if size else first_word
        blob = b"".join(
            _splitmix64(self._key_seed ^ index).to_bytes(8, "little")
            for index in range(first_word, last_word + 1)
        )
        start = offset - first_word * 8
        return blob[start:start + size]

    def _apply(self, offset: int, data: bytes) -> bytes:
        stream = self._keystream(offset, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        ciphertext = ctx.data.read_at(offset, size)
        return self._apply(offset, ciphertext)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        return ctx.data.write_at(offset, self._apply(offset, data))
