"""Seamless remote-file proxy sentinel (paper §3, "Aggregation").

"An example of active-file based aggregation is seamless access to
remote files that are not accessible via network-mapped shares.  The
sentinel accesses the remote file using a standard protocol (e.g., FTP
or HTTP), creates a local copy, and makes the copy available to the
client application ... Similar transparent access to remote files can
also be provided without ever making a local copy.  The sentinel
directly reads data from and writes data to a network connection."

The three cache configurations are the critical paths of Figure 5:

* ``cache="none"``  — every operation is a remote exchange (path 1);
* ``cache="disk"``  — the data part holds the cached blocks (path 2);
* ``cache="memory"`` — a private in-memory block store (path 3).

Consistency: with ``validate=True`` the sentinel stats the origin
before each read and drops the cache when the remote version moved —
"the cache can be kept consistent with any updates performed to its
contents at any of the remote sources."
"""

from __future__ import annotations

import time
from typing import Any

from repro.core import policy
from repro.core.cache import CACHE_PATHS, BlockCache
from repro.core.datapart import MemoryDataPart
from repro.core.policy import Deadline, RetryPolicy
from repro.core.sentinel import Sentinel, SentinelContext
from repro.core.telemetry import TELEMETRY
from repro.errors import (
    AddressError,
    FlushError,
    NetworkError,
    RemoteFileNotFound,
    SentinelError,
    ServiceError,
)

__all__ = ["RemoteFileSentinel", "FileServerOrigin", "HttpOrigin", "FtpOrigin"]


class FileServerOrigin:
    """Adapter for :class:`repro.net.FileServer` (ranged native protocol)."""

    def __init__(self, ctx: SentinelContext, params: dict[str, Any]) -> None:
        self._connection = ctx.connect(str(params["address"]))
        self.path = str(params["path"])

    def read(self, offset: int, size: int) -> bytes:
        response = self._connection.expect("read", path=self.path,
                                           offset=offset, size=size)
        return response.payload

    def read_window(self, offset: int, size: int):
        """Start one ranged read; returns a resolver for its bytes.

        On the bridge (sentinel child) the request is genuinely in
        flight when this returns — the cache's prefetch windows overlap
        with whatever the application does next.
        """
        resolve = self._connection.call_async("read", path=self.path,
                                              offset=offset, size=size)

        def result() -> bytes:
            response = resolve()
            if not response.ok:
                raise RemoteFileNotFound(response.error)
            return response.payload
        return result

    def write(self, offset: int, data: bytes) -> int:
        response = self._connection.expect("write", data, path=self.path,
                                           offset=offset)
        return int(response.fields["written"])

    def write_extents(self, extents: list[tuple[int, bytes]]) -> list[int]:
        """Vectored push: one ``writev`` exchange for the whole batch."""
        response = self._connection.expect(
            "writev", b"".join(bytes(data) for _, data in extents),
            path=self.path,
            extents=[[int(offset), len(data)] for offset, data in extents])
        return [int(n) for n in response.fields["written"]]

    def stat(self) -> tuple[int, Any]:
        response = self._connection.call("stat", path=self.path)
        if not response.ok:
            raise RemoteFileNotFound(response.error)
        return int(response.fields["size"]), response.fields["version"]

    def truncate(self, size: int) -> None:
        self._connection.expect("truncate", path=self.path, size=size)


class HttpOrigin:
    """Adapter for :class:`repro.net.HttpServer` (range GET, whole PUT)."""

    def __init__(self, ctx: SentinelContext, params: dict[str, Any]) -> None:
        self._connection = ctx.connect(str(params["address"]))
        self.path = str(params["path"])

    def read(self, offset: int, size: int) -> bytes:
        response = self._connection.call("GET", path=self.path,
                                         range_start=offset,
                                         range_end=offset + size)
        if not response.ok:
            raise RemoteFileNotFound(response.error)
        return response.payload

    def write(self, offset: int, data: bytes) -> int:
        # HTTP has no ranged PUT: read-modify-write the entity.
        current = b""
        response = self._connection.call("GET", path=self.path)
        if response.ok:
            current = response.payload
        body = bytearray(current)
        if offset > len(body):
            body.extend(b"\x00" * (offset - len(body)))
        body[offset:offset + len(data)] = data
        self._connection.expect("PUT", bytes(body), path=self.path)
        return len(data)

    def stat(self) -> tuple[int, Any]:
        response = self._connection.call("HEAD", path=self.path)
        if not response.ok:
            raise RemoteFileNotFound(response.error)
        return int(response.fields["length"]), response.fields["etag"]

    def truncate(self, size: int) -> None:
        response = self._connection.call("GET", path=self.path)
        body = response.payload if response.ok else b""
        body = body[:size].ljust(size, b"\x00")
        self._connection.expect("PUT", body, path=self.path)


class FtpOrigin:
    """Adapter for :class:`repro.net.FtpServer` (authenticated sessions)."""

    def __init__(self, ctx: SentinelContext, params: dict[str, Any]) -> None:
        self._connection = ctx.connect(str(params["address"]))
        self.path = str(params["path"])
        response = self._connection.expect(
            "LOGIN",
            user=str(params.get("user", "anonymous")),
            password=str(params.get("password", "")),
        )
        self._session = response.fields["session"]

    def read(self, offset: int, size: int) -> bytes:
        response = self._connection.call("RETR", session=self._session,
                                         path=self.path, offset=offset,
                                         size=size)
        if not response.ok:
            raise RemoteFileNotFound(response.error)
        return response.payload

    def write(self, offset: int, data: bytes) -> int:
        current = b""
        response = self._connection.call("RETR", session=self._session,
                                         path=self.path)
        if response.ok:
            current = response.payload
        body = bytearray(current)
        if offset > len(body):
            body.extend(b"\x00" * (offset - len(body)))
        body[offset:offset + len(data)] = data
        self._connection.expect("STOR", bytes(body), session=self._session,
                                path=self.path)
        return len(data)

    def stat(self) -> tuple[int, Any]:
        response = self._connection.call("SIZE", session=self._session,
                                         path=self.path)
        if not response.ok:
            raise RemoteFileNotFound(response.error)
        # FTP has no cheap version token; use the size as a weak one.
        return int(response.fields["size"]), response.fields["size"]

    def truncate(self, size: int) -> None:
        body = self.read(0, size).ljust(size, b"\x00")
        self._connection.expect("STOR", body, session=self._session,
                                path=self.path)


_ORIGINS = {
    "fileserver": FileServerOrigin,
    "http": HttpOrigin,
    "ftp": FtpOrigin,
}


def _transient(exc: BaseException) -> bool:
    """Is *exc* a failure that retrying (or waiting out) may fix?

    Transport-level network failures — partitions, injected faults,
    bridge loss — are transient; a service that *answered* with an error
    (:class:`ServiceError` and friends) or an unbound address is not.
    """
    return isinstance(exc, NetworkError) \
        and not isinstance(exc, (ServiceError, AddressError))


class RemoteFileSentinel(Sentinel):
    """A local file that is a logical proxy for one remote file.

    Params: ``address`` (service address string), ``path`` (remote
    path), ``protocol`` ("fileserver" | "http" | "ftp", default
    "fileserver"), ``cache`` ("none" | "disk" | "memory", default
    "none"), ``block_size`` (default 4096), ``max_blocks`` (optional
    LRU bound), ``readahead`` (max prefetch window in blocks, 0 = off),
    ``writeback`` (buffer writes and push coalesced extents; default
    False, i.e. paper-faithful write-through), ``writeback_bytes``
    (dirty-byte auto-flush threshold), ``validate`` (bool: revalidate
    version before reads), ``user``/``password`` (ftp).

    Fault-tolerance params: ``op_timeout`` (seconds of deadline budget
    per origin operation), ``retries`` (attempts per origin exchange for
    transient network failures), ``retry_seed`` (seeds the backoff
    jitter — deterministic schedules for tests), ``stale_reads`` (serve
    already-cached bytes during a partition instead of failing
    revalidation), ``queue_writes`` (implies ``writeback``; transient
    flush failures keep the bytes buffered and re-flush with backoff
    once the origin heals — close still surfaces a typed
    :class:`FlushError` if they never made it).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        for required in ("address", "path"):
            if required not in self.params:
                raise SentinelError(f"remote-file sentinel requires {required!r}")
        protocol = str(self.params.get("protocol", "fileserver"))
        if protocol not in _ORIGINS:
            raise SentinelError(f"unknown protocol {protocol!r}; "
                                f"known: {sorted(_ORIGINS)}")
        self.protocol = protocol
        cache = str(self.params.get("cache", "none"))
        if cache not in CACHE_PATHS:
            raise SentinelError(f"unknown cache path {cache!r}; "
                                f"known: {CACHE_PATHS}")
        self.cache_path = cache
        self.block_size = int(self.params.get("block_size", 4096))
        max_blocks = self.params.get("max_blocks")
        self.max_blocks = None if max_blocks is None else int(max_blocks)
        self.readahead = int(self.params.get("readahead", 0))
        self.queue_writes = bool(self.params.get("queue_writes", False))
        self.writeback = bool(self.params.get("writeback", False)) \
            or self.queue_writes
        self.writeback_bytes = int(self.params.get("writeback_bytes",
                                                   256 * 1024))
        if cache == "none" and (self.readahead or self.writeback):
            raise SentinelError(
                "readahead/writeback require a cache path "
                "(cache='disk' or cache='memory', not 'none')")
        self.validate = bool(self.params.get("validate", False))
        self.coherent = bool(self.params.get("coherent", False))
        if self.coherent and cache == "none":
            raise SentinelError(
                "coherent mode needs a cache to keep leased bytes in "
                "(cache='disk' or cache='memory', not 'none')")
        self.op_timeout = float(self.params.get("op_timeout",
                                                policy.REMOTE_OP_TIMEOUT))
        self.stale_reads = bool(self.params.get("stale_reads", False))
        retry_seed = self.params.get("retry_seed")
        self.retry = RetryPolicy(
            attempts=int(self.params.get("retries", 3)),
            seed=None if retry_seed is None else int(retry_seed))
        self._origin = None
        self._cache: BlockCache | None = None
        self._last_version: Any = None
        self._last_size: int | None = None
        #: Coherence-domain wiring (``coherent=True`` on a domain-backed
        #: strategy): the domain and this open's member id.
        self._domain = None
        self._member: int | None = None
        self._op_deadline: Deadline | None = None
        #: Next opportunistic re-flush time for queued writes (monotonic).
        self._queue_retry_at = 0.0
        self._queue_backoff = self.retry.base_delay

    # -- wiring ---------------------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._origin = _ORIGINS[self.protocol](ctx, self.params)
        if self.cache_path == "none":
            return
        if self.coherent:
            # Join the container's consistency domain.  Degrades
            # gracefully: a strategy without a domain (the simple
            # process strategy) serves this open like validate=True.
            self._domain = ctx.coherence
        store = ctx.data if self.cache_path == "disk" else MemoryDataPart()
        self._cache = BlockCache(
            fetch=self._fetch, push=self._push,
            store=store, block_size=self.block_size,
            max_blocks=self.max_blocks,
            readahead=self.readahead, writeback=self.writeback,
            writeback_bytes=self.writeback_bytes,
            fetch_window=self._fetch_window
            if getattr(self._origin, "read_window", None) is not None
            else None,
            push_extents=self._push_extents,
            coherence=self._domain,
        )
        if self._domain is not None:
            self._member = self._domain.register(
                invalidate=self._peer_invalidated,
                install=self._install_published)
            # The base dispatcher releases this membership at close.
            self._fanout_member_id = self._member
        self._refresh_version()
        if self._member is not None and self._last_version is not None:
            # The opening stat doubles as the first revalidation: reads
            # are origin-free until a peer write revokes the lease.
            self._domain.grant(self._member)

    # -- coherence-domain callbacks (run on the publisher's thread) -------------------

    def _install_published(self, offset: int, data: bytes,
                           total: "int | None", version: Any) -> None:
        """A peer published bytes: land them in this open's cache so the
        read lease survives the remote write."""
        if self._cache is not None:
            self._cache.install_published(offset, data, total_size=total)
        if version is not None:
            self._last_version = version
        if total is not None:
            self._last_size = int(total)

    def _peer_invalidated(self, offset: "int | None",
                          size: "int | None") -> None:
        """A peer invalidated without shipping bytes (e.g. truncate)."""
        if self._cache is not None:
            if offset is None:
                self._cache.invalidate()
            else:
                self._cache.invalidate(offset, size)

    # -- retried origin exchanges -----------------------------------------------------

    def _remote(self, fn):
        """Run one origin exchange under the retry policy and deadline.

        Transient network failures (partitions, dropped bridges) retry
        with seeded backoff inside the serving command's remaining
        deadline budget; service-level rejections surface immediately.
        """
        deadline = Deadline.coerce(self._op_deadline, self.op_timeout)
        return self.retry.run(fn, retryable=_transient, deadline=deadline,
                              on_retry=self._note_retry)

    @staticmethod
    def _note_retry(exc: BaseException, delay: float) -> None:
        """Stamp a traced command's span tree with each origin retry."""
        if TELEMETRY.tracing and TELEMETRY.current() is not None:
            TELEMETRY.event("origin.retry", attrs={
                "cause": "transient", "error": type(exc).__name__,
                "backoff_s": round(delay, 4)})

    def _fetch(self, offset: int, size: int) -> bytes:
        """Cache miss path: a retried ranged origin read."""
        return self._remote(lambda: self._origin.read(offset, size))

    def _fetch_window(self, offset: int, size: int):
        """Prefetch path: async origin read, degrading to a retried
        synchronous one if the in-flight exchange fails transiently."""
        resolve = self._origin.read_window(offset, size)

        def result() -> bytes:
            try:
                return resolve()
            except NetworkError as exc:
                if not _transient(exc):
                    raise
                return self._fetch(offset, size)
        return result

    def _refresh_version(self) -> None:
        try:
            size, self._last_version = self._remote(self._origin.stat)
            self._last_size = size
        except RemoteFileNotFound:
            self._last_version = None
        except NetworkError as exc:
            # A push succeeded but the follow-up stat could not reach the
            # origin: keep the previous version token rather than failing
            # an operation whose real work already happened.
            if not _transient(exc):
                raise

    def _push(self, offset: int, data: bytes) -> int:
        """Write-through push: one origin write, then track its version.

        Refreshing here (not in on_write) keeps the version current for
        *every* path that touches the origin, including flush-on-evict.
        """
        written = self._remote(lambda: self._origin.write(offset, data))
        self._refresh_version()
        return written

    def _push_extents(self, extents) -> None:
        """Coalesced flush: vectored when the origin protocol has one."""
        vectored = getattr(self._origin, "write_extents", None)
        if vectored is not None:
            self._remote(lambda: vectored(extents))
        else:
            for offset, data in extents:
                self._remote(lambda o=offset, d=data: self._origin.write(o, d))
        self._refresh_version()

    def _revalidate(self) -> None:
        if self._cache is None:
            return
        if self._member is not None:
            # Leased read path: while this open's lease is valid, reads
            # cost ZERO origin round trips — peer writes either
            # push-install their bytes (lease survives) or revoke the
            # lease, in which case the next read re-stats the origin.
            if self._domain.lease_valid(self._member):
                return
            try:
                size, version = self._remote(self._origin.stat)
            except RemoteFileNotFound:
                size, version = None, None
            except NetworkError as exc:
                if self.stale_reads and _transient(exc):
                    return  # partition: serve the cached bytes, no lease
                raise
            if version != self._last_version:
                self._cache.invalidate()
                self._last_version = version
            if size is not None:
                self._last_size = size
            self._domain.grant(self._member)
            return
        if not self.validate:
            return
        try:
            _, version = self._remote(self._origin.stat)
        except RemoteFileNotFound:
            version = None
        except NetworkError as exc:
            if self.stale_reads and _transient(exc):
                # Partition tolerance, opt-in: the origin is unreachable
                # but the cached bytes are intact — serve them stale
                # rather than failing the read.
                return
            raise
        if version != self._last_version:
            self._cache.invalidate()
            self._last_version = version

    # -- graceful degradation ----------------------------------------------------------

    def _enter(self, ctx: SentinelContext) -> None:
        """Per-command entry: inherit the caller's deadline budget and
        opportunistically re-flush writes queued behind a partition."""
        self._op_deadline = getattr(ctx, "deadline", None)
        self._maybe_flush_queued()

    def _queue_flush_failed(self) -> None:
        """Push the next opportunistic re-flush out with backoff."""
        self._queue_backoff = min(self._queue_backoff * self.retry.multiplier,
                                  self.retry.max_delay)
        self._queue_retry_at = time.monotonic() + self._queue_backoff

    def _maybe_flush_queued(self) -> None:
        """Retry queued writes once the backoff window has elapsed.

        Called on every command, so a healed partition drains the queue
        from whatever the application does next — no timer thread.
        """
        if not self.queue_writes or self._cache is None:
            return
        if self._cache.dirty_bytes == 0 \
                or time.monotonic() < self._queue_retry_at:
            return
        try:
            self._cache.flush()
        except NetworkError as exc:
            if not _transient(exc):
                raise
            self._queue_flush_failed()
        else:
            self._queue_backoff = self.retry.base_delay

    # -- sentinel interface ------------------------------------------------------------

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        self._enter(ctx)
        if self._cache is None:
            return self._fetch(offset, size)
        self._revalidate()
        return self._cache.read(offset, size)

    def on_read_into(self, ctx: SentinelContext, offset: int, size: int,
                     buffer: memoryview) -> int:
        """Cache-hit reads land straight in the offered (shm) buffer."""
        self._enter(ctx)
        if self._cache is None:
            data = self._fetch(offset, size)
            buffer[:len(data)] = data
            return len(data)
        self._revalidate()
        return self._cache.read_into(offset, buffer[:size])

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        self._enter(ctx)
        if self._cache is None:
            return self._push(offset, data)
        if self._member is not None:
            # Serialize conflicting writes per extent across the domain,
            # then push-install the bytes into every peer cache so their
            # leases survive this write instead of being revoked.
            with self._domain.write_fence(self._member, offset, len(data)):
                written = self._cache.write(offset, data)
                self._domain.publish(self._member, offset, bytes(data),
                                     total=self._last_size,
                                     version=self._last_version)
                return written
        # Write-through pushes refresh the version via _push; buffered
        # write-behind writes leave the origin (and version) untouched
        # until the coalesced flush.
        try:
            return self._cache.write(offset, data)
        except NetworkError as exc:
            if self.queue_writes and _transient(exc):
                # The bytes are buffered locally and still marked dirty
                # (the cache re-marks on flush failure); they will be
                # re-pushed once the origin heals.
                self._queue_flush_failed()
                return len(data)
            raise

    def on_size(self, ctx: SentinelContext) -> int:
        self._enter(ctx)
        if self._member is not None and self._last_size is not None \
                and self._domain.lease_valid(self._member):
            # Leased size: peer writes keep _last_size current through
            # the install callback, so no origin stat is needed.
            size = self._last_size
            if self._cache is not None:
                size = max(size, self._cache.dirty_end)
            return size
        try:
            size, _ = self._remote(self._origin.stat)
            self._last_size = size
        except NetworkError as exc:
            if not (self.stale_reads and _transient(exc)
                    and self._last_size is not None):
                raise
            size = self._last_size  # partition: last-known origin size
        if self._cache is not None:
            # Buffered writes may extend the file past what the origin
            # has seen; the logical size includes them.
            size = max(size, self._cache.dirty_end)
        return size

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        self._enter(ctx)
        if self._cache is not None:
            # Flush first: dirty bytes surviving past the truncate would
            # re-extend the file at the next flush.
            self._cache.flush()
        self._remote(lambda: self._origin.truncate(size))
        if self._cache is not None:
            self._cache.invalidate()
            self._refresh_version()
        if self._member is not None:
            # No bytes to ship — peers must drop their windows and
            # re-stat the origin on their next read.
            self._domain.invalidate_peers(self._member)

    def on_flush(self, ctx: SentinelContext) -> None:
        self._enter(ctx)
        if self._cache is not None:
            try:
                self._cache.flush()
            except NetworkError as exc:
                if not (self.queue_writes and _transient(exc)):
                    raise
                # Opt-in degradation: the bytes stay buffered (and
                # dirty); they re-flush with backoff once the origin
                # heals.  Close still refuses to lose them.
                self._queue_flush_failed()
        super().on_flush(ctx)

    def on_close(self, ctx: SentinelContext) -> None:
        # Push any remaining dirty bytes; a failure here propagates as a
        # typed error reporting exactly the unflushed state — queued or
        # not, buffered writes never silently vanish.
        self._enter(ctx)
        if self._cache is not None:
            try:
                self._cache.flush()
            except NetworkError as exc:
                if not _transient(exc):
                    raise
                raise FlushError(
                    f"origin unreachable at close with "
                    f"{self._cache.dirty_bytes} buffered bytes unflushed"
                ) from exc

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "invalidate":
            if self._cache is not None:
                self._cache.invalidate()
            return {"invalidated": self._cache is not None}, b""
        # The canonical spelling only: the dispatcher folds the legacy
        # "cache_stats" alias before this handler ever sees the op.
        if op == "cache-stats":
            if self._cache is None:
                return {"cache": "none"}, b""
            return {"cache": self.cache_path, **self._cache.stats()}, b""
        if op == "coherence-stats":
            # Domain counters live wherever the sentinel runs (the host
            # child for process strategies); this op hauls them back to
            # the application for benchmarks and tests.
            if self._domain is None:
                return {"coherent": False}, b""
            return {"coherent": True, "member": self._member,
                    **self._domain.stats()}, b""
        return super().on_control(ctx, op, args, payload)
