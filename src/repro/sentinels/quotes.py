"""Stock-quote file sentinel (paper §3).

"An example might be an active file that reflects the latest stock
quotes (downloaded by the sentinel from a server) every time the file
is opened."  Opening the file snapshots the feed; the ``refresh``
control op re-downloads without reopening.
"""

from __future__ import annotations

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["StockQuoteSentinel"]


class StockQuoteSentinel(Sentinel):
    """A read-only text file of the latest quotes.

    Params: ``address`` (quote-server address string), ``symbols``
    (list; empty/omitted = all symbols the server offers), ``format``
    ("plain" -> ``SYM<TAB>price`` lines, or "csv").
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        if "address" not in self.params:
            raise SentinelError("quote sentinel requires an 'address' param")
        self.symbols = list(self.params.get("symbols") or [])
        self.format = str(self.params.get("format", "plain"))
        if self.format not in ("plain", "csv"):
            raise SentinelError(f"unknown quote format {self.format!r}")
        self._view = ByteBuffer()
        self.generation = -1

    def _download(self, ctx: SentinelContext) -> None:
        connection = ctx.connect(str(self.params["address"]))
        fields = {"symbols": self.symbols} if self.symbols else {}
        response = connection.expect("BATCH", **fields)
        quotes = response.fields["quotes"]
        self.generation = int(response.fields["generation"])
        lines = []
        if self.format == "csv":
            lines.append("symbol,price")
            lines += [f"{symbol},{price}" for symbol, price in sorted(quotes.items())]
        else:
            lines += [f"{symbol}\t{price}" for symbol, price in sorted(quotes.items())]
        self._view.setvalue(("\n".join(lines) + "\n").encode("utf-8"))

    # -- sentinel interface ---------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._download(ctx)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        return self._view.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        from repro.errors import UnsupportedOperationError

        raise UnsupportedOperationError("quote files are read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        return self._view.size

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "refresh":
            self._download(ctx)
            return {"generation": self.generation, "size": self._view.size}, b""
        return super().on_control(ctx, op, args, payload)
