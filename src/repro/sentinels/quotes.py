"""Stock-quote file sentinel (paper §3).

"An example might be an active file that reflects the latest stock
quotes (downloaded by the sentinel from a server) every time the file
is opened."  Opening the file snapshots the feed; the ``refresh``
control op re-downloads without reopening.

With ``live=True`` the sentinel becomes a real ticker on the container's
coherence domain: every open of the quote file is one domain member, a
``refresh`` polls the feed *incrementally* (generation-delta ``POLL``,
falling back to a snapshot resync) and publishes the new view to every
peer open — their files update in place, and their subscribers see one
``poll()`` record per market movement — while concurrent opening
downloads collapse onto a single feed exchange via the domain's
single-flight fill.
"""

from __future__ import annotations

from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError, UnsupportedOperationError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["StockQuoteSentinel"]


class StockQuoteSentinel(Sentinel):
    """A read-only text file of the latest quotes.

    Params: ``address`` (quote-server address string), ``symbols``
    (list; empty/omitted = all symbols the server offers), ``format``
    ("plain" -> ``SYM<TAB>price`` lines, or "csv"), ``live`` (join the
    container's coherence domain: refreshes fan out to peer opens and
    subscribers, concurrent open downloads are single-flight).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        if "address" not in self.params:
            raise SentinelError("quote sentinel requires an 'address' param")
        self.symbols = list(self.params.get("symbols") or [])
        self.format = str(self.params.get("format", "plain"))
        if self.format not in ("plain", "csv"):
            raise SentinelError(f"unknown quote format {self.format!r}")
        self.live = bool(self.params.get("live", False))
        self._view = ByteBuffer()
        self._quotes: dict[str, float] = {}
        self.generation = -1
        self._domain = None
        self._member: int | None = None
        self._stale = False

    # -- feed exchanges ---------------------------------------------------------------

    def _render(self) -> bytes:
        lines = []
        if self.format == "csv":
            lines.append("symbol,price")
            lines += [f"{symbol},{price}"
                      for symbol, price in sorted(self._quotes.items())]
        else:
            lines += [f"{symbol}\t{price}"
                      for symbol, price in sorted(self._quotes.items())]
        return ("\n".join(lines) + "\n").encode("utf-8")

    def _batch_fields(self) -> dict[str, Any]:
        return {"symbols": self.symbols} if self.symbols else {}

    def _install_snapshot(self, quotes: dict[str, float],
                          generation: int) -> None:
        self._quotes = {str(s): float(p) for s, p in quotes.items()}
        self.generation = int(generation)
        self._view.setvalue(self._render())
        self._stale = False

    def _download(self, ctx: SentinelContext) -> None:
        """Full snapshot download; single-flight across opening peers.

        The domain collapses concurrent opens onto one ``BATCH``
        exchange: the first member's request serves everyone opening in
        the same epoch (a published refresh bumps the epoch, so nobody
        joins a pre-refresh download after the fact).
        """
        def start():
            connection = ctx.connect(str(self.params["address"]))
            resolve = connection.call_async("BATCH", **self._batch_fields())

            def result():
                response = resolve()
                if not response.ok:
                    raise SentinelError(f"quote feed rejected BATCH: "
                                        f"{response.error}")
                return (dict(response.fields["quotes"]),
                        int(response.fields["generation"]))
            return result

        if self._domain is not None:
            resolver = self._domain.fill(("quotes", "batch"), start)
        else:
            resolver = start()
        quotes, generation = resolver()
        self._install_snapshot(quotes, generation)

    def _poll_feed(self, ctx: SentinelContext) -> int:
        """Incremental refresh: apply the generation-delta, or resync.

        Returns the number of price changes applied (a resync counts as
        one wholesale change).
        """
        connection = ctx.connect(str(self.params["address"]))
        response = connection.expect("POLL", since=max(self.generation, 0),
                                     **self._batch_fields())
        generation = int(response.fields["generation"])
        if response.fields.get("resync"):
            self._install_snapshot(dict(response.fields["quotes"]),
                                   generation)
            return 1
        updates = response.fields.get("updates") or []
        for entry in updates:
            self._quotes[str(entry["symbol"])] = float(entry["price"])
        if updates:
            self.generation = generation
            self._view.setvalue(self._render())
            self._stale = False
        else:
            self.generation = generation
        return len(updates)

    # -- coherence-domain callbacks ----------------------------------------------------

    def _install_view(self, offset: int, data: bytes,
                      total: "int | None", version: Any) -> None:
        """A peer refreshed: replace this open's rendered view."""
        self._view.setvalue(bytes(data))
        if version is not None:
            self.generation = int(version)
        self._stale = False

    def _peer_invalidated(self, offset, size) -> None:
        self._stale = True

    def _freshen(self, ctx: SentinelContext) -> None:
        if self._stale:
            self._poll_feed(ctx)

    # -- sentinel interface ---------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        if self.live and ctx.coherence is not None:
            self._domain = ctx.coherence
            self._member = self._domain.register(
                invalidate=self._peer_invalidated,
                install=self._install_view)
            self._fanout_member_id = self._member
        self._download(ctx)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        self._freshen(ctx)
        return self._view.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        raise UnsupportedOperationError("quote files are read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        self._freshen(ctx)
        return self._view.size

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "refresh":
            changed = self._poll_feed(ctx)
            if changed and self._member is not None:
                # Fan the fresh view out: peer opens install it in
                # place, their subscribers get one update record.
                view = self._view.getvalue()
                self._domain.publish(
                    self._member, 0, view, total=len(view),
                    version=self.generation,
                    fields={"generation": self.generation,
                            "changes": changed})
            return {"generation": self.generation, "size": self._view.size,
                    "changes": changed}, b""
        return super().on_control(ctx, op, args, payload)
