"""A versioning filter sentinel (a §3 "intelligent file").

"The owner/creator of a file may wish to control and log its accesses"
— this sentinel goes one step further and keeps the file's *history*:
every snapshot preserves the then-current contents (zlib-compressed),
and the application can list and restore versions through control
operations, all without any version-control tooling — the file versions
itself.

Policies: ``snapshot_on_close`` (default True) snapshots automatically
when a writing open closes; explicit ``snapshot`` control ops work at
any time.  ``max_versions`` bounds history (oldest dropped first).

Data-part layout::

    b"AFV1" | u32 header_len | JSON header | current | version blobs

where the header records the current size and each version's (length,
label) and the blobs are zlib-compressed snapshots, newest last.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["VersioningSentinel"]

_MAGIC = b"AFV1"
_LEN = struct.Struct(">I")


class VersioningSentinel(Sentinel):
    """Transparent file with built-in snapshot history.

    Params: ``max_versions`` (default 16), ``snapshot_on_close``
    (default True — only when the open actually wrote).
    """

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        self.max_versions = int(self.params.get("max_versions", 16))
        if self.max_versions < 1:
            raise SentinelError("max_versions must be >= 1")
        self.snapshot_on_close = bool(self.params.get("snapshot_on_close",
                                                      True))
        self._current = ByteBuffer()
        self._versions: list[tuple[str, bytes]] = []  # (label, zlib blob)
        self._wrote = False

    # -- persistence -------------------------------------------------------------

    def _load(self, ctx: SentinelContext) -> None:
        blob = ctx.data.read_at(0, ctx.data.size)
        if not blob:
            return
        if blob[:4] != _MAGIC:
            # adopt a plain data part as the initial current contents
            self._current.setvalue(blob)
            return
        (header_len,) = _LEN.unpack_from(blob, 4)
        header_end = 8 + header_len
        try:
            header = json.loads(blob[8:header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SentinelError(f"corrupt version header: {exc}") from exc
        cursor = header_end
        current_size = int(header["current_size"])
        self._current.setvalue(blob[cursor:cursor + current_size])
        cursor += current_size
        self._versions = []
        for entry in header["versions"]:
            length = int(entry["length"])
            self._versions.append((str(entry["label"]),
                                   blob[cursor:cursor + length]))
            cursor += length

    def _store(self, ctx: SentinelContext) -> None:
        current = self._current.getvalue()
        header = json.dumps({
            "current_size": len(current),
            "versions": [{"label": label, "length": len(blob)}
                         for label, blob in self._versions],
        }, separators=(",", ":")).encode("utf-8")
        body = (_MAGIC + _LEN.pack(len(header)) + header + current
                + b"".join(blob for _, blob in self._versions))
        ctx.data.truncate(0)
        ctx.data.write_at(0, body)
        ctx.data.flush()

    # -- versioning ------------------------------------------------------------------

    def _snapshot(self, label: str) -> int:
        self._versions.append((label,
                               zlib.compress(self._current.getvalue(), 6)))
        if len(self._versions) > self.max_versions:
            del self._versions[:len(self._versions) - self.max_versions]
        return len(self._versions) - 1

    # -- sentinel interface -------------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._load(ctx)
        self._wrote = False

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        return self._current.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        self._wrote = True
        return self._current.write_at(offset, data)

    def on_size(self, ctx: SentinelContext) -> int:
        return self._current.size

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        self._wrote = True
        self._current.truncate(size)

    def on_flush(self, ctx: SentinelContext) -> None:
        self._store(ctx)

    def on_close(self, ctx: SentinelContext) -> None:
        if self._wrote and self.snapshot_on_close:
            self._snapshot("close")
        self._store(ctx)

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes) -> tuple[dict[str, Any], bytes]:
        if op == "snapshot":
            index = self._snapshot(str(args.get("label", "manual")))
            self._store(ctx)
            return {"version": index, "versions": len(self._versions)}, b""
        if op == "versions":
            listing = [
                {"index": index, "label": label,
                 "size": len(zlib.decompress(blob))}
                for index, (label, blob) in enumerate(self._versions)
            ]
            return {"versions": listing, "current_size": self._current.size}, b""
        if op == "restore":
            index = int(args.get("index", -1))
            if not 0 <= index < len(self._versions):
                raise SentinelError(f"no such version: {index}")
            label, blob = self._versions[index]
            self._current.setvalue(zlib.decompress(blob))
            self._wrote = True
            self._store(ctx)
            return {"restored": index, "label": label,
                    "size": self._current.size}, b""
        if op == "peek":
            index = int(args.get("index", -1))
            if not 0 <= index < len(self._versions):
                raise SentinelError(f"no such version: {index}")
            return {"index": index}, zlib.decompress(self._versions[index][1])
        return super().on_control(ctx, op, args, payload)
