"""Distribution sentinel (paper §3).

"Sentinel processes can also distribute information to various sources,
triggered by file operations against the active file.  As with
aggregation, these sources include other local or remote files,
databases, network connections, and other processes."

Every application write lands in the data part *and* is propagated to
each configured target — a tee with remote sinks.  Propagation is
synchronous ("side effects ... triggered by file operations"), so when
``write()`` returns, every sink has the bytes.
"""

from __future__ import annotations

from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError

__all__ = ["DistributionSentinel"]


class DistributionSentinel(Sentinel):
    """Tees writes to the data part plus remote/local/database sinks.

    Params: ``targets`` — list of dicts, each one of:

    * ``{"kind": "fileserver", "address": ..., "path": ...}`` —
      appended to the remote file;
    * ``{"kind": "local", "path": ...}`` — appended to a real file;
    * ``{"kind": "kv", "address": ..., "key": ...}`` — each write
      stored as the new value of the key.

    Reads serve the local data part, so the active file doubles as the
    local record of everything distributed.
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.targets = list(self.params.get("targets") or [])
        if not self.targets:
            raise SentinelError("distribution sentinel requires a 'targets' list")
        for target in self.targets:
            if target.get("kind") not in ("fileserver", "local", "kv"):
                raise SentinelError(f"unknown target kind: {target.get('kind')!r}")
        self.distributed_writes = 0

    def _propagate(self, ctx: SentinelContext, data: bytes) -> None:
        for target in self.targets:
            kind = target["kind"]
            if kind == "fileserver":
                connection = ctx.connect(str(target["address"]))
                connection.expect("append", data, path=target["path"])
            elif kind == "local":
                with open(target["path"], "ab") as stream:
                    stream.write(data)
            elif kind == "kv":
                connection = ctx.connect(str(target["address"]))
                connection.expect("put", data, key=target["key"])

    # -- sentinel interface ---------------------------------------------------------

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        written = ctx.data.write_at(offset, data)
        self._propagate(ctx, data)
        self.distributed_writes += 1
        return written

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes):
        if op == "stats":
            return {"distributed_writes": self.distributed_writes,
                    "targets": len(self.targets)}, b""
        return super().on_control(ctx, op, args, payload)
