"""Distribution sentinel (paper §3).

"Sentinel processes can also distribute information to various sources,
triggered by file operations against the active file.  As with
aggregation, these sources include other local or remote files,
databases, network connections, and other processes."

Every application write lands in the data part *and* is propagated to
each configured target — a tee with remote sinks.  Propagation is
synchronous ("side effects ... triggered by file operations"), so when
``write()`` returns, every sink has the bytes.  Failed legs are
attempted to completion and reported together as one typed
:class:`~repro.errors.DistributionError` naming every sink that missed
the bytes — a partial fan-out is never silent.

On a coherence-domain strategy every open of the distribution file is a
domain member: a write through one open push-installs into every peer's
data part and lands one record in every subscriber queue, so the local
record of what was distributed is identical across opens.
"""

from __future__ import annotations

from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import DistributionError, SentinelError

__all__ = ["DistributionSentinel"]


class DistributionSentinel(Sentinel):
    """Tees writes to the data part plus remote/local/database sinks.

    Params: ``targets`` — list of dicts, each one of:

    * ``{"kind": "fileserver", "address": ..., "path": ...}`` —
      appended to the remote file;
    * ``{"kind": "local", "path": ...}`` — appended to a real file;
    * ``{"kind": "kv", "address": ..., "key": ...}`` — each write
      stored as the new value of the key.

    Reads serve the local data part, so the active file doubles as the
    local record of everything distributed.
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.targets = list(self.params.get("targets") or [])
        if not self.targets:
            raise SentinelError("distribution sentinel requires a 'targets' list")
        for target in self.targets:
            if target.get("kind") not in ("fileserver", "local", "kv"):
                raise SentinelError(f"unknown target kind: {target.get('kind')!r}")
        self.distributed_writes = 0
        self.failed_legs = 0
        self._ctx: SentinelContext | None = None
        self._domain = None
        self._member: int | None = None

    @staticmethod
    def _describe(target: dict[str, Any]) -> str:
        kind = target["kind"]
        if kind == "fileserver":
            return f"fileserver {target['address']}:{target['path']}"
        if kind == "kv":
            return f"kv {target['address']}[{target['key']}]"
        return f"local {target['path']}"

    def _propagate(self, ctx: SentinelContext, data: bytes) -> None:
        """Push *data* to every sink; report all failed legs together."""
        failures: list[tuple[str, str]] = []
        for target in self.targets:
            kind = target["kind"]
            try:
                if kind == "fileserver":
                    connection = ctx.connect(str(target["address"]))
                    connection.expect("append", data, path=target["path"])
                elif kind == "local":
                    with open(target["path"], "ab") as stream:
                        stream.write(data)
                elif kind == "kv":
                    connection = ctx.connect(str(target["address"]))
                    connection.expect("put", data, key=target["key"])
            except Exception as exc:
                failures.append((self._describe(target),
                                 f"{type(exc).__name__}: {exc}"))
        if failures:
            self.failed_legs += len(failures)
            raise DistributionError(failures=failures)

    # -- coherence-domain callbacks ----------------------------------------------------

    def _install_tee(self, offset: int, data: bytes,
                     total: "int | None", version: Any) -> None:
        """A peer distributed: mirror its bytes into this open's record."""
        if self._ctx is not None:
            self._ctx.data.write_at(offset, bytes(data))

    # -- sentinel interface ---------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._ctx = ctx
        if ctx.coherence is not None:
            self._domain = ctx.coherence
            self._member = self._domain.register(install=self._install_tee)
            self._fanout_member_id = self._member

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        written = ctx.data.write_at(offset, data)
        self._propagate(ctx, data)
        self.distributed_writes += 1
        if self._member is not None:
            # Every sink has the bytes — now so does every peer open
            # (and every subscriber's queue gets the record).
            self._domain.publish(self._member, offset, data,
                                 fields={"targets": len(self.targets)})
        return written

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes):
        if op == "stats":
            return {"distributed_writes": self.distributed_writes,
                    "failed_legs": self.failed_legs,
                    "targets": len(self.targets)}, b""
        return super().on_control(ctx, op, args, payload)
