"""Data-generation sentinels (paper §3, "Data generation").

"The sentinel process can completely obviate the existence of a
physical (passive) file ... the corresponding active file appears to
client programs as a data file that contains an infinite stream of
random numbers."

All three generators here are *deterministic functions of the offset*,
so they work identically under every strategy (including random access
under the control-channel strategies) and produce reproducible examples
and benchmarks.  Seeding comes from spec params.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.sentinel import Sentinel, SentinelContext

__all__ = ["RandomBytesSentinel", "CounterSentinel", "SequenceSentinel"]

#: Reported by endless generators for GetFileSize; effectively "infinite"
#: while still fitting in a signed 64-bit size field.
UNBOUNDED_SIZE = (1 << 63) - 1


def _splitmix64(value: int) -> int:
    """One round of splitmix64 — a solid stateless 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class RandomBytesSentinel(Sentinel):
    """An infinite stream of pseudo-random bytes.

    Params: ``seed`` (int, default 0), ``limit`` (optional byte count;
    omitted = endless).
    """

    endless = True

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.seed = int(self.params.get("seed", 0))
        limit = self.params.get("limit")
        self.limit = None if limit is None else int(limit)
        if self.limit is not None:
            self.endless = False

    def _word(self, index: int) -> bytes:
        return _splitmix64(self.seed ^ index).to_bytes(8, "little")

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        if self.limit is not None:
            size = max(0, min(size, self.limit - offset))
        if size <= 0:
            return b""
        first_word = offset // 8
        last_word = (offset + size - 1) // 8
        blob = b"".join(self._word(i) for i in range(first_word, last_word + 1))
        start = offset - first_word * 8
        return blob[start:start + size]

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        from repro.errors import UnsupportedOperationError

        raise UnsupportedOperationError("random-bytes files are read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        return UNBOUNDED_SIZE if self.limit is None else self.limit

    def generate(self, ctx: SentinelContext) -> Iterator[bytes]:
        offset = 0
        while self.limit is None or offset < self.limit:
            chunk = self.on_read(ctx, offset, self.stream_chunk)
            if not chunk:
                return
            offset += len(chunk)
            yield chunk


class CounterSentinel(Sentinel):
    """Newline-separated decimal integers, one per line, forever.

    Params: ``start`` (default 0), ``width`` (zero-padded digits,
    default 10), ``count`` (optional line limit).
    """

    endless = True

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.start = int(self.params.get("start", 0))
        self.width = int(self.params.get("width", 10))
        count = self.params.get("count")
        self.count = None if count is None else int(count)
        if self.count is not None:
            self.endless = False
        self.line_len = self.width + 1  # digits + newline

    def _line(self, index: int) -> bytes:
        return f"{self.start + index:0{self.width}d}\n".encode("ascii")

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        if self.count is not None:
            total = self.count * self.line_len
            size = max(0, min(size, total - offset))
        if size <= 0:
            return b""
        first = offset // self.line_len
        last = (offset + size - 1) // self.line_len
        blob = b"".join(self._line(i) for i in range(first, last + 1))
        start = offset - first * self.line_len
        return blob[start:start + size]

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        from repro.errors import UnsupportedOperationError

        raise UnsupportedOperationError("counter files are read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        if self.count is None:
            return UNBOUNDED_SIZE
        return self.count * self.line_len


class SequenceSentinel(Sentinel):
    """A fixed byte pattern repeated up to a total length.

    Params: ``pattern`` (str, default ``"abc"``), ``repeats``
    (default 1).  Finite — handy for tests that need a predictable
    generated file of exact size.
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.pattern = str(self.params.get("pattern", "abc")).encode("utf-8")
        self.repeats = int(self.params.get("repeats", 1))

    @property
    def total(self) -> int:
        return len(self.pattern) * self.repeats

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        size = max(0, min(size, self.total - offset))
        if size <= 0 or not self.pattern:
            return b""
        period = len(self.pattern)
        first = offset // period
        last = (offset + size - 1) // period
        blob = self.pattern * (last - first + 1)
        start = offset - first * period
        return blob[start:start + size]

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        from repro.errors import UnsupportedOperationError

        raise UnsupportedOperationError("sequence files are read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        return self.total
