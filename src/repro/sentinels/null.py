"""The null filter (paper Figure 2).

"The sentinel can be a null filter, in which case the active file has
the semantics of a passive file."  The base :class:`Sentinel` already
passes everything through to the data part, so the null filter is an
empty subclass — kept as a named class so containers can reference it
explicitly and tests can assert passive-equivalence against it.
"""

from __future__ import annotations

from repro.core.sentinel import Sentinel

__all__ = ["NullFilterSentinel"]


class NullFilterSentinel(Sentinel):
    """Pass-through sentinel: active file ≡ passive file."""
