"""Concurrent intelligent logging sentinel (paper §3).

"Assume that several processes log events using the same log file.  As
the sentinel receives each log record, it locks the file, writes the
record and unlocks the file.  The processes generating the logs do not
need to know about log file locking.  Moreover, the sentinel can
perform a variety of functions in the background such as cleaning up
the logs."

Every write is treated as one log record: the sentinel takes the
container's cross-process lock, reloads the data part (so records
appended by *other* sentinels — possibly in other OS processes — are
not lost), appends the record with a sequence number, and persists
before releasing.  Compaction ("cleaning up") is exposed as a control
operation.
"""

from __future__ import annotations

from repro.core.datapart import ContainerDataPart
from repro.core.sentinel import Sentinel, SentinelContext

__all__ = ["ConcurrentLogSentinel"]


class ConcurrentLogSentinel(Sentinel):
    """Append-only, multi-writer-safe log file.

    Params: ``max_records`` (compaction threshold; when exceeded at
    append time, oldest records are dropped to ``keep_records``),
    ``keep_records`` (default ``max_records``), ``stamp`` (bool,
    default True: prefix each record with ``<seq> ``).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        max_records = self.params.get("max_records")
        self.max_records = None if max_records is None else int(max_records)
        self.keep_records = int(self.params.get("keep_records",
                                                self.max_records or 0)) or None
        self.stamp = bool(self.params.get("stamp", True))

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _records(data: bytes) -> list[bytes]:
        return data.split(b"\n")[:-1] if data else []

    @staticmethod
    def _next_seq(records: list[bytes]) -> int:
        for record in reversed(records):
            head, _, _ = record.partition(b" ")
            try:
                return int(head) + 1
            except ValueError:
                continue
        return 0

    def _locked(self, ctx: SentinelContext):
        """Reload-under-lock context; returns (lock context usable or None)."""
        if isinstance(ctx.data, ContainerDataPart):
            return ctx.data._lock  # advisory cross-process lock
        if ctx.shared is not None:
            return ctx.shared.lock
        import contextlib

        return contextlib.nullcontext()

    # -- sentinel interface ---------------------------------------------------------

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        """Append one record (the offset is ignored: logs only append)."""
        record = data.rstrip(b"\n")
        with self._locked(ctx):
            if isinstance(ctx.data, ContainerDataPart):
                ctx.data.reload()
            body = ctx.data.read_at(0, ctx.data.size)
            records = self._records(body)
            if self.stamp:
                record = b"%06d %s" % (self._next_seq(records), record)
            records.append(record)
            if self.max_records is not None and len(records) > self.max_records:
                records = records[-(self.keep_records or self.max_records):]
            new_body = b"\n".join(records) + b"\n"
            ctx.data.truncate(0)
            ctx.data.write_at(0, new_body)
            ctx.data.flush()
        return len(data)

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        with self._locked(ctx):
            if isinstance(ctx.data, ContainerDataPart):
                ctx.data.reload()
            ctx.data.truncate(size)
            ctx.data.flush()

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        with self._locked(ctx):
            if isinstance(ctx.data, ContainerDataPart):
                ctx.data.reload()
            return ctx.data.read_at(offset, size)

    def on_size(self, ctx: SentinelContext) -> int:
        with self._locked(ctx):
            if isinstance(ctx.data, ContainerDataPart):
                ctx.data.reload()
            return ctx.data.size

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "compact":
            keep = int(args.get("keep", self.keep_records or 0))
            with self._locked(ctx):
                if isinstance(ctx.data, ContainerDataPart):
                    ctx.data.reload()
                records = self._records(ctx.data.read_at(0, ctx.data.size))
                dropped = max(0, len(records) - keep)
                kept = records[-keep:] if keep else []
                body = b"\n".join(kept) + b"\n" if kept else b""
                ctx.data.truncate(0)
                if body:
                    ctx.data.write_at(0, body)
                ctx.data.flush()
            return {"dropped": dropped, "kept": len(kept)}, b""
        if op == "stats":
            with self._locked(ctx):
                if isinstance(ctx.data, ContainerDataPart):
                    ctx.data.reload()
                records = self._records(ctx.data.read_at(0, ctx.data.size))
            return {"records": len(records), "bytes": ctx.data.size}, b""
        return super().on_control(ctx, op, args, payload)
