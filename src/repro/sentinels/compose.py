"""Composing sentinels into pipelines (paper §3).

"Larger applications are constructed by composing these actions in
different ways."  A :class:`PipelineSentinel` stacks filter sentinels:
the application talks to the outermost stage, each stage sees the next
stage as *its* data part, and the innermost stage operates on the real
data part (or on a remote source, if it is e.g. a
:class:`~repro.sentinels.remotefile.RemoteFileSentinel`).

Examples this enables with zero new code:

* ``cipher(compress(null))`` — an encrypted, compressed local file;
* ``audit(remotefile)`` — an access-logged view of a remote file;
* ``cipher(remotefile)`` — client-side encryption over an untrusted
  server (the server only ever sees ciphertext).

Stage order in params is outermost-first, matching how reads flow.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.core.datapart import DataPart
from repro.core.sentinel import Sentinel, SentinelContext
from repro.core.spec import SentinelSpec
from repro.errors import SpecError

__all__ = ["PipelineSentinel", "StageDataPart", "pipeline_spec"]


def pipeline_spec(*stages: SentinelSpec) -> SentinelSpec:
    """Build a pipeline spec from outermost to innermost stage."""
    if len(stages) < 2:
        raise SpecError("a pipeline needs at least two stages")
    return SentinelSpec(
        target="repro.sentinels.compose:PipelineSentinel",
        params={"stages": [stage.to_dict() for stage in stages]},
    )


class StageDataPart(DataPart):
    """Presents the next pipeline stage as a data part.

    Every call the outer stage makes against "its file" becomes a
    handler call on the inner sentinel — which is exactly how the paper
    composes actions: each sentinel believes it is filtering a plain
    file.
    """

    def __init__(self, sentinel: Sentinel, ctx: SentinelContext) -> None:
        self._sentinel = sentinel
        self._ctx = ctx

    def read_at(self, offset: int, size: int) -> bytes:
        return self._sentinel.on_read(self._ctx, offset, size)

    def write_at(self, offset: int, data: bytes) -> int:
        return self._sentinel.on_write(self._ctx, offset, data)

    @property
    def size(self) -> int:
        return self._sentinel.on_size(self._ctx)

    def truncate(self, size: int = 0) -> None:
        self._sentinel.on_truncate(self._ctx, size)

    def getvalue(self) -> bytes:
        return self.read_at(0, self.size)

    def setvalue(self, data: bytes) -> None:
        self.truncate(0)
        self.write_at(0, data)

    def flush(self) -> None:
        self._sentinel.on_flush(self._ctx)

    def close(self) -> None:
        # pipeline teardown runs through PipelineSentinel.on_close; a
        # stage's view of "its file" closing must not close the stack
        self.flush()


class PipelineSentinel(Sentinel):
    """Stacks sentinels; stage N's data part is stage N+1.

    Params: ``stages`` — a list of spec dicts, outermost first.  The
    innermost stage receives the pipeline's real context (data part,
    network, shared state); every other stage gets a shallow context
    copy whose ``data`` is the next stage.
    """

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        stage_dicts = self.params.get("stages") or []
        if len(stage_dicts) < 2:
            raise SpecError("pipeline sentinel needs a 'stages' list of >= 2")
        self.stages = [SentinelSpec.from_dict(stage).instantiate()
                       for stage in stage_dicts]
        self._contexts: list[SentinelContext] = []

    # -- wiring -----------------------------------------------------------------------

    def _wire(self, ctx: SentinelContext) -> None:
        """Build per-stage contexts, innermost first."""
        self._contexts = [None] * len(self.stages)
        inner_ctx = ctx
        for index in range(len(self.stages) - 1, -1, -1):
            self._contexts[index] = inner_ctx
            if index > 0:
                stage_view = StageDataPart(self.stages[index], inner_ctx)
                inner_ctx = replace(ctx, data=stage_view)

    @property
    def _outer(self) -> tuple[Sentinel, SentinelContext]:
        return self.stages[0], self._contexts[0]

    # -- sentinel interface ---------------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._wire(ctx)
        # open innermost-first so outer stages can read through on open
        for index in range(len(self.stages) - 1, -1, -1):
            self.stages[index].on_open(self._contexts[index])

    def on_close(self, ctx: SentinelContext) -> None:
        # close outermost-first so outer flushes land before inner ones
        for index in range(len(self.stages)):
            self.stages[index].on_close(self._contexts[index])

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        sentinel, stage_ctx = self._outer
        return sentinel.on_read(stage_ctx, offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        sentinel, stage_ctx = self._outer
        return sentinel.on_write(stage_ctx, offset, data)

    def on_size(self, ctx: SentinelContext) -> int:
        sentinel, stage_ctx = self._outer
        return sentinel.on_size(stage_ctx)

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        sentinel, stage_ctx = self._outer
        sentinel.on_truncate(stage_ctx, size)

    def on_flush(self, ctx: SentinelContext) -> None:
        for index in range(len(self.stages)):
            self.stages[index].on_flush(self._contexts[index])

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes) -> tuple[dict[str, Any], bytes]:
        """Control ops route to the first stage that accepts them.

        ``pipeline_stages`` is answered by the pipeline itself; a
        ``stage`` argument pins the op to one stage index.
        """
        from repro.errors import UnsupportedOperationError

        if op == "pipeline_stages":
            return {"stages": [type(stage).__name__
                               for stage in self.stages]}, b""
        if "stage" in args:
            index = int(args["stage"])
            rest = {k: v for k, v in args.items() if k != "stage"}
            return self.stages[index].on_control(self._contexts[index], op,
                                                 rest, payload)
        for index, stage in enumerate(self.stages):
            try:
                return stage.on_control(self._contexts[index], op, args,
                                        payload)
            except UnsupportedOperationError:
                continue
        raise UnsupportedOperationError(
            f"no pipeline stage implements control op {op!r}"
        )
