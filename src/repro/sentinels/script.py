"""Sentinels whose code travels *inside* the container.

The paper stores the sentinel executable itself in the active file (an
NTFS stream), so copying the file copies its behaviour — no external
installation step.  Module-reference specs lose that property when the
target package is absent on the destination machine; the
:class:`ScriptSentinel` restores it: the active part is Python source
embedded in the spec params, executed when the file is opened.

The source may define any of the handler functions::

    def on_open(ctx): ...
    def on_read(ctx, offset, size): ...
    def on_write(ctx, offset, data): ...
    def on_size(ctx): ...
    def on_truncate(ctx, size): ...
    def on_flush(ctx): ...
    def on_control(ctx, op, args, payload): ...
    def on_close(ctx): ...

plus a ``generate(ctx)`` / ``consume(ctx, data, offset)`` pair for
stream mode.  Handlers it omits keep the null-filter defaults.  A
``state`` dict is provided for cross-call persistence.

SECURITY: the script executes with the opener's privileges — exactly
the paper's §2.3 caveat ("this program can, of course have any side
effect, including malicious ones ... these effects are no different
from those initiated by any other executable started under the same
user-id").  Builtins are trimmed to discourage accidents, **not** to
contain adversaries; for untrusted containers combine with
:func:`repro.core.sandbox.sandbox_spec` and set
``allow_scripts=False`` at the call site that opens foreign files.
"""

from __future__ import annotations

from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError, SpecError

__all__ = ["ScriptSentinel", "script_spec"]

_HANDLER_NAMES = ("on_open", "on_read", "on_write", "on_size", "on_truncate",
                  "on_flush", "on_control", "on_close", "generate", "consume")

#: Builtins available to embedded scripts — enough for data wrangling,
#: no import machinery or file/process access.
_SCRIPT_BUILTINS = {
    name: __builtins__[name] if isinstance(__builtins__, dict)
    else getattr(__builtins__, name)
    for name in (
        "abs", "all", "any", "bool", "bytearray", "bytes", "chr", "dict",
        "divmod", "enumerate", "filter", "float", "format", "frozenset",
        "hash", "hex", "int", "isinstance", "iter", "len", "list", "map",
        "max", "min", "next", "oct", "ord", "pow", "range", "repr",
        "reversed", "round", "set", "slice", "sorted", "str", "sum",
        "tuple", "zip", "ValueError", "KeyError", "IndexError",
        "StopIteration", "Exception", "True", "False", "None",
    )
    if (isinstance(__builtins__, dict) and name in __builtins__)
    or hasattr(__builtins__, name)
}


def script_spec(source: str, params: dict[str, Any] | None = None):
    """Build a spec embedding *source* as the active part."""
    from repro.core.spec import SentinelSpec

    return SentinelSpec(
        target="repro.sentinels.script:ScriptSentinel",
        params={"source": source, "script_params": dict(params or {})},
    )


class ScriptSentinel(Sentinel):
    """Executes handler functions defined by embedded Python source.

    Params: ``source`` (the script text), ``script_params`` (dict made
    available to the script as the global ``params``).
    """

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        source = self.params.get("source")
        if not source:
            raise SpecError("script sentinel requires a 'source' param")
        namespace: dict[str, Any] = {
            "__builtins__": dict(_SCRIPT_BUILTINS),
            "params": dict(self.params.get("script_params") or {}),
            "state": {},
        }
        try:
            exec(compile(source, "<active-part>", "exec"), namespace)
        except SyntaxError as exc:
            raise SpecError(f"active-part script does not parse: {exc}") from exc
        except Exception as exc:
            raise SentinelError(f"active-part script failed to load: {exc}") \
                from exc
        self._handlers = {
            name: namespace[name]
            for name in _HANDLER_NAMES
            if callable(namespace.get(name))
        }
        if not self._handlers:
            raise SpecError(
                "active-part script defines no handler functions "
                f"(expected any of {', '.join(_HANDLER_NAMES)})"
            )

    def _call(self, name: str, *args):
        handler = self._handlers.get(name)
        if handler is None:
            return None, False
        try:
            return handler(*args), True
        except SentinelError:
            raise
        except Exception as exc:
            raise SentinelError(f"script handler {name} failed: {exc}") from exc

    # -- sentinel interface ---------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._call("on_open", ctx)

    def on_close(self, ctx: SentinelContext) -> None:
        self._call("on_close", ctx)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        result, handled = self._call("on_read", ctx, offset, size)
        if not handled:
            return super().on_read(ctx, offset, size)
        if not isinstance(result, (bytes, bytearray)):
            raise SentinelError(
                f"script on_read returned {type(result).__name__}, not bytes"
            )
        return bytes(result)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        result, handled = self._call("on_write", ctx, offset, data)
        if not handled:
            return super().on_write(ctx, offset, data)
        return int(result if result is not None else len(data))

    def on_size(self, ctx: SentinelContext) -> int:
        result, handled = self._call("on_size", ctx)
        if not handled:
            return super().on_size(ctx)
        return int(result)

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        _, handled = self._call("on_truncate", ctx, size)
        if not handled:
            super().on_truncate(ctx, size)

    def on_flush(self, ctx: SentinelContext) -> None:
        _, handled = self._call("on_flush", ctx)
        if not handled:
            super().on_flush(ctx)

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes) -> tuple[dict[str, Any], bytes]:
        result, handled = self._call("on_control", ctx, op, args, payload)
        if not handled:
            return super().on_control(ctx, op, args, payload)
        if not (isinstance(result, tuple) and len(result) == 2):
            raise SentinelError(
                "script on_control must return (fields dict, payload bytes)"
            )
        return result

    def generate(self, ctx: SentinelContext):
        handler = self._handlers.get("generate")
        if handler is None:
            return super().generate(ctx)
        return handler(ctx)

    def consume(self, ctx: SentinelContext, data: bytes, offset: int) -> int:
        result, handled = self._call("consume", ctx, data, offset)
        if not handled:
            return super().consume(ctx, data, offset)
        return int(result if result is not None else len(data))
