"""Aggregation sentinel (paper §3).

"The sentinel can aggregate information from various sources,
presenting it to client applications as a conventional file.  Examples
of these sources include other local or remote files, databases,
network connections, or even other processes ... The sentinel can also
merge multiple remote files into a single local file."

Sources are fetched afresh at every open, which is what makes an
aggregate active file *live*: unlike the paper's criticized
intermediary approach, re-opening the file observes changes in the
original sources.  A ``refresh`` control op re-aggregates mid-open.
"""

from __future__ import annotations

from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["AggregateSentinel"]


class AggregateSentinel(Sentinel):
    """Concatenates multiple information sources into one read-only file.

    Params: ``sources`` — a list of dicts, each one of:

    * ``{"kind": "literal", "text": ...}`` or ``{"kind": "literal", "data": base16}``
    * ``{"kind": "local", "path": ...}`` — a real filesystem file
    * ``{"kind": "fileserver", "address": ..., "path": ...}``
    * ``{"kind": "http", "address": ..., "path": ...}``
    * ``{"kind": "kv", "address": ..., "keys": [...]}`` — database rows

    plus ``separator`` (string inserted between sources, default "")
    and ``headers`` (bool: prefix each source with a ``== name ==``
    banner line, default False).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.sources = list(self.params.get("sources") or [])
        if not self.sources:
            raise SentinelError("aggregate sentinel requires a 'sources' list")
        self.separator = str(self.params.get("separator", "")).encode("utf-8")
        self.headers = bool(self.params.get("headers", False))
        self._view = ByteBuffer()

    # -- fetching ---------------------------------------------------------------------

    def _fetch_one(self, ctx: SentinelContext, source: dict[str, Any]) -> tuple[str, bytes]:
        kind = source.get("kind", "")
        if kind == "literal":
            if "text" in source:
                return "literal", str(source["text"]).encode("utf-8")
            return "literal", bytes.fromhex(source.get("data", ""))
        if kind == "local":
            path = source["path"]
            with open(path, "rb") as stream:
                return str(path), stream.read()
        if kind == "fileserver":
            connection = ctx.connect(str(source["address"]))
            response = connection.expect("stat", path=source["path"])
            size = int(response.fields["size"])
            body = connection.expect("read", path=source["path"], offset=0,
                                     size=size).payload
            return str(source["path"]), body
        if kind == "http":
            connection = ctx.connect(str(source["address"]))
            response = connection.expect("GET", path=source["path"])
            return str(source["path"]), response.payload
        if kind == "kv":
            connection = ctx.connect(str(source["address"]))
            response = connection.expect("mget", keys=list(source.get("keys") or []))
            return "kv:" + ",".join(source.get("keys") or []), response.payload
        raise SentinelError(f"unknown aggregate source kind: {kind!r}")

    def _aggregate(self, ctx: SentinelContext) -> None:
        pieces: list[bytes] = []
        for source in self.sources:
            name, body = self._fetch_one(ctx, source)
            if self.headers:
                pieces.append(f"== {name} ==\n".encode("utf-8"))
            pieces.append(body)
        self._view.setvalue(self.separator.join(pieces) if not self.headers
                            else b"".join(pieces))

    # -- sentinel interface ---------------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._aggregate(ctx)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        return self._view.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        from repro.errors import UnsupportedOperationError

        raise UnsupportedOperationError("aggregate files are read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        return self._view.size

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "refresh":
            self._aggregate(ctx)
            return {"size": self._view.size}, b""
        return super().on_control(ctx, op, args, payload)
