"""Aggregation sentinel (paper §3).

"The sentinel can aggregate information from various sources,
presenting it to client applications as a conventional file.  Examples
of these sources include other local or remote files, databases,
network connections, or even other processes ... The sentinel can also
merge multiple remote files into a single local file."

Sources are fetched afresh at every open, which is what makes an
aggregate active file *live*: unlike the paper's criticized
intermediary approach, re-opening the file observes changes in the
original sources.  A ``refresh`` control op re-aggregates mid-open.

Failed sources are attempted to completion and reported together as one
typed :class:`~repro.errors.AggregationError` naming each one — the
caller learns exactly which inputs the merged view is missing.  On a
coherence-domain strategy, concurrent opens collapse onto a single
source sweep (the domain's single-flight fill), and a ``refresh``
through one open publishes the rebuilt view to every peer.
"""

from __future__ import annotations

from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import AggregationError, SentinelError, UnsupportedOperationError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["AggregateSentinel"]


class AggregateSentinel(Sentinel):
    """Concatenates multiple information sources into one read-only file.

    Params: ``sources`` — a list of dicts, each one of:

    * ``{"kind": "literal", "text": ...}`` or ``{"kind": "literal", "data": base16}``
    * ``{"kind": "local", "path": ...}`` — a real filesystem file
    * ``{"kind": "fileserver", "address": ..., "path": ...}``
    * ``{"kind": "http", "address": ..., "path": ...}``
    * ``{"kind": "kv", "address": ..., "keys": [...]}`` — database rows

    plus ``separator`` (string inserted between sources, default "")
    and ``headers`` (bool: prefix each source with a ``== name ==``
    banner line, default False).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.sources = list(self.params.get("sources") or [])
        if not self.sources:
            raise SentinelError("aggregate sentinel requires a 'sources' list")
        self.separator = str(self.params.get("separator", "")).encode("utf-8")
        self.headers = bool(self.params.get("headers", False))
        self._view = ByteBuffer()
        self._domain = None
        self._member: int | None = None

    # -- fetching ---------------------------------------------------------------------

    def _fetch_one(self, ctx: SentinelContext, source: dict[str, Any]) -> tuple[str, bytes]:
        kind = source.get("kind", "")
        if kind == "literal":
            if "text" in source:
                return "literal", str(source["text"]).encode("utf-8")
            return "literal", bytes.fromhex(source.get("data", ""))
        if kind == "local":
            path = source["path"]
            with open(path, "rb") as stream:
                return str(path), stream.read()
        if kind == "fileserver":
            connection = ctx.connect(str(source["address"]))
            response = connection.expect("stat", path=source["path"])
            size = int(response.fields["size"])
            body = connection.expect("read", path=source["path"], offset=0,
                                     size=size).payload
            return str(source["path"]), body
        if kind == "http":
            connection = ctx.connect(str(source["address"]))
            response = connection.expect("GET", path=source["path"])
            return str(source["path"]), response.payload
        if kind == "kv":
            connection = ctx.connect(str(source["address"]))
            response = connection.expect("mget", keys=list(source.get("keys") or []))
            return "kv:" + ",".join(source.get("keys") or []), response.payload
        raise SentinelError(f"unknown aggregate source kind: {kind!r}")

    @staticmethod
    def _describe(source: dict[str, Any]) -> str:
        kind = source.get("kind", "?")
        where = source.get("path") or source.get("keys") or ""
        return f"{kind} {where}".strip()

    def _build_view(self, ctx: SentinelContext) -> bytes:
        """One full source sweep; every failed source is reported."""
        pieces: list[bytes] = []
        failures: list[tuple[str, str]] = []
        for source in self.sources:
            try:
                name, body = self._fetch_one(ctx, source)
            except Exception as exc:
                failures.append((self._describe(source),
                                 f"{type(exc).__name__}: {exc}"))
                continue
            if self.headers:
                pieces.append(f"== {name} ==\n".encode("utf-8"))
            pieces.append(body)
        if failures:
            raise AggregationError(failures=failures)
        return (self.separator.join(pieces) if not self.headers
                else b"".join(pieces))

    def _aggregate(self, ctx: SentinelContext, single_flight: bool) -> None:
        if single_flight and self._domain is not None:
            # Concurrent opens of one aggregate collapse onto a single
            # source sweep; a published refresh bumps the epoch, so a
            # post-refresh open never joins a pre-refresh sweep.
            resolver = self._domain.fill(
                ("aggregate", "view"), lambda: lambda: self._build_view(ctx))
            self._view.setvalue(resolver())
        else:
            self._view.setvalue(self._build_view(ctx))

    # -- coherence-domain callbacks ----------------------------------------------------

    def _install_view(self, offset: int, data: bytes,
                      total: "int | None", version: Any) -> None:
        """A peer re-aggregated: replace this open's merged view."""
        self._view.setvalue(bytes(data))

    # -- sentinel interface ---------------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        if ctx.coherence is not None:
            self._domain = ctx.coherence
            self._member = self._domain.register(install=self._install_view)
            self._fanout_member_id = self._member
        self._aggregate(ctx, single_flight=True)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        return self._view.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        raise UnsupportedOperationError("aggregate files are read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        return self._view.size

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "refresh":
            self._aggregate(ctx, single_flight=False)
            if self._member is not None:
                view = self._view.getvalue()
                self._domain.publish(self._member, 0, view, total=len(view))
            return {"size": self._view.size}, b""
        return super().on_control(ctx, op, args, payload)
