"""Mailbox sentinels (paper §3, aggregation + distribution).

Inbox: "an inbox file of an E-mail program can be such that reading it
causes new messages to be retrieved possibly from multiple remote POP
servers."

Outbox: "the outbox-file can be programmed to send email to a
particular recipient, every time some data is written to it.  This
concept can be extended such that the sentinel process parses the data
written to the file to extract the 'To' addresses and send the data to
each recipient."
"""

from __future__ import annotations

from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["InboxSentinel", "OutboxSentinel"]


class InboxSentinel(Sentinel):
    """Aggregates messages from multiple POP3-style accounts into one file.

    Params: ``accounts`` — list of ``{"address", "user", "password"}``
    dicts; ``delete_after_fetch`` (bool, default False) — issue DELE +
    QUIT after retrieving, like a classic POP client.

    The rendered view is mbox-flavoured: each message is prefixed with a
    ``From <account>`` separator line.
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.accounts = list(self.params.get("accounts") or [])
        if not self.accounts:
            raise SentinelError("inbox sentinel requires an 'accounts' list")
        self.delete_after_fetch = bool(self.params.get("delete_after_fetch", False))
        self._view = ByteBuffer()
        self.fetched = 0

    def _fetch(self, ctx: SentinelContext) -> None:
        pieces: list[bytes] = []
        fetched = 0
        for account in self.accounts:
            connection = ctx.connect(str(account["address"]))
            credentials = {"user": account["user"],
                           "password": account["password"]}
            listing = connection.expect("LIST", **credentials).fields["messages"]
            for entry in listing:
                index = entry["index"]
                body = connection.expect("RETR", index=index,
                                         **credentials).payload
                pieces.append(f"From {account['user']}@{account['address']}\n"
                              .encode("utf-8"))
                pieces.append(body.replace(b"\r\n", b"\n"))
                fetched += 1
                if self.delete_after_fetch:
                    connection.expect("DELE", index=index, **credentials)
            if self.delete_after_fetch:
                connection.expect("QUIT", **credentials)
        self._view.setvalue(b"".join(pieces))
        self.fetched = fetched

    # -- sentinel interface ---------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._fetch(ctx)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        return self._view.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        from repro.errors import UnsupportedOperationError

        raise UnsupportedOperationError("the inbox view is read-only")

    def on_size(self, ctx: SentinelContext) -> int:
        return self._view.size

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "fetch":
            self._fetch(ctx)
            return {"fetched": self.fetched, "size": self._view.size}, b""
        return super().on_control(ctx, op, args, payload)


class OutboxSentinel(Sentinel):
    """Sends what the application writes as e-mail on flush/close.

    Params: ``smtp`` (relay address string), ``sender`` (string),
    ``recipients`` (default list used when the written text has no
    ``To:`` header).

    Recipients are parsed from the ``To:`` header of the written text
    (comma-separated), falling back to the configured default list.
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        if "smtp" not in self.params:
            raise SentinelError("outbox sentinel requires an 'smtp' address param")
        self.sender = str(self.params.get("sender", ""))
        self.default_recipients = list(self.params.get("recipients") or [])
        self._buffer = ByteBuffer()
        self.sent_count = 0

    @staticmethod
    def _parse_recipients(raw: bytes) -> list[str]:
        for line in raw.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                break  # end of headers
            if line.lower().startswith("to:"):
                to = line.partition(":")[2]
                return [addr.strip() for addr in to.split(",") if addr.strip()]
        return []

    def _send(self, ctx: SentinelContext) -> dict[str, Any]:
        raw = self._buffer.getvalue()
        if not raw.strip():
            return {"sent": False, "reason": "outbox empty"}
        recipients = self._parse_recipients(raw) or self.default_recipients
        if not recipients:
            raise SentinelError("no recipients: message has no To: header and "
                                "the outbox has no default recipients")
        connection = ctx.connect(str(self.params["smtp"]))
        response = connection.expect("SEND", raw, sender=self.sender,
                                     recipients=recipients)
        self._buffer.truncate(0)
        self.sent_count += 1
        return {"sent": True, "statuses": response.fields["statuses"]}

    # -- sentinel interface ---------------------------------------------------------

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        return self._buffer.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        return self._buffer.write_at(offset, data)

    def on_size(self, ctx: SentinelContext) -> int:
        return self._buffer.size

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        self._buffer.truncate(size)

    def on_flush(self, ctx: SentinelContext) -> None:
        self._send(ctx)

    def on_close(self, ctx: SentinelContext) -> None:
        self._send(ctx)

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "send":
            return self._send(ctx), b""
        if op == "stats":
            return {"sent_count": self.sent_count,
                    "pending_bytes": self._buffer.size}, b""
        return super().on_control(ctx, op, args, payload)
