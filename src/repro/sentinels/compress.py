"""Per-file compression sentinel (paper §3, "Input and output filtering").

"A simple example of such filtering is a compressed file ... the
sentinel process compresses and decompresses the file data as it is
written and read.  An advantage of this approach over compressed file
systems is that file compression can be handled on a per-file basis
with different compression algorithms ... both compression and
decompression can be demand-driven and performed incrementally."

The data part stores a chunked zlib format; the application sees plain
bytes.  Chunking is what makes decompression *demand-driven*: a read
touches only the chunks it overlaps, and only dirty chunks are
recompressed at flush.

Data-part layout::

    b"AFZ1" | u32 chunk_size | u32 nchunks | u64 raw_size
    | nchunks * u32 compressed_length | concatenated zlib frames
"""

from __future__ import annotations

import struct
import zlib

from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import SentinelError

__all__ = ["CompressionSentinel"]

_MAGIC = b"AFZ1"
_HEADER = struct.Struct(">4sIIQ")
_LEN = struct.Struct(">I")


class CompressionSentinel(Sentinel):
    """Transparent chunked-zlib compression filter.

    Params: ``chunk_size`` (raw bytes per chunk, default 16384),
    ``level`` (zlib level, default 6).
    """

    def __init__(self, params=None) -> None:
        super().__init__(params)
        self.chunk_size = int(self.params.get("chunk_size", 16384))
        self.level = int(self.params.get("level", 6))
        if self.chunk_size <= 0:
            raise SentinelError(f"chunk_size must be positive: {self.chunk_size}")
        self._frames: list[bytes] = []       # compressed chunks as stored
        self._plain: dict[int, bytearray] = {}  # decompressed chunk cache
        self._dirty: set[int] = set()
        self._raw_size = 0

    # -- container format -------------------------------------------------------

    def _load(self, ctx: SentinelContext) -> None:
        blob = ctx.data.read_at(0, ctx.data.size)
        self._frames = []
        self._plain = {}
        self._dirty = set()
        if not blob:
            self._raw_size = 0
            return
        if len(blob) < _HEADER.size:
            raise SentinelError("compressed data part is truncated")
        magic, chunk_size, nchunks, raw_size = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise SentinelError(f"bad compressed-file magic: {magic!r}")
        self.chunk_size = chunk_size
        self._raw_size = raw_size
        cursor = _HEADER.size
        lengths = []
        for _ in range(nchunks):
            (length,) = _LEN.unpack_from(blob, cursor)
            lengths.append(length)
            cursor += _LEN.size
        for length in lengths:
            frame = blob[cursor:cursor + length]
            if len(frame) != length:
                raise SentinelError("compressed chunk table is inconsistent")
            self._frames.append(frame)
            cursor += length

    def _store(self, ctx: SentinelContext) -> None:
        for index in sorted(self._dirty):
            raw = bytes(self._plain.get(index, b""))
            frame = zlib.compress(raw, self.level)
            while index >= len(self._frames):
                self._frames.append(zlib.compress(b"", self.level))
            self._frames[index] = frame
        self._dirty.clear()
        nchunks = self._chunk_count()
        del self._frames[nchunks:]
        header = _HEADER.pack(_MAGIC, self.chunk_size, len(self._frames),
                              self._raw_size)
        table = b"".join(_LEN.pack(len(frame)) for frame in self._frames)
        ctx.data.truncate(0)
        ctx.data.write_at(0, header + table + b"".join(self._frames))
        ctx.data.flush()

    def _chunk_count(self) -> int:
        if self._raw_size == 0:
            return 0
        return (self._raw_size + self.chunk_size - 1) // self.chunk_size

    # -- chunk access -------------------------------------------------------------

    def _chunk(self, index: int) -> bytearray:
        cached = self._plain.get(index)
        if cached is not None:
            return cached
        if index < len(self._frames):
            raw = bytearray(zlib.decompress(self._frames[index]))
        else:
            raw = bytearray()
        self._plain[index] = raw
        return raw

    # -- sentinel interface ----------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self._load(ctx)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        size = max(0, min(size, self._raw_size - offset))
        if size <= 0:
            return b""
        pieces = []
        remaining = size
        position = offset
        while remaining:
            index, within = divmod(position, self.chunk_size)
            chunk = self._chunk(index)
            take = min(remaining, self.chunk_size - within)
            piece = bytes(chunk[within:within + take])
            piece += b"\x00" * (take - len(piece))  # sparse chunk tail
            pieces.append(piece)
            remaining -= take
            position += take
        return b"".join(pieces)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        position = offset
        cursor = 0
        while cursor < len(data):
            index, within = divmod(position, self.chunk_size)
            chunk = self._chunk(index)
            take = min(len(data) - cursor, self.chunk_size - within)
            if within > len(chunk):
                chunk.extend(b"\x00" * (within - len(chunk)))
            chunk[within:within + take] = data[cursor:cursor + take]
            self._dirty.add(index)
            cursor += take
            position += take
        self._raw_size = max(self._raw_size, offset + len(data))
        return len(data)

    def on_size(self, ctx: SentinelContext) -> int:
        return self._raw_size

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        if size < self._raw_size:
            boundary, within = divmod(size, self.chunk_size)
            if within:
                chunk = self._chunk(boundary)
                del chunk[within:]
                self._dirty.add(boundary)
                drop_from = boundary + 1
            else:
                drop_from = boundary
            for index in list(self._plain):
                if index >= drop_from:
                    del self._plain[index]
                    self._dirty.discard(index)
        self._raw_size = size
        self._dirty.add(size // self.chunk_size if size else 0)

    def on_flush(self, ctx: SentinelContext) -> None:
        self._store(ctx)

    def on_close(self, ctx: SentinelContext) -> None:
        self._store(ctx)

    def on_control(self, ctx: SentinelContext, op, args, payload):
        if op == "ratio":
            stored = sum(len(frame) for frame in self._frames)
            return {"raw_size": self._raw_size, "stored_size": stored}, b""
        return super().on_control(ctx, op, args, payload)
