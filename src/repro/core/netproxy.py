"""Bridging the simulated network into sentinel child processes.

The process strategies run the sentinel in a real child interpreter, but
the simulated network (and every service bound to it) lives in the
application process.  This module keeps the paper's picture — the
sentinel "can directly access both the remote information source(s) and
the local file" — intact across that boundary by proxying network calls
over a dedicated pipe pair:

* the application side runs a :class:`NetworkBridgeServer` thread that
  executes proxied calls against the real :class:`~repro.net.Network`;
* the child side sees a :class:`ProxyNetwork`, which exposes the same
  ``connect(address) -> connection`` surface sentinels already use, so a
  sentinel cannot tell which side of the boundary it runs on.

This mirrors reality: the "remote" sources genuinely are in a different
process from the sentinel.
"""

from __future__ import annotations

import threading
from typing import BinaryIO

from repro.core.control import decode_message, encode_message
from repro.errors import (
    AddressError,
    ChannelClosedError,
    NetworkError,
)
from repro.net.address import Address
from repro.net.message import Request, Response
from repro.util.framing import read_frame, write_frame

__all__ = ["NetworkBridgeServer", "ProxyNetwork", "ProxyConnection"]

_TRANSPORT_ERRORS: dict[str, type[Exception]] = {
    "AddressError": AddressError,
    "NetworkError": NetworkError,
}


class NetworkBridgeServer:
    """Application-side bridge endpoint: serves proxied network calls."""

    def __init__(self, network, rfile: BinaryIO, wfile: BinaryIO) -> None:
        self.network = network
        self._rfile = rfile
        self._wfile = wfile
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._serve,
                                        name="af-net-bridge", daemon=True)
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def _serve(self) -> None:
        while True:
            try:
                fields, payload = decode_message(read_frame(self._rfile))
            except (ChannelClosedError, ValueError, OSError):
                return  # child went away; bridge ends with it
            try:
                write_frame(self._wfile, self._handle(fields, payload))
            except (ValueError, OSError):
                return

    def _handle(self, fields: dict, payload: bytes) -> bytes:
        address = Address(host=fields.get("host", ""),
                          port=int(fields.get("port", 0)),
                          scheme=fields.get("scheme", ""))
        request = Request(op=fields.get("op", ""),
                          fields=fields.get("fields") or {},
                          payload=payload)
        try:
            response = self.network.call(address, request)
        except Exception as exc:
            return encode_message({
                "transport_ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            })
        return encode_message({
            "transport_ok": True,
            "resp_ok": response.ok,
            "resp_error": response.error,
            "resp_fields": response.fields,
        }, response.payload)


class ProxyConnection:
    """Child-side stand-in for :class:`repro.net.network.Connection`."""

    def __init__(self, proxy: "ProxyNetwork", address: Address) -> None:
        self._proxy = proxy
        self.address = address
        self._closed = False

    def call(self, op: str, payload: bytes = b"", **fields) -> Response:
        if self._closed:
            raise NetworkError("connection is closed")
        return self._proxy.call(self.address,
                                Request(op=op, fields=dict(fields),
                                        payload=payload))

    def expect(self, op: str, payload: bytes = b"", **fields) -> Response:
        response = self.call(op, payload, **fields)
        if not response.ok:
            raise NetworkError(f"{self.address} rejected {op!r}: {response.error}")
        return response

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ProxyConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProxyNetwork:
    """Child-side bridge endpoint with the Network ``connect``/``call`` surface."""

    def __init__(self, rfile: BinaryIO, wfile: BinaryIO) -> None:
        self._rfile = rfile
        self._wfile = wfile
        self._lock = threading.Lock()

    def connect(self, address: Address) -> ProxyConnection:
        return ProxyConnection(self, address)

    def call(self, address: Address, request: Request) -> Response:
        message = encode_message({
            "host": address.host,
            "port": address.port,
            "scheme": address.scheme,
            "op": request.op,
            "fields": request.fields,
        }, request.payload)
        with self._lock:  # one in-flight exchange at a time over the pipe
            write_frame(self._wfile, message)
            fields, payload = decode_message(read_frame(self._rfile))
        if not fields.get("transport_ok", False):
            exc_class = _TRANSPORT_ERRORS.get(fields.get("error_type", ""),
                                              NetworkError)
            raise exc_class(fields.get("error", "bridge transport failure"))
        return Response(ok=fields.get("resp_ok", False),
                        fields=fields.get("resp_fields") or {},
                        payload=payload,
                        error=fields.get("resp_error", ""))
