"""Bridging the simulated network into sentinel child processes.

The process strategies run the sentinel in a real child interpreter, but
the simulated network (and every service bound to it) lives in the
application process.  This module keeps the paper's picture — the
sentinel "can directly access both the remote information source(s) and
the local file" — intact across that boundary by proxying network calls
over the *same* multiplexed channel that carries file operations:

* the application side attaches a :class:`NetworkBridgeServer` as the
  channel-0 handler of the sentinel-host connection, executing proxied
  calls against the real :class:`~repro.net.Network`;
* the child side sees a :class:`ProxyNetwork`, which exposes the same
  ``connect(address) -> connection`` surface sentinels already use, so a
  sentinel cannot tell which side of the boundary it runs on.

Historically the bridge burned a dedicated fd pair per open and
serialized calls behind a lock; now bridge traffic is ordinary
channel-0 request/reply traffic — tagged, pipelined, and counted like
everything else on the connection.

This mirrors reality: the "remote" sources genuinely are in a different
process from the sentinel.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core import policy
from repro.core.channel import CONTROL_CHAN, Channel
from repro.core.policy import Deadline
from repro.core.telemetry import TELEMETRY
from repro.errors import (
    ChannelClosedError,
    DeadlineExceededError,
    NetworkError,
    wire_error_registry,
)
from repro.net.address import Address
from repro.net.message import Request, Response

__all__ = ["NetworkBridgeServer", "ProxyNetwork", "ProxyConnection",
           "BRIDGE_CHAN"]

#: Bridge traffic shares the connection-control channel.
BRIDGE_CHAN = CONTROL_CHAN

#: Exception classes a bridge transport failure may round-trip as.
_TRANSPORT_ERRORS: dict[str, type[Exception]] = {
    name: cls for name, cls in wire_error_registry().items()
    if issubclass(cls, (NetworkError, DeadlineExceededError))
}


class NetworkBridgeServer:
    """Application-side bridge endpoint: serves proxied network calls."""

    def __init__(self, network) -> None:
        self.network = network

    def handle(self, fields: dict[str, Any],
               payload: bytes) -> tuple[dict[str, Any], bytes]:
        """Serve one proxied network call (a channel-0 request handler)."""
        address = Address(host=fields.get("host", ""),
                          port=int(fields.get("port", 0)),
                          scheme=fields.get("scheme", ""))
        request = Request(op=fields.get("op", ""),
                          fields=fields.get("fields") or {},
                          payload=payload)
        # The caller's remaining deadline budget crossed the bridge as a
        # relative millisecond count; re-anchor it on this side's clock.
        budget_ms = fields.get("dl")
        deadline = Deadline.from_ms(budget_ms) if budget_ms is not None \
            else None
        if TELEMETRY.tracing and TELEMETRY.current() is not None:
            # Name the child→application hop in the span tree: the
            # origin exchange below nests under this bridge leg.
            with TELEMETRY.span(f"bridge.{request.op}",
                                attrs={"address": str(address)}):
                response = self.network.call(address, request,
                                             deadline=deadline)
        else:
            response = self.network.call(address, request,
                                         deadline=deadline)
        return ({
            "ok": True,
            "resp_ok": response.ok,
            "resp_error": response.error,
            "resp_fields": response.fields,
        }, response.payload)


class ProxyConnection:
    """Child-side stand-in for :class:`repro.net.network.Connection`."""

    def __init__(self, proxy: "ProxyNetwork", address: Address) -> None:
        self._proxy = proxy
        self.address = address
        self._closed = False

    def call(self, op: str, payload: bytes = b"", *,
             deadline: "Deadline | float | None" = None,
             **fields) -> Response:
        if self._closed:
            raise NetworkError("connection is closed")
        return self._proxy.call(self.address,
                                Request(op=op, fields=dict(fields),
                                        payload=payload),
                                deadline=deadline)

    def call_async(self, op: str, payload: bytes = b"",
                   **fields) -> Callable[[], Response]:
        """Start one proxied call; returns a resolver for its response.

        The request is on the wire (pipelined on channel 0) when this
        returns; calling the resolver blocks for the reply.  All
        errors — including issue-time transport failures — surface at
        resolution, so callers can issue a batch before touching any
        result.
        """
        if self._closed:
            raise NetworkError("connection is closed")
        return self._proxy.call_async(self.address,
                                      Request(op=op, fields=dict(fields),
                                              payload=payload))

    def expect(self, op: str, payload: bytes = b"", **fields) -> Response:
        response = self.call(op, payload, **fields)
        if not response.ok:
            raise NetworkError(f"{self.address} rejected {op!r}: {response.error}")
        return response

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ProxyConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProxyNetwork:
    """Child-side bridge endpoint with the Network ``connect``/``call`` surface.

    Calls ride channel 0 of the host connection as ordinary requests, so
    concurrent sentinels (or one sentinel with concurrent needs) can
    pipeline network calls rather than queueing behind a pipe lock.
    """

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def connect(self, address: Address) -> ProxyConnection:
        return ProxyConnection(self, address)

    def call(self, address: Address, request: Request, *,
             deadline: "Deadline | float | None" = None) -> Response:
        return self.call_async(address, request, deadline=deadline)()

    def call_async(self, address: Address, request: Request, *,
                   deadline: "Deadline | float | None" = None
                   ) -> Callable[[], Response]:
        """Put one bridge call on the wire; resolve it later.

        This is what lets the cache issue a prefetch window and keep
        serving the application: the request is in flight on channel 0
        while the resolver is still unclaimed.  Issue-time failures are
        captured and re-raised at resolution.  The remaining *deadline*
        budget travels with the request, so the application-side bridge
        endpoint inherits it instead of inventing its own timeout.
        """
        deadline = Deadline.coerce(deadline, policy.BRIDGE_TIMEOUT)
        fields = {
            "cmd": "net",
            "host": address.host,
            "port": address.port,
            "scheme": address.scheme,
            "op": request.op,
            "fields": request.fields,
        }
        try:
            pending = self._channel.request_async(BRIDGE_CHAN, fields,
                                                  request.payload,
                                                  deadline=deadline)
        except ChannelClosedError as exc:
            error = NetworkError(f"network bridge is gone: {exc}")

            def failed() -> Response:
                raise error
            return failed

        def resolve() -> Response:
            try:
                reply, payload = pending.wait(deadline)
            except ChannelClosedError as exc:
                raise NetworkError(f"network bridge is gone: {exc}") from exc
            if not reply.get("ok", False):
                exc_class = _TRANSPORT_ERRORS.get(reply.get("error_type", ""),
                                                  NetworkError)
                raise exc_class(reply.get("error", "bridge transport failure"))
            return Response(ok=reply.get("resp_ok", False),
                            fields=reply.get("resp_fields") or {},
                            payload=payload,
                            error=reply.get("resp_error", ""))
        return resolve
