"""Cross-open coordination primitives.

The paper notes that when several user processes open the same active
file, "multiple sentinels are created, which synchronize amongst
themselves in a program-dependent fashion using semaphores, shared
memory or other forms of interprocess communication".  This module
provides those forms for the native runtime:

* :class:`FileLock` — an advisory ``flock`` on a stable sidecar path,
  usable across real processes (the process strategies);
* :class:`SharedState` — a process-global, lock-protected dictionary
  keyed by container path, usable by sentinels running in threads of the
  same process (the thread/inproc strategies).
"""

from __future__ import annotations

import fcntl
import os
import threading
from pathlib import Path
from typing import Any

__all__ = ["FileLock", "SharedState", "shared_state_for"]


class FileLock:
    """An advisory, inter-process exclusive lock.

    The lock lives on a ``<path>.lock`` sidecar rather than the target
    file itself because container rewrites use ``os.replace``, which
    would silently change the locked inode under the holders.
    """

    def __init__(self, target: str | os.PathLike) -> None:
        self.lock_path = Path(str(target) + ".lock")
        self._fd: int | None = None
        # flock is per-open-file; serialize within the process too.
        self._thread_lock = threading.RLock()
        # flock has no recursion counter of its own: only the outermost
        # acquire/release may touch it, or a nested release would drop
        # the lock out from under the outer holder.
        self._depth = 0

    def acquire(self) -> None:
        self._thread_lock.acquire()
        if self._depth == 0:
            if self._fd is None:
                self._fd = os.open(self.lock_path,
                                   os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        self._depth += 1

    def release(self) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
        self._thread_lock.release()

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class SharedState:
    """A dictionary shared by all sentinels opened on one active file."""

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self._values: dict[str, Any] = {}
        self.open_count = 0

    def get(self, key: str, default: Any = None) -> Any:
        with self.lock:
            return self._values.get(key, default)

    def set(self, key: str, value: Any) -> None:
        with self.lock:
            self._values[key] = value

    def setdefault(self, key: str, default: Any) -> Any:
        with self.lock:
            return self._values.setdefault(key, default)

    def update_with(self, key: str, fn, default: Any = None) -> Any:
        """Atomically ``values[key] = fn(values.get(key, default))``."""
        with self.lock:
            value = fn(self._values.get(key, default))
            self._values[key] = value
            return value


_registry_lock = threading.Lock()
_registry: dict[str, SharedState] = {}


def shared_state_for(path: str | os.PathLike) -> SharedState:
    """Return the per-container shared state (process-global registry)."""
    key = str(Path(path).resolve())
    with _registry_lock:
        state = _registry.get(key)
        if state is None:
            state = SharedState()
            _registry[key] = state
        return state
