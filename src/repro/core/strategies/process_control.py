"""The process-plus-control strategy (paper §4.2).

"This approach solves the problem of handshaking between the user and
sentinel processes by adding a control channel in addition to the two
pipes ... all API requests from the application are first transmitted to
the sentinel process via the control channel and the response of the
sentinel process is read from the read pipe.  So when the application
process wants to read 50 bytes, a 'read 50' command is sent to the
sentinel, and then 50 bytes are read from the read pipe.  When the
application wants to write 30 bytes, a 'write 30' command is sent on the
control channel and then 30 bytes are written to the write pipe."

Every operation therefore costs a command frame on the control pipe, a
payload transfer on a data pipe, and a response frame back — two
protection-domain crossings per call, which is exactly the overhead the
evaluation section attributes to this strategy.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.container import Container
from repro.core.control import decode_message, encode_message, raise_for_response
from repro.core.runner import RunnerHandle, launch_runner
from repro.core.strategies.base import Session
from repro.errors import ChannelClosedError, SentinelCrashError
from repro.util.framing import read_frame, write_frame

__all__ = ["ProcessControlSession", "open_session"]


class ProcessControlSession(Session):
    """Full-API session to a sentinel child over control + data pipes."""

    strategy = "process-control"

    def __init__(self, handle: RunnerHandle) -> None:
        self._handle = handle
        self._closed = False
        self._op_lock = threading.Lock()

    def _request(self, fields: dict[str, Any],
                 raw_payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        """One command/response round trip."""
        if raw_payload:
            fields = {**fields, "count": len(raw_payload)}
        try:
            with self._op_lock:
                write_frame(self._handle.control, encode_message(fields))
                if raw_payload:
                    self._handle.stdin.write(raw_payload)
                response_fields, payload = decode_message(
                    read_frame(self._handle.stdout)
                )
        except (ChannelClosedError, BrokenPipeError, ValueError, OSError) as exc:
            raise SentinelCrashError(
                f"sentinel process died mid-operation: "
                f"{self._handle.stderr_text() or exc}"
            ) from exc
        raise_for_response(response_fields)
        return response_fields, payload

    # -- data plane ---------------------------------------------------------------

    #: Reads larger than this are split into several commands: response
    #: payloads travel in one frame each, and the frame codec caps
    #: bodies at 16 MiB.
    READ_CHUNK = 4 * 1024 * 1024

    def read_at(self, offset: int, size: int) -> bytes:
        pieces: list[bytes] = []
        remaining = size
        position = offset
        while remaining > 0:
            step = min(remaining, self.READ_CHUNK)
            _, payload = self._request({"cmd": "read", "offset": position,
                                        "size": step})
            pieces.append(payload)
            position += len(payload)
            remaining -= step
            if len(payload) < step:
                break  # sentinel reported EOF
        return b"".join(pieces)

    def write_at(self, offset: int, data: bytes) -> int:
        fields, _ = self._request({"cmd": "write", "offset": offset}, data)
        return int(fields["written"])

    def size(self) -> int:
        fields, _ = self._request({"cmd": "size"})
        return int(fields["size"])

    def truncate(self, size: int) -> None:
        self._request({"cmd": "truncate", "size": size})

    def flush(self) -> None:
        self._request({"cmd": "flush"})

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        fields, out_payload = self._request(
            {"cmd": "control", "op": op, "args": args or {}}, payload
        )
        fields.pop("ok", None)
        return fields, out_payload

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._request({"cmd": "close"})
        except SentinelCrashError:
            pass  # already gone; fall through to reaping
        for stream in (self._handle.control, self._handle.stdin,
                       self._handle.stdout):
            try:
                stream.close()
            except (BrokenPipeError, OSError):
                pass
        try:
            self._handle.proc.wait(timeout=10)
        except Exception:
            self._handle.proc.kill()
            self._handle.proc.wait()
        if self._handle.bridge is not None:
            self._handle.bridge.join(timeout=1.0)
        returncode = self._handle.proc.returncode
        if returncode not in (0, None):
            raise SentinelCrashError(
                f"sentinel process exited with status {returncode}: "
                f"{self._handle.stderr_text()}"
            )


def open_session(container: Container, network=None) -> ProcessControlSession:
    """Open *container* with the process-plus-control strategy."""
    handle = launch_runner(str(container.path), mode="control", network=network)
    return ProcessControlSession(handle)
