"""The process-plus-control strategy (paper §4.2).

"This approach solves the problem of handshaking between the user and
sentinel processes by adding a control channel in addition to the two
pipes ... all API requests from the application are first transmitted to
the sentinel process via the control channel and the response of the
sentinel process is read from the read pipe."

Every operation still costs a command message to the sentinel process
and a response message back — the two protection-domain crossings per
call that the evaluation section attributes to this strategy.  The
transport, however, is now the pooled multiplexed host connection
(:mod:`repro.core.runner`): each open is one logical channel on the
shared framed link, so many opens of the same container share one child
interpreter and can keep multiple operations in flight concurrently.
"""

from __future__ import annotations

from typing import Any

from repro.core.container import Container
from repro.core.runner import HOST_POOL
from repro.core.strategies.common import ChannelSession
from repro.core.telemetry import TELEMETRY

__all__ = ["ProcessControlSession", "open_session"]


class ProcessControlSession(ChannelSession):
    """Full-API session to a sentinel host over the multiplexed channel."""

    strategy = "process-control"

    #: Bulk command bodies may ride the host's shared-memory segment.
    #: All four are absolute-offset and idempotent, so a rejected slot
    #: exchange retries inline without observable difference.
    SHM_CMDS = frozenset({"read", "write", "readv", "writev"})

    #: Transfers larger than this are split into several commands:
    #: payloads travel one frame each, and the frame codec caps bodies
    #: at 16 MiB.
    READ_CHUNK = 4 * 1024 * 1024
    WRITE_CHUNK = 4 * 1024 * 1024

    # -- data plane ---------------------------------------------------------------

    def read_at(self, offset: int, size: int) -> bytes:
        pieces: list[bytes] = []
        remaining = size
        position = offset
        while remaining > 0:
            step = min(remaining, self.READ_CHUNK)
            _, payload = self._op({"cmd": "read", "offset": position,
                                   "size": step})
            pieces.append(payload)
            position += len(payload)
            remaining -= step
            if len(payload) < step:
                break  # sentinel reported EOF
        return b"".join(pieces)

    def read_at_into(self, offset: int, buffer) -> int:
        """Read straight into *buffer*: with the shm plane armed the
        sentinel fills the leased slot and the bytes make exactly one
        validated copy into the caller's memory."""
        view = memoryview(buffer)
        filled = 0
        while filled < len(view):
            step = min(len(view) - filled, self.READ_CHUNK)
            reply, _ = self._op({"cmd": "read", "offset": offset + filled,
                                 "size": step},
                                into=view[filled:filled + step])
            count = int(reply.get("sl") or 0)
            filled += count
            if count < step:
                break  # sentinel reported EOF
        return filled

    def write_at(self, offset: int, data: bytes) -> int:
        if len(data) <= self.WRITE_CHUNK:
            fields, _ = self._op({"cmd": "write", "offset": offset}, data)
            return int(fields["written"])
        view = memoryview(data)
        total = 0
        while total < len(data):
            chunk = view[total:total + self.WRITE_CHUNK]
            fields, _ = self._op({"cmd": "write", "offset": offset + total},
                                 chunk)
            written = int(fields["written"])
            total += written
            if written < len(chunk):
                break  # sentinel accepted a partial write
        return total

    def size(self) -> int:
        fields, _ = self._op({"cmd": "size"})
        return int(fields["size"])

    def truncate(self, size: int) -> None:
        self._op({"cmd": "truncate", "size": size})

    def flush(self) -> None:
        self._op({"cmd": "flush"})

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        fields, out_payload = self._op(
            {"cmd": "control", "op": op, "args": args or {}}, payload
        )
        fields.pop("ok", None)
        return fields, out_payload


def open_session(container: Container, network=None, *,
                 pooled: bool = True) -> ProcessControlSession:
    """Open *container* with the process-plus-control strategy.

    ``pooled=False`` spawns a dedicated host for this single open (the
    legacy one-process-per-open arrangement), for comparison benchmarks.
    """
    lease = HOST_POOL.lease(str(container.path), strategy="process-control",
                            network=network, exclusive=not pooled)
    lease.supervised = bool(container.meta.get("supervise", True))
    TELEMETRY.metrics.counter("sessions.opened.process-control",
                              scope=str(container.path)).inc()
    return ProcessControlSession(lease)
