"""The four active-file implementation strategies (paper §4).

Each strategy module exposes ``open_session(container, network, path)``
returning a :class:`~repro.core.strategies.base.Session`.  The registry
here maps user-facing names (including the paper's DLL terminology) to
modules.
"""

from __future__ import annotations

from repro.errors import StrategyError

__all__ = ["STRATEGIES", "resolve_strategy", "Session"]

from repro.core.strategies.base import Session

#: Canonical strategy names -> module path.  Aliases follow the paper's
#: naming ("DLL-with-thread", "DLL-only").
_CANONICAL = {
    "process": "repro.core.strategies.process",
    "process-control": "repro.core.strategies.process_control",
    "thread": "repro.core.strategies.thread",
    "inproc": "repro.core.strategies.inproc",
}

_ALIASES = {
    "process-plus-control": "process-control",
    "dll-with-thread": "thread",
    "dll-thread": "thread",
    "dll-only": "inproc",
    "dll": "inproc",
}

STRATEGIES = tuple(_CANONICAL)


def resolve_strategy(name: str):
    """Return (canonical name, module) for a strategy name or alias."""
    import importlib

    canonical = _ALIASES.get(name.lower(), name.lower())
    module_path = _CANONICAL.get(canonical)
    if module_path is None:
        known = ", ".join(sorted(set(_CANONICAL) | set(_ALIASES)))
        raise StrategyError(f"unknown strategy {name!r}; known: {known}")
    return canonical, importlib.import_module(module_path)
