"""The DLL-with-thread strategy (paper §4.3, Appendix A.3).

The sentinel is "no longer a process running separate from the
application, but just a thread in the application": opening the active
file starts a sentinel thread running ``SentinelThrdMain``, and the
application exchanges control messages and data with it through shared
memory guarded by events — "There is no inter-process context switching
needed ... File data is not copied from user space to kernel space and
then to user space (as is the case with pipes), instead using only one
user-level copy."

:class:`SharedChannel` reproduces the six library routines of Appendix
A.3 by name: ``AF_SendControl`` / ``AF_GetControl``,
``AF_SendDataToSentinel`` / ``AF_GetDataFromAppl``, and
``AF_SendDataToAppl`` / ``AF_GetDataFromSentinel``.  Python objects in
one address space stand in for NT shared-memory sections; the mailbox
conditions stand in for NT events.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.dispatch import SentinelDispatcher
from repro.core.strategies.base import Session
from repro.core.strategies.common import make_context
from repro.errors import SentinelCrashError
from repro.util.naming import monotonic_name

__all__ = ["SharedChannel", "ThreadSession", "open_session", "sentinel_thrd_main"]


class _Mailbox:
    """A one-slot rendezvous: one party deposits, the other collects."""

    def __init__(self, channel: "SharedChannel") -> None:
        self._channel = channel
        self._condition = threading.Condition()
        self._value: Any = None
        self._full = False

    def put(self, value: Any, timeout: float | None = None) -> None:
        with self._condition:
            while self._full and not self._channel.dead:
                if not self._condition.wait(timeout) and timeout is not None:
                    raise SentinelCrashError("sentinel thread unresponsive")
            self._channel.check_alive()
            self._value = value
            self._full = True
            self._condition.notify_all()

    def take(self, timeout: float | None = None) -> Any:
        with self._condition:
            while not self._full and not self._channel.dead:
                if not self._condition.wait(timeout) and timeout is not None:
                    raise SentinelCrashError("sentinel thread unresponsive")
            self._channel.check_alive()
            value, self._value = self._value, None
            self._full = False
            self._condition.notify_all()
            return value

    def poison(self) -> None:
        with self._condition:
            self._condition.notify_all()


class SharedChannel:
    """Shared-memory + events transport between application and sentinel thread."""

    def __init__(self) -> None:
        self.dead = False
        self._death_reason = ""
        self._control = _Mailbox(self)          # app -> sentinel: command fields
        self._data_to_sentinel = _Mailbox(self)  # app -> sentinel: write payloads
        self._data_to_appl = _Mailbox(self)      # sentinel -> app: (fields, payload)

    def check_alive(self) -> None:
        if self.dead:
            raise SentinelCrashError(
                self._death_reason or "sentinel thread terminated"
            )

    def kill(self, reason: str = "") -> None:
        """Mark the channel dead and wake every waiter."""
        self.dead = True
        self._death_reason = reason
        for mailbox in (self._control, self._data_to_sentinel, self._data_to_appl):
            mailbox.poison()

    # -- the six Appendix A.3 routines -------------------------------------------

    def AF_SendControl(self, fields: dict[str, Any]) -> None:
        """Application -> sentinel: deposit one control message."""
        self._control.put(fields)

    def AF_GetControl(self) -> dict[str, Any]:
        """Sentinel side: block for the next control message."""
        return self._control.take()

    def AF_SendDataToSentinel(self, data: bytes) -> None:
        """Application -> sentinel: deposit one write payload."""
        self._data_to_sentinel.put(data)

    def AF_GetDataFromAppl(self) -> bytes:
        """Sentinel side: block for the pending write payload."""
        return self._data_to_sentinel.take()

    def AF_SendDataToAppl(self, fields: dict[str, Any], payload: bytes) -> None:
        """Sentinel -> application: deposit one response."""
        self._data_to_appl.put((fields, payload))

    def AF_GetDataFromSentinel(self, timeout: float | None = None
                               ) -> tuple[dict[str, Any], bytes]:
        """Application side: block for the sentinel's response."""
        return self._data_to_appl.take(timeout)


def sentinel_thrd_main(channel: SharedChannel,
                       dispatcher: SentinelDispatcher) -> None:
    """The paper's ``SentinelThrdMain``: the sentinel thread's dispatch loop."""
    try:
        while True:
            fields = channel.AF_GetControl()
            payload = b""
            if fields.get("cmd") == "write":
                payload = channel.AF_GetDataFromAppl()
            elif "_payload" in fields:
                # control payloads ride inside the message itself
                payload = fields.pop("_payload")
            out_fields, out_payload = dispatcher.execute(fields, payload)
            channel.AF_SendDataToAppl(out_fields, out_payload)
            if fields.get("cmd") == "close":
                return
    except SentinelCrashError:
        return  # application-side close killed the channel under us
    except BaseException as exc:  # defensive: never leave the app blocked
        channel.kill(f"sentinel thread crashed: {exc!r}")
        raise
    finally:
        if not channel.dead:
            channel.kill("sentinel thread exited")


class ThreadSession(Session):
    """Application-side session talking to the injected sentinel thread."""

    strategy = "thread"

    def __init__(self, channel: SharedChannel, thread: threading.Thread) -> None:
        self._channel = channel
        self._thread = thread
        self._closed = False
        self._op_lock = threading.Lock()  # one command/response pair at a time

    def _roundtrip(self, fields: dict[str, Any],
                   payload: bytes | None = None) -> tuple[dict[str, Any], bytes]:
        with self._op_lock:
            self._channel.AF_SendControl(fields)
            if payload is not None:
                self._channel.AF_SendDataToSentinel(payload)
            out_fields, out_payload = self._channel.AF_GetDataFromSentinel()
        raise_for_response(out_fields)
        return out_fields, out_payload

    # -- data plane ---------------------------------------------------------------

    def read_at(self, offset: int, size: int) -> bytes:
        _, payload = self._roundtrip({"cmd": "read", "offset": offset,
                                      "size": size})
        return payload

    def write_at(self, offset: int, data: bytes) -> int:
        fields, _ = self._roundtrip({"cmd": "write", "offset": offset}, data)
        return int(fields["written"])

    def size(self) -> int:
        fields, _ = self._roundtrip({"cmd": "size"})
        return int(fields["size"])

    def truncate(self, size: int) -> None:
        self._roundtrip({"cmd": "truncate", "size": size})

    def flush(self) -> None:
        self._roundtrip({"cmd": "flush"})

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        # control payloads ride in the command itself (no write handshake)
        with self._op_lock:
            self._channel.AF_SendControl({"cmd": "control", "op": op,
                                          "args": args or {},
                                          "_payload": payload})
            out_fields, out_payload = self._channel.AF_GetDataFromSentinel()
        raise_for_response(out_fields)
        return out_fields, out_payload

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._thread.is_alive():
                with self._op_lock:
                    self._channel.AF_SendControl({"cmd": "close"})
                    # bounded wait: never hang the application (e.g. at
                    # interpreter shutdown when daemon threads are frozen)
                    self._channel.AF_GetDataFromSentinel(timeout=5.0)
        except SentinelCrashError:
            pass  # thread already gone; nothing left to close
        self._channel.kill("session closed")
        self._thread.join(timeout=5.0)


def open_session(container: Container, network=None) -> ThreadSession:
    """Open *container* with the DLL-with-thread strategy.

    "Opening an active file 'injects' the sentinel DLL associated with
    the file into the application and starts a thread for running the
    orchestration routine."
    """
    sentinel = container.spec.instantiate()
    ctx = make_context(container, network, strategy="thread")
    dispatcher = SentinelDispatcher(sentinel, ctx)
    dispatcher.open()
    channel = SharedChannel()
    thread = threading.Thread(
        target=sentinel_thrd_main, args=(channel, dispatcher),
        name=monotonic_name("af-sentinel-thread"), daemon=True,
    )
    thread.start()
    return ThreadSession(channel, thread)
