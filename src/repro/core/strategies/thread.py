"""The DLL-with-thread strategy (paper §4.3, Appendix A.3).

The sentinel is "no longer a process running separate from the
application, but just a thread in the application": opening the active
file starts a sentinel thread inside the application process, and the
application exchanges control messages and data with it through shared
memory — "There is no inter-process context switching needed ... File
data is not copied from user space to kernel space and then to user
space (as is the case with pipes), instead using only one user-level
copy."

The transport is the same :class:`~repro.core.channel.Channel`
abstraction the process strategies use, in its in-memory form: a
:class:`~repro.core.channel.LocalChannel` pair whose messages cross by
reference.  The sentinel thread is the channel's per-session handler
worker — it blocks on the session channel, wakes per command, and
answers, exactly the paper's ``SentinelThrdMain`` loop — but commands
and payloads are never serialized or copied, which is precisely why
this strategy is the cheap one.
"""

from __future__ import annotations

from typing import Any

from repro.core import policy
from repro.core.channel import FIRST_SESSION_CHAN, LocalChannel
from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.dispatch import SentinelDispatcher
from repro.core.policy import Deadline
from repro.core.strategies.base import Session
from repro.core.strategies.common import make_context
from repro.core.telemetry import TELEMETRY
from repro.errors import ChannelClosedError, SentinelCrashError, SessionCloseError
from repro.util.naming import monotonic_name

__all__ = ["ThreadSession", "open_session", "SESSION_CHAN"]

#: The single logical channel a thread session uses on its private pair.
SESSION_CHAN = FIRST_SESSION_CHAN


class ThreadSession(Session):
    """Application-side session talking to the injected sentinel thread."""

    strategy = "thread"

    def __init__(self, app_end: LocalChannel,
                 sentinel_end: LocalChannel) -> None:
        self._app_end = app_end
        self._sentinel_end = sentinel_end
        self._closed = False

    @property
    def channel(self) -> LocalChannel:
        return self._app_end

    @property
    def counters(self):
        """Transport counters — same instrumentation as the wire strategies."""
        return self._app_end.counters

    def _roundtrip(self, fields: dict[str, Any], payload: Any = b"",
                   timeout: "float | Deadline | None" = None
                   ) -> tuple[dict[str, Any], bytes]:
        deadline = Deadline.coerce(timeout, policy.DEFAULT_OP_TIMEOUT)
        try:
            out_fields, out_payload = self._app_end.request(
                SESSION_CHAN, fields, payload, timeout=deadline)
        except ChannelClosedError as exc:
            raise SentinelCrashError(
                f"sentinel thread terminated: {exc}") from exc
        except TimeoutError as exc:
            raise SentinelCrashError(
                f"sentinel thread unresponsive: {exc}") from exc
        raise_for_response(out_fields)
        return out_fields, out_payload

    # -- data plane ---------------------------------------------------------------

    def read_at(self, offset: int, size: int) -> bytes:
        _, payload = self._roundtrip({"cmd": "read", "offset": offset,
                                      "size": size})
        return payload

    def write_at(self, offset: int, data: bytes) -> int:
        fields, _ = self._roundtrip({"cmd": "write", "offset": offset}, data)
        return int(fields["written"])

    def read_multi(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """One ``readv`` round trip for the whole batch."""
        if not extents:
            return []
        fields, payload = self._roundtrip(
            {"cmd": "readv",
             "extents": [[int(o), int(s)] for o, s in extents]})
        sizes = fields["sizes"]
        if len(sizes) == 1:
            return [payload]
        view = memoryview(payload)
        out: list[bytes] = []
        cursor = 0
        for n in sizes:
            out.append(bytes(view[cursor:cursor + int(n)]))
            cursor += int(n)
        return out

    def write_extents(self, extents: list[tuple[int, bytes]]) -> list[int]:
        """One ``writev`` round trip for the whole batch."""
        if not extents:
            return []
        fields, _ = self._roundtrip(
            {"cmd": "writev",
             "extents": [[int(o), len(d)] for o, d in extents]},
            tuple(data for _, data in extents))
        return [int(n) for n in fields["written"]]

    def size(self) -> int:
        fields, _ = self._roundtrip({"cmd": "size"})
        return int(fields["size"])

    def truncate(self, size: int) -> None:
        self._roundtrip({"cmd": "truncate", "size": size})

    def flush(self) -> None:
        self._roundtrip({"cmd": "flush"})

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        fields, out_payload = self._roundtrip(
            {"cmd": "control", "op": op, "args": args or {}}, payload)
        fields.pop("ok", None)
        return fields, out_payload

    # -- fan-out plane -------------------------------------------------------------

    def publish(self, offset: int, data: bytes,
                meta: "dict[str, Any] | None" = None) -> tuple[int, int]:
        fields, _ = self._roundtrip({"cmd": "publish", "offset": int(offset),
                                     "meta": meta or {}}, bytes(data))
        return int(fields["written"]), int(fields["seq"])

    def subscribe(self, max_pending: int | None = None) -> int:
        args: dict[str, Any] = {}
        if max_pending is not None:
            args["max_pending"] = int(max_pending)
        fields, _ = self._roundtrip({"cmd": "subscribe", "args": args})
        return int(fields["sub"])

    def poll(self, sub: int, max_items: int = 64) -> list[dict[str, Any]]:
        fields, _ = self._roundtrip(
            {"cmd": "poll", "args": {"sub": int(sub),
                                     "max_items": int(max_items)}})
        return list(fields.get("updates") or [])

    def unsubscribe(self, sub: int) -> None:
        self._roundtrip({"cmd": "unsubscribe", "args": {"sub": int(sub)}})

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            # bounded wait: never hang the application (e.g. at interpreter
            # shutdown when daemon threads are frozen); close-side sentinel
            # failures are reported by the dispatcher but must not prevent
            # teardown, so the response fields are not re-raised here.
            self._app_end.request(SESSION_CHAN, {"cmd": "close"},
                                  timeout=Deadline.after(policy.CLOSE_TIMEOUT))
        except (ChannelClosedError, TimeoutError) as exc:
            # The sentinel thread vanished or wedged before acking close.
            # Record the evidence on the transport counters and surface a
            # typed error — losing the close handshake may mean on_close
            # side effects (final flushes, lease releases) never ran.
            self._app_end.counters.record_close_error(
                f"session close handshake failed: {exc}")
            self._app_end.close()
            raise SessionCloseError(
                f"sentinel thread did not acknowledge close: {exc}") from exc
        self._app_end.close()


def open_session(container: Container, network=None) -> ThreadSession:
    """Open *container* with the DLL-with-thread strategy.

    "Opening an active file 'injects' the sentinel DLL associated with
    the file into the application and starts a thread for running the
    orchestration routine."
    """
    sentinel = container.spec.instantiate()
    ctx = make_context(container, network, strategy="thread")
    dispatcher = SentinelDispatcher(sentinel, ctx)
    dispatcher.open()
    app_end, sentinel_end = LocalChannel.pair(monotonic_name("af-thread"))

    def serve(fields: dict[str, Any],
              payload: bytes) -> tuple[dict[str, Any], bytes]:
        return dispatcher.execute(fields, payload)

    # The "sentinel thread" of §4.3 is now a logical channel on the
    # process's shared event loop — same serial-per-open semantics, but
    # a thousand thread-strategy opens no longer cost a thousand
    # threads.  The dispatcher may block (origin I/O, bridge calls), so
    # it runs on the loop's executor pool.
    sentinel_end.register(SESSION_CHAN, serve,
                          name=monotonic_name("af-sentinel-thread"),
                          blocking=SentinelDispatcher.blocking)
    TELEMETRY.metrics.counter("sessions.opened.thread",
                              scope=str(container.path)).inc()
    return ThreadSession(app_end, sentinel_end)
