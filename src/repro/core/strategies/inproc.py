"""The DLL-only strategy (paper §4.4).

File API calls are routed *directly* into sentinel routines — no second
process, no second thread, no context switch, no copy beyond the one the
sentinel itself performs: "The DLL-only implementation approach
eliminates this switch by directly routing file system API calls to
appropriate routines in the sentinel DLL."

This is the cheapest strategy and the one whose overhead the paper
measures as "negligible ... incurring the same costs as if the
application were directly accessing the information sources".  The cost
is convenience: the sentinel runs on the *application's* thread, so a
slow handler stalls the caller, and the sentinel author gets no
dispatch-loop scaffolding (here that only means exceptions propagate
synchronously instead of being marshalled through response frames).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.container import Container
from repro.core.dispatch import canonical_control_op
from repro.core.sentinel import Sentinel, SentinelContext
from repro.core.strategies.base import Session
from repro.core.strategies.common import make_context
from repro.core.telemetry import TELEMETRY

__all__ = ["InprocSession", "open_session"]


class InprocSession(Session):
    """Direct-call session: the application thread runs the sentinel."""

    strategy = "inproc"

    def __init__(self, sentinel: Sentinel, ctx: SentinelContext) -> None:
        self._sentinel = sentinel
        self._ctx = ctx
        self._closed = False
        self._close_lock = threading.Lock()
        sentinel.on_open(ctx)

    # -- data plane ---------------------------------------------------------------

    def read_at(self, offset: int, size: int) -> bytes:
        return self._sentinel.on_read(self._ctx, offset, size)

    def write_at(self, offset: int, data: bytes) -> int:
        if not isinstance(data, bytes):
            # Sentinels are written against bytes payloads (the wire
            # strategies deliver exactly that); honor the contract here
            # too instead of leaking caller buffers into sentinel code.
            data = bytes(data)
        return self._sentinel.on_write(self._ctx, offset, data)

    def size(self) -> int:
        return self._sentinel.on_size(self._ctx)

    def truncate(self, size: int) -> None:
        self._sentinel.on_truncate(self._ctx, size)

    def flush(self) -> None:
        self._sentinel.on_flush(self._ctx)

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        # Same alias folding the wire dispatchers apply, so sentinels
        # see one spelling regardless of strategy.
        return self._sentinel.on_control(self._ctx, canonical_control_op(op),
                                         args or {}, payload)

    # -- fan-out plane -------------------------------------------------------------

    def publish(self, offset: int, data: bytes,
                meta: "dict[str, Any] | None" = None) -> tuple[int, int]:
        if not isinstance(data, bytes):
            data = bytes(data)
        out = self._sentinel.on_publish(self._ctx, int(offset), data,
                                        meta or {})
        return int(out["written"]), int(out["seq"])

    def subscribe(self, max_pending: int | None = None) -> int:
        args: dict[str, Any] = {}
        if max_pending is not None:
            args["max_pending"] = int(max_pending)
        return int(self._sentinel.on_subscribe(self._ctx, args)["sub"])

    def poll(self, sub: int, max_items: int = 64) -> list[dict[str, Any]]:
        fields, _ = self._sentinel.on_poll(
            self._ctx, {"sub": int(sub), "max_items": int(max_items)})
        return list(fields.get("updates") or [])

    def unsubscribe(self, sub: int) -> None:
        self._sentinel.on_unsubscribe(self._ctx, {"sub": int(sub)})

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sentinel.on_close(self._ctx)
        finally:
            try:
                self._sentinel._fanout_release(self._ctx)
            finally:
                self._ctx.data.close()


def open_session(container: Container, network=None) -> InprocSession:
    """Open *container* with the DLL-only strategy."""
    sentinel = container.spec.instantiate()
    ctx = make_context(container, network, strategy="inproc")
    TELEMETRY.metrics.counter("sessions.opened.inproc",
                              scope=str(container.path)).inc()
    return InprocSession(sentinel, ctx)
