"""Shared helpers for the strategy implementations.

Context construction for every strategy, plus the session base class
shared by the strategies whose sentinel lives behind a pooled host
connection (:class:`ChannelSession`).
"""

from __future__ import annotations

from typing import Any

from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.datapart import ContainerDataPart, DataPart, MemoryDataPart
from repro.core.sentinel import SentinelContext
from repro.core.strategies.base import Session
from repro.core.sync import shared_state_for
from repro.errors import ChannelClosedError, SentinelCrashError

__all__ = ["make_data_part", "make_context", "ChannelSession"]


class ChannelSession(Session):
    """Base for sessions that drive one logical channel on a host lease.

    Operations are *pipelinable*: there is deliberately no per-session
    operation lock.  Ordering within the session is guaranteed by the
    host's per-channel worker; operations from distinct sessions of the
    same container interleave freely over the shared connection.
    """

    def __init__(self, lease) -> None:
        self._lease = lease
        self._closed = False

    @property
    def host(self):
        """The pooled :class:`~repro.core.runner.SentinelHost` serving us."""
        return self._lease.host

    @property
    def channel(self):
        return self._lease.channel

    @property
    def counters(self):
        """Shared transport counters of the host connection."""
        return self._lease.channel.counters

    def _op(self, fields: dict[str, Any], payload: bytes = b"",
            timeout: float | None = None) -> tuple[dict[str, Any], bytes]:
        """One command round trip; host death becomes a crash error."""
        try:
            reply, out_payload = self._lease.request(fields, payload,
                                                     timeout=timeout)
        except (ChannelClosedError, OSError, ValueError) as exc:
            raise self._lease.crash_error(exc) from exc
        raise_for_response(reply)
        return reply, out_payload

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        crash: SentinelCrashError | None = None
        try:
            self._op({"cmd": "close"})
        except SentinelCrashError as exc:
            crash = exc
        finally:
            self._lease.release()
        if crash is not None:
            raise crash


def make_data_part(container: Container) -> DataPart:
    """Pick the data-part backing for *container*.

    Containers may declare ``meta={"data": "memory"}`` for an ephemeral
    data part (the paper: "an active file can have an empty data part
    ... the sentinel process just creates the illusion of its
    existence"); the default is the persistent container segment.
    """
    if container.meta.get("data") == "memory":
        return MemoryDataPart(container.data)
    return ContainerDataPart(container)


def make_context(container: Container, network, strategy: str,
                 with_shared: bool = True) -> SentinelContext:
    """Build a per-open sentinel context for an in-process strategy."""
    shared = shared_state_for(container.path) if with_shared else None
    return SentinelContext(
        path=str(container.path),
        params=dict(container.spec.params),
        data=make_data_part(container),
        network=network,
        shared=shared,
        meta=dict(container.meta),
        strategy=strategy,
    )
