"""Shared helpers for the strategy implementations.

Context construction for every strategy, plus the session base class
shared by the strategies whose sentinel lives behind a pooled host
connection (:class:`ChannelSession`).
"""

from __future__ import annotations

from typing import Any

from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.datapart import ContainerDataPart, DataPart, MemoryDataPart
from repro.core.sentinel import SentinelContext
from repro.core.strategies.base import Session
from repro.core.sync import shared_state_for
from repro.errors import ChannelClosedError, SentinelCrashError

__all__ = ["make_data_part", "make_context", "ChannelSession"]


class ChannelSession(Session):
    """Base for sessions that drive one logical channel on a host lease.

    Operations are *pipelinable*: there is deliberately no per-session
    operation lock.  Ordering within the session is guaranteed by the
    host's per-channel worker; operations from distinct sessions of the
    same container interleave freely over the shared connection.
    """

    def __init__(self, lease) -> None:
        self._lease = lease
        self._closed = False

    @property
    def host(self):
        """The pooled :class:`~repro.core.runner.SentinelHost` serving us."""
        return self._lease.host

    @property
    def channel(self):
        return self._lease.channel

    @property
    def counters(self):
        """Shared transport counters of the host connection."""
        return self._lease.channel.counters

    #: A vectored batch is split so one exchange never exceeds this
    #: many payload bytes (the frame codec caps bodies at 16 MiB).
    VECTOR_CHUNK = 4 * 1024 * 1024

    def _op(self, fields: dict[str, Any], payload: Any = b"",
            timeout: float | None = None) -> tuple[dict[str, Any], bytes]:
        """One command round trip; host death becomes a crash error."""
        try:
            reply, out_payload = self._lease.request(fields, payload,
                                                     timeout=timeout)
        except (ChannelClosedError, OSError, ValueError) as exc:
            raise self._lease.crash_error(exc) from exc
        raise_for_response(reply)
        return reply, out_payload

    # -- vectored plane ------------------------------------------------------------

    def read_multi(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """Fetch many extents per exchange with the ``readv`` command."""
        if not self.supports_random_access:
            return super().read_multi(extents)
        out: list[bytes] = []
        batch: list[list[int]] = []
        pending = 0

        def drain() -> None:
            nonlocal pending
            if not batch:
                return
            fields, payload = self._op({"cmd": "readv", "extents": batch})
            sizes = fields["sizes"]
            if len(sizes) == 1:
                out.append(payload)  # the payload IS the extent: no copy
            else:
                view = memoryview(payload)
                cursor = 0
                for n in sizes:
                    out.append(bytes(view[cursor:cursor + int(n)]))
                    cursor += int(n)
            batch.clear()
            pending = 0

        for offset, size in extents:
            size = int(size)
            if size > self.VECTOR_CHUNK:
                drain()
                out.append(self.read_at(int(offset), size))
                continue
            if pending + size > self.VECTOR_CHUNK:
                drain()
            batch.append([int(offset), size])
            pending += size
        drain()
        return out

    def write_extents(self, extents: list[tuple[int, bytes]]) -> list[int]:
        """Push many extents per exchange with the ``writev`` command.

        The extents' buffers are gathered straight onto the wire (each
        is its own frame part) — a coalesced write-behind flush costs
        one exchange and zero client-side concatenation.
        """
        if not self.supports_random_access:
            return super().write_extents(extents)
        out: list[int] = []
        batch: list[tuple[int, Any]] = []
        pending = 0

        def drain() -> None:
            nonlocal pending
            if not batch:
                return
            fields, _ = self._op(
                {"cmd": "writev",
                 "extents": [[offset, len(data)] for offset, data in batch]},
                tuple(data for _, data in batch))
            out.extend(int(n) for n in fields["written"])
            batch.clear()
            pending = 0

        for offset, data in extents:
            if len(data) > self.VECTOR_CHUNK:
                drain()
                out.append(self.write_at(int(offset), data))
                continue
            if pending + len(data) > self.VECTOR_CHUNK:
                drain()
            batch.append((int(offset), data))
            pending += len(data)
        drain()
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        crash: SentinelCrashError | None = None
        try:
            self._op({"cmd": "close"})
        except SentinelCrashError as exc:
            crash = exc
        finally:
            self._lease.release()
        if crash is not None:
            raise crash


def make_data_part(container: Container) -> DataPart:
    """Pick the data-part backing for *container*.

    Containers may declare ``meta={"data": "memory"}`` for an ephemeral
    data part (the paper: "an active file can have an empty data part
    ... the sentinel process just creates the illusion of its
    existence"); the default is the persistent container segment.
    """
    if container.meta.get("data") == "memory":
        return MemoryDataPart(container.data)
    return ContainerDataPart(container)


def make_context(container: Container, network, strategy: str,
                 with_shared: bool = True) -> SentinelContext:
    """Build a per-open sentinel context for an in-process strategy."""
    shared = shared_state_for(container.path) if with_shared else None
    return SentinelContext(
        path=str(container.path),
        params=dict(container.spec.params),
        data=make_data_part(container),
        network=network,
        shared=shared,
        meta=dict(container.meta),
        strategy=strategy,
    )
