"""Shared helpers for the strategy implementations.

Context construction for every strategy, plus the session base class
shared by the strategies whose sentinel lives behind a pooled host
connection (:class:`ChannelSession`).
"""

from __future__ import annotations

import time
from typing import Any

from repro.core import planesel, policy
from repro.core import shm as shmplane
from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.datapart import ContainerDataPart, DataPart, MemoryDataPart
from repro.core.fanout import domain_for
from repro.core.policy import Deadline
from repro.core.sentinel import SentinelContext
from repro.core.strategies.base import Session
from repro.core.sync import shared_state_for
from repro.core.telemetry import TELEMETRY
from repro.errors import (
    ChannelClosedError,
    DeadlineExceededError,
    FlushError,
    HostOverloadedError,
    SentinelCrashError,
    ShmError,
)

__all__ = ["make_data_part", "make_context", "ChannelSession",
           "IDEMPOTENT_CMDS"]

#: Commands safe to re-issue after a crash or a lost frame: every one is
#: expressed in absolute offsets (or touches no state), so executing it
#: twice — or against a freshly respawned sentinel after the journal is
#: replayed — is observationally equal to executing it once.  ``rstream``
#: and ``wstream`` carry implicit cursor state and are excluded;
#: ``control`` ops have sentinel-defined semantics and are excluded;
#: ``close`` runs lifecycle hooks and is handled specially.
IDEMPOTENT_CMDS = frozenset({"read", "readv", "write", "writev", "size",
                             "truncate", "flush", "ping"})

#: Failures meaning "the transport under this session died".
_TRANSPORT_FAILURES = (ChannelClosedError, SentinelCrashError, OSError,
                       ValueError)


class ChannelSession(Session):
    """Base for sessions that drive one logical channel on a host lease.

    Operations are *pipelinable*: there is deliberately no per-session
    operation lock.  Ordering within the session is guaranteed by the
    host's per-channel worker; operations from distinct sessions of the
    same container interleave freely over the shared connection.

    **Supervision.**  Every operation runs under a
    :class:`~repro.core.policy.Deadline` split into per-wire attempts:
    a lost frame is detected after
    :data:`~repro.core.policy.ATTEMPT_TIMEOUT` and the (idempotent)
    request re-sent.  A host crash triggers transparent recovery: the
    lease respawns onto a fresh host, the session's **write journal** —
    every acknowledged mutation, recorded by reference — is replayed so
    the new sentinel instance observes the same mutation history, and
    the failed operation retries.  Sessions whose containers declare
    ``meta={"supervise": False}``, non-idempotent commands, and sessions
    whose journal outgrew :data:`~repro.core.policy.JOURNAL_LIMIT_BYTES`
    surface the crash instead — recovery must never silently lose
    writes.
    """

    #: Backoff schedule for crash-respawn-retry cycles.
    RETRY = policy.RetryPolicy()

    #: Commands whose bulk bytes may ride the host's shared-memory
    #: segment instead of the pipe.  Empty by default: only sessions
    #: whose commands are expressed in absolute offsets (no cursor
    #: state) opt in, and only for commands that are idempotent — a
    #: shm-rejected attempt is retried inline.
    SHM_CMDS: frozenset = frozenset()

    def __init__(self, lease) -> None:
        self._lease = lease
        self._closed = False
        #: Acknowledged mutations, for replay against a respawned host.
        self._journal: list[tuple[dict[str, Any], Any]] = []
        self._journal_bytes = 0
        self._journal_poisoned = False

    @property
    def host(self):
        """The pooled :class:`~repro.core.runner.SentinelHost` serving us."""
        return self._lease.host

    @property
    def channel(self):
        return self._lease.channel

    @property
    def counters(self):
        """Shared transport counters of the host connection."""
        return self._lease.channel.counters

    #: A vectored batch is split so one exchange never exceeds this
    #: many payload bytes (the frame codec caps bodies at 16 MiB).
    VECTOR_CHUNK = 4 * 1024 * 1024

    def _op(self, fields: dict[str, Any], payload: Any = b"",
            timeout: "float | Deadline | None" = None,
            into: "memoryview | None" = None
            ) -> tuple[dict[str, Any], bytes]:
        """One supervised command round trip.

        Retries lost frames and crashed hosts for idempotent commands
        within the operation's deadline; unrecoverable failures surface
        as a typed :class:`SentinelCrashError`.

        Eligible bulk payloads (see :attr:`SHM_CMDS`) travel through
        the host's shared-memory segment: the wire frame carries a slot
        descriptor instead of the bytes.  Substitution is per-attempt —
        the journal records the original inline form, and any shm-layer
        rejection (stale generation, corrupt slot, unattached peer)
        falls back to an inline retry, trading speed, never
        correctness.  With *into*, a reply payload lands directly in
        the caller's buffer (``reply["sl"]`` carries the byte count and
        the returned payload is empty).
        """
        deadline = Deadline.coerce(timeout, policy.DEFAULT_OP_TIMEOUT)
        cmd = str(fields.get("cmd") or "")
        recoverable = (cmd in IDEMPOTENT_CMDS and self._lease.supervised
                       and not self._journal_poisoned)
        delays = self.RETRY.delays()
        attempt = 0
        use_shm = cmd in self.SHM_CMDS
        while True:
            attempt += 1
            span = None
            if TELEMETRY.tracing and TELEMETRY.current() is not None:
                attrs: dict[str, Any] = {"attempt": attempt}
                if attempt > 1:
                    attrs["cause"] = "retry"
                span = TELEMETRY.begin(f"op.{cmd}", attrs=attrs, push=True)
            status = "error"
            plane = send_lease = reply_lease = None
            attempt_started = time.monotonic()
            try:
                wire_fields, wire_payload = fields, payload
                if use_shm:
                    plane = self._shm_plane()
                    if plane is not None:
                        (wire_fields, wire_payload, send_lease,
                         reply_lease) = self._shm_stage(
                            plane, cmd, fields, payload, into)
                try:
                    try:
                        reply, out_payload = self._lease.request(
                            wire_fields, wire_payload,
                            timeout=deadline.capped(policy.ATTEMPT_TIMEOUT))
                    except DeadlineExceededError:
                        # Attempt expired: the rid is withdrawn, so a
                        # straggler reply is ignored and a re-send is safe.
                        # Any slots of the attempt stay parked until a
                        # later reply on this channel proves (per-chan
                        # FIFO) the straggler is done with them.
                        if plane is not None:
                            plane.park(self._lease.chan,
                                       send_lease, reply_lease)
                            send_lease = reply_lease = None
                        deadline.check(f"{cmd!r} on {self.strategy} session")
                        if not recoverable:
                            raise
                        status = "timeout"
                        continue
                except _TRANSPORT_FAILURES as exc:
                    # A dead host takes its segment (and every lease on
                    # it) down with it; nothing to release.
                    send_lease = reply_lease = None
                    crash = exc if isinstance(exc, SentinelCrashError) \
                        else self._lease.crash_error(exc)
                    if not recoverable:
                        raise crash from exc
                    status = "crashed"
                    # Recovery runs inside the failed attempt's span, so
                    # the respawn (and its journal replay) appear as its
                    # children in the trace.
                    if not self._recover(delays, deadline):
                        raise crash from exc
                    continue
                # A settled reply on this channel proves any parked
                # straggler slots are finished with (per-chan FIFO).
                if plane is not None:
                    plane.settle(self._lease.chan)
                try:
                    raise_for_response(reply)
                    out_payload = self._shm_finish(
                        reply, reply_lease, into, out_payload)
                except HostOverloadedError:
                    # Admission fast-reject: the host never queued or
                    # executed the op, so a retry is safe for *every*
                    # command, not just the idempotent set.  Back off
                    # briefly and re-submit within the deadline.
                    status = "overloaded"
                    deadline.check(f"{cmd!r} on an overloaded host")
                    deadline.sleep(policy.OVERLOAD_RETRY_S)
                    continue
                except ShmError:
                    # The slot exchange was rejected (stale generation,
                    # corrupt bytes, unattached peer) — the command did
                    # not take effect.  Retry the attempt inline.
                    use_shm = False
                    shmplane.FALLBACK_INLINE.inc()
                    status = "shm-fallback"
                    continue
                status = "ok"
                self._journal_record(cmd, fields, payload)
                self._plane_record(
                    cmd, reply, payload, out_payload,
                    used_shm=(send_lease is not None
                              or reply_lease is not None),
                    elapsed=time.monotonic() - attempt_started)
                return reply, out_payload
            finally:
                # Runs after any return value is computed, so a reply
                # lease is released only once its bytes are copied out.
                if plane is not None:
                    plane.release(send_lease)
                    plane.release(reply_lease)
                if span is not None:
                    TELEMETRY.finish(span, status=status)

    # -- adaptive plane selection ---------------------------------------------------

    def _plane_model(self):
        """The host's :class:`~repro.core.planesel.PlaneCostModel`."""
        host = getattr(self._lease, "host", None)
        return getattr(host, "plane_model", None)

    def _want_shm(self, cmd: str, nbytes: int) -> bool:
        """Should this op's bulk ride shm?  Cost model, else static."""
        model = self._plane_model()
        if model is not None:
            return model.use_shm(cmd, nbytes)
        return nbytes >= shmplane.SHM_MIN_BYTES

    def _plane_record(self, cmd: str, reply: dict[str, Any], payload: Any,
                      out_payload: bytes, *, used_shm: bool,
                      elapsed: float) -> None:
        """Feed one successful attempt's measured cost to the model."""
        if cmd not in self.SHM_CMDS:
            return
        model = self._plane_model()
        if model is None:
            return
        if cmd in ("write", "writev"):
            parts = payload if isinstance(payload, (tuple, list)) \
                else (payload,)
            nbytes = sum(len(p) for p in parts)
        else:
            sl = reply.get("sl")
            nbytes = int(sl) if sl is not None else len(out_payload)
        plane = "shm" if used_shm else planesel.inline_plane()
        model.record(cmd, nbytes, plane, elapsed)

    @property
    def plane_stats(self) -> "dict[str, Any] | None":
        """The host's live ``plane.*`` counters (None without a model)."""
        model = self._plane_model()
        return model.stats() if model is not None else None

    # -- shared-memory staging -----------------------------------------------------

    def _shm_plane(self):
        """The host's armed shm plane, or ``None`` (stay inline)."""
        host = getattr(self._lease, "host", None)
        if host is None or not getattr(host, "shm_ready", False):
            return None
        plane = host.shm
        if plane is None or plane.destroyed:
            return None
        return plane

    def _shm_stage(self, plane, cmd: str, fields: dict[str, Any],
                   payload: Any, into: "memoryview | None"):
        """Swap eligible bulk bytes for slot descriptors.

        Eligibility is decided per op by the host's adaptive cost model
        (:meth:`_want_shm`; the static ``SHM_MIN_BYTES`` threshold when
        the model is cold, disabled, or absent).  Chosen request
        payloads are staged into leased slots (``shm`` descriptor
        replaces the frame body); bulk replies are offered a pre-leased
        landing slot (``shm_r``).  Returns the wire form plus the
        leases the caller must release/park.  An exhausted slab keeps
        the attempt inline.
        """
        send_lease = reply_lease = None
        wire_fields, wire_payload = fields, payload
        if cmd in ("write", "writev"):
            parts = payload if isinstance(payload, (tuple, list)) \
                else (payload,)
            nbytes = sum(len(p) for p in parts)
            if self._want_shm(cmd, nbytes):
                send_lease = plane.lease(nbytes)
                if send_lease is None:
                    shmplane.FALLBACK_INLINE.inc()
                else:
                    desc = send_lease.stage(parts)
                    self._shm_inject_faults(fields, send_lease, staged=True)
                    wire_fields = {**fields, "shm": desc}
                    wire_payload = b""
        else:  # read / readv: offer a landing slot for the reply
            if cmd == "read":
                expect = int(fields.get("size") or 0)
            else:
                expect = sum(int(s) for _, s in (fields.get("extents") or ()))
            if into is not None:
                expect = min(expect, len(into)) if expect else len(into)
            if self._want_shm(cmd, expect):
                reply_lease = plane.lease(expect)
                if reply_lease is None:
                    shmplane.FALLBACK_INLINE.inc()
                else:
                    desc = reply_lease.reply_desc()
                    self._shm_inject_faults(fields, reply_lease, staged=False)
                    wire_fields = {**fields, "shm_r": desc}
        return wire_fields, wire_payload, send_lease, reply_lease

    def _shm_inject_faults(self, fields: dict[str, Any], lease,
                           staged: bool) -> None:
        """Apply a scheduled shm fault to *lease* (deterministic tests).

        ``corrupt`` flips a staged byte after the descriptor's CRC was
        computed; ``stale-generation`` bumps the slot's generation so
        the descriptor no longer matches.  Both are applied sender-side
        so a schedule replays identically regardless of host timing.
        """
        faults = getattr(self.channel, "faults", None)
        if faults is None:
            return
        rule = faults.on_shm(fields)
        if rule is None:
            return
        if rule.action == "shm-corrupt" and staged:
            lease.scribble()
        elif rule.action == "shm-stale-generation":
            lease.invalidate()

    def _shm_finish(self, reply: dict[str, Any], reply_lease,
                    into: "memoryview | None", out_payload: bytes) -> bytes:
        """Materialise a reply's bulk bytes, whichever way they came.

        A sealed ``shm`` descriptor in the reply is validated (CRC +
        generation, re-checked after the copy) and drained from the
        slot; raises :class:`ShmError` on mismatch so the caller can
        retry inline.  With *into*, bytes land in the caller's buffer
        and ``reply["sl"]`` reports the count.
        """
        desc = reply.pop("shm", None) if reply_lease is not None else None
        if into is not None:
            if desc is not None:
                count = reply_lease.take_into(
                    into, int(desc[1]), int(desc[3]))
            else:
                count = len(out_payload)
                into[:count] = out_payload
            reply["sl"] = count
            return b""
        if desc is not None:
            return reply_lease.take(int(desc[1]), int(desc[3]))
        return out_payload

    # -- crash recovery ------------------------------------------------------------

    def _recover(self, delays, deadline: Deadline) -> bool:
        """Backoff, respawn the lease, and replay the journal.

        Consumes delays from the retry schedule; returns ``False`` when
        the schedule (or the deadline) is exhausted, telling the caller
        to surface the crash.
        """
        while True:
            delay = next(delays, None)
            if delay is None or deadline.expired():
                return False
            deadline.sleep(delay)
            span = None
            if TELEMETRY.tracing and TELEMETRY.current() is not None:
                span = TELEMETRY.begin(
                    "respawn", attrs={"cause": "crash",
                                      "backoff_s": round(delay, 4)},
                    push=True)
            try:
                self._lease.respawn(deadline)
                self._journal_replay(deadline)
                if span is not None:
                    TELEMETRY.finish(span)
                return True
            except (*_TRANSPORT_FAILURES, DeadlineExceededError):
                if span is not None:
                    TELEMETRY.finish(span, status="error")
                continue  # the replacement died too; try again

    def _journal_record(self, cmd: str, fields: dict[str, Any],
                        payload: Any) -> None:
        """Remember one acknowledged mutation for post-respawn replay.

        Entries are kept by reference — no copies — and the journal is
        bounded: past :data:`~repro.core.policy.JOURNAL_LIMIT_BYTES` it
        poisons itself, which disables transparent respawn (replaying a
        truncated history would silently lose writes) and frees the
        buffered memory.
        """
        if self._journal_poisoned:
            return
        if cmd == "write" or cmd == "writev":
            nbytes = sum(len(p) for p in payload) \
                if isinstance(payload, (tuple, list)) else len(payload)
        elif cmd == "truncate":
            nbytes = 0
        else:
            return
        self._journal.append((fields, payload))
        self._journal_bytes += nbytes
        if self._journal_bytes > policy.JOURNAL_LIMIT_BYTES:
            self._journal_poisoned = True
            self._journal.clear()
            self._journal_bytes = 0

    def _journal_replay(self, deadline: Deadline) -> None:
        """Re-apply the mutation history to a freshly respawned sentinel."""
        if not self._journal:
            return
        if TELEMETRY.tracing and TELEMETRY.current() is not None:
            with TELEMETRY.span("journal.replay",
                                attrs={"ops": len(self._journal)}):
                self._replay_journal_ops(deadline)
        else:
            self._replay_journal_ops(deadline)

    def _replay_journal_ops(self, deadline: Deadline) -> None:
        for fields, payload in self._journal:
            reply, _ = self._lease.request(
                fields, payload,
                timeout=deadline.capped(policy.ATTEMPT_TIMEOUT))
            raise_for_response(reply)

    # -- vectored plane ------------------------------------------------------------

    def read_multi(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """Fetch many extents per exchange with the ``readv`` command."""
        if not self.supports_random_access:
            return super().read_multi(extents)
        out: list[bytes] = []
        batch: list[list[int]] = []
        pending = 0

        def drain() -> None:
            nonlocal pending
            if not batch:
                return
            fields, payload = self._op({"cmd": "readv", "extents": batch})
            sizes = fields["sizes"]
            if len(sizes) == 1:
                out.append(payload)  # the payload IS the extent: no copy
            else:
                view = memoryview(payload)
                cursor = 0
                for n in sizes:
                    out.append(bytes(view[cursor:cursor + int(n)]))
                    cursor += int(n)
            batch.clear()
            pending = 0

        for offset, size in extents:
            size = int(size)
            if size > self.VECTOR_CHUNK:
                drain()
                out.append(self.read_at(int(offset), size))
                continue
            if pending + size > self.VECTOR_CHUNK:
                drain()
            batch.append([int(offset), size])
            pending += size
        drain()
        return out

    def write_extents(self, extents: list[tuple[int, bytes]]) -> list[int]:
        """Push many extents per exchange with the ``writev`` command.

        The extents' buffers are gathered straight onto the wire (each
        is its own frame part) — a coalesced write-behind flush costs
        one exchange and zero client-side concatenation.
        """
        if not self.supports_random_access:
            return super().write_extents(extents)
        out: list[int] = []
        batch: list[tuple[int, Any]] = []
        pending = 0

        def drain() -> None:
            nonlocal pending
            if not batch:
                return
            fields, _ = self._op(
                {"cmd": "writev",
                 "extents": [[offset, len(data)] for offset, data in batch]},
                tuple(data for _, data in batch))
            out.extend(int(n) for n in fields["written"])
            batch.clear()
            pending = 0

        for offset, data in extents:
            if len(data) > self.VECTOR_CHUNK:
                drain()
                out.append(self.write_at(int(offset), data))
                continue
            if pending + len(data) > self.VECTOR_CHUNK:
                drain()
            batch.append((int(offset), data))
            pending += len(data)
        drain()
        return out

    # -- fan-out plane -------------------------------------------------------------

    def publish(self, offset: int, data: bytes,
                meta: "dict[str, Any] | None" = None) -> tuple[int, int]:
        """Write *data* and fan it out to every peer open/subscriber.

        Returns ``(written, seq)``.  Not idempotent (a replayed publish
        would double-deliver to subscriber queues), so it is deliberately
        outside the supervised-retry command set.
        """
        fields, _ = self._op({"cmd": "publish", "offset": int(offset),
                              "meta": meta or {}}, bytes(data))
        return int(fields["written"]), int(fields["seq"])

    def subscribe(self, max_pending: int | None = None) -> int:
        """Open a bounded update queue on the coherence domain."""
        args: dict[str, Any] = {}
        if max_pending is not None:
            args["max_pending"] = int(max_pending)
        fields, _ = self._op({"cmd": "subscribe", "args": args})
        return int(fields["sub"])

    def poll(self, sub: int, max_items: int = 64) -> list[dict[str, Any]]:
        """Drain pending update records (oldest first) for *sub*."""
        fields, _ = self._op({"cmd": "poll",
                              "args": {"sub": int(sub),
                                       "max_items": int(max_items)}})
        return list(fields.get("updates") or [])

    def unsubscribe(self, sub: int) -> None:
        self._op({"cmd": "unsubscribe", "args": {"sub": int(sub)}})

    def close(self) -> None:
        """Close the session without silently losing writes.

        A crash during the close handshake is recoverable when no
        mutation is at risk (clean journal: release quietly, recording
        the close error on the transport counters) or when the journal
        can be replayed onto a respawned host and closed there.  A
        poisoned journal means buffered history was discarded, so the
        failure surfaces as a typed :class:`FlushError`; unsupervised
        sessions surface the crash directly.
        """
        if self._closed:
            return
        self._closed = True
        try:
            try:
                self._op({"cmd": "close"})
                return
            except SentinelCrashError as exc:
                if not self._lease.supervised:
                    raise
                if self._journal_poisoned:
                    raise FlushError(
                        "sentinel crashed at close with an over-limit write "
                        "journal; buffered mutations could not be replayed"
                    ) from exc
                if not self._journal:
                    # Nothing at risk: a clean-read session losing its
                    # close handshake is a non-event.  Record it so the
                    # transport counters keep the evidence.
                    self.counters.record_close_error(
                        f"close handshake lost: {exc}")
                    return
                # Dirty journal: replay it onto a fresh host, then close
                # for real so the mutations reach the data part.
                deadline = Deadline.after(policy.CLOSE_TIMEOUT)
                if not self._recover(self.RETRY.delays(), deadline):
                    raise FlushError(
                        f"sentinel crashed at close with "
                        f"{self._journal_bytes} journaled bytes and could "
                        f"not be respawned to replay them") from exc
                self._op({"cmd": "close"}, timeout=deadline)
        finally:
            self._lease.release()


def make_data_part(container: Container) -> DataPart:
    """Pick the data-part backing for *container*.

    Containers may declare ``meta={"data": "memory"}`` for an ephemeral
    data part (the paper: "an active file can have an empty data part
    ... the sentinel process just creates the illusion of its
    existence"); the default is the persistent container segment.
    """
    if container.meta.get("data") == "memory":
        return MemoryDataPart(container.data)
    return ContainerDataPart(container)


def make_context(container: Container, network, strategy: str,
                 with_shared: bool = True) -> SentinelContext:
    """Build a per-open sentinel context for an in-process strategy.

    In-process opens of one container share both the legacy
    ``SharedState`` dict and the container's process-wide
    :class:`~repro.core.fanout.CoherenceDomain` — the same fabric a
    pooled host child gives its channel sessions.
    """
    shared = shared_state_for(container.path) if with_shared else None
    coherence = domain_for(container.path) if with_shared else None
    return SentinelContext(
        path=str(container.path),
        params=dict(container.spec.params),
        data=make_data_part(container),
        network=network,
        shared=shared,
        coherence=coherence,
        meta=dict(container.meta),
        strategy=strategy,
    )
