"""Shared helpers for the strategy implementations.

Context construction for every strategy, plus the session base class
shared by the strategies whose sentinel lives behind a pooled host
connection (:class:`ChannelSession`).
"""

from __future__ import annotations

from typing import Any

from repro.core import policy
from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.datapart import ContainerDataPart, DataPart, MemoryDataPart
from repro.core.policy import Deadline
from repro.core.sentinel import SentinelContext
from repro.core.strategies.base import Session
from repro.core.sync import shared_state_for
from repro.core.telemetry import TELEMETRY
from repro.errors import (
    ChannelClosedError,
    DeadlineExceededError,
    FlushError,
    SentinelCrashError,
)

__all__ = ["make_data_part", "make_context", "ChannelSession",
           "IDEMPOTENT_CMDS"]

#: Commands safe to re-issue after a crash or a lost frame: every one is
#: expressed in absolute offsets (or touches no state), so executing it
#: twice — or against a freshly respawned sentinel after the journal is
#: replayed — is observationally equal to executing it once.  ``rstream``
#: and ``wstream`` carry implicit cursor state and are excluded;
#: ``control`` ops have sentinel-defined semantics and are excluded;
#: ``close`` runs lifecycle hooks and is handled specially.
IDEMPOTENT_CMDS = frozenset({"read", "readv", "write", "writev", "size",
                             "truncate", "flush", "ping"})

#: Failures meaning "the transport under this session died".
_TRANSPORT_FAILURES = (ChannelClosedError, SentinelCrashError, OSError,
                       ValueError)


class ChannelSession(Session):
    """Base for sessions that drive one logical channel on a host lease.

    Operations are *pipelinable*: there is deliberately no per-session
    operation lock.  Ordering within the session is guaranteed by the
    host's per-channel worker; operations from distinct sessions of the
    same container interleave freely over the shared connection.

    **Supervision.**  Every operation runs under a
    :class:`~repro.core.policy.Deadline` split into per-wire attempts:
    a lost frame is detected after
    :data:`~repro.core.policy.ATTEMPT_TIMEOUT` and the (idempotent)
    request re-sent.  A host crash triggers transparent recovery: the
    lease respawns onto a fresh host, the session's **write journal** —
    every acknowledged mutation, recorded by reference — is replayed so
    the new sentinel instance observes the same mutation history, and
    the failed operation retries.  Sessions whose containers declare
    ``meta={"supervise": False}``, non-idempotent commands, and sessions
    whose journal outgrew :data:`~repro.core.policy.JOURNAL_LIMIT_BYTES`
    surface the crash instead — recovery must never silently lose
    writes.
    """

    #: Backoff schedule for crash-respawn-retry cycles.
    RETRY = policy.RetryPolicy()

    def __init__(self, lease) -> None:
        self._lease = lease
        self._closed = False
        #: Acknowledged mutations, for replay against a respawned host.
        self._journal: list[tuple[dict[str, Any], Any]] = []
        self._journal_bytes = 0
        self._journal_poisoned = False

    @property
    def host(self):
        """The pooled :class:`~repro.core.runner.SentinelHost` serving us."""
        return self._lease.host

    @property
    def channel(self):
        return self._lease.channel

    @property
    def counters(self):
        """Shared transport counters of the host connection."""
        return self._lease.channel.counters

    #: A vectored batch is split so one exchange never exceeds this
    #: many payload bytes (the frame codec caps bodies at 16 MiB).
    VECTOR_CHUNK = 4 * 1024 * 1024

    def _op(self, fields: dict[str, Any], payload: Any = b"",
            timeout: "float | Deadline | None" = None
            ) -> tuple[dict[str, Any], bytes]:
        """One supervised command round trip.

        Retries lost frames and crashed hosts for idempotent commands
        within the operation's deadline; unrecoverable failures surface
        as a typed :class:`SentinelCrashError`.
        """
        deadline = Deadline.coerce(timeout, policy.DEFAULT_OP_TIMEOUT)
        cmd = str(fields.get("cmd") or "")
        recoverable = (cmd in IDEMPOTENT_CMDS and self._lease.supervised
                       and not self._journal_poisoned)
        delays = self.RETRY.delays()
        attempt = 0
        while True:
            attempt += 1
            span = None
            if TELEMETRY.tracing and TELEMETRY.current() is not None:
                attrs: dict[str, Any] = {"attempt": attempt}
                if attempt > 1:
                    attrs["cause"] = "retry"
                span = TELEMETRY.begin(f"op.{cmd}", attrs=attrs, push=True)
            status = "error"
            try:
                try:
                    try:
                        reply, out_payload = self._lease.request(
                            fields, payload,
                            timeout=deadline.capped(policy.ATTEMPT_TIMEOUT))
                    except DeadlineExceededError:
                        # Attempt expired: the rid is withdrawn, so a
                        # straggler reply is ignored and a re-send is safe.
                        deadline.check(f"{cmd!r} on {self.strategy} session")
                        if not recoverable:
                            raise
                        status = "timeout"
                        continue
                except _TRANSPORT_FAILURES as exc:
                    crash = exc if isinstance(exc, SentinelCrashError) \
                        else self._lease.crash_error(exc)
                    if not recoverable:
                        raise crash from exc
                    status = "crashed"
                    # Recovery runs inside the failed attempt's span, so
                    # the respawn (and its journal replay) appear as its
                    # children in the trace.
                    if not self._recover(delays, deadline):
                        raise crash from exc
                    continue
                raise_for_response(reply)
                status = "ok"
                self._journal_record(cmd, fields, payload)
                return reply, out_payload
            finally:
                if span is not None:
                    TELEMETRY.finish(span, status=status)

    # -- crash recovery ------------------------------------------------------------

    def _recover(self, delays, deadline: Deadline) -> bool:
        """Backoff, respawn the lease, and replay the journal.

        Consumes delays from the retry schedule; returns ``False`` when
        the schedule (or the deadline) is exhausted, telling the caller
        to surface the crash.
        """
        while True:
            delay = next(delays, None)
            if delay is None or deadline.expired():
                return False
            deadline.sleep(delay)
            span = None
            if TELEMETRY.tracing and TELEMETRY.current() is not None:
                span = TELEMETRY.begin(
                    "respawn", attrs={"cause": "crash",
                                      "backoff_s": round(delay, 4)},
                    push=True)
            try:
                self._lease.respawn(deadline)
                self._journal_replay(deadline)
                if span is not None:
                    TELEMETRY.finish(span)
                return True
            except (*_TRANSPORT_FAILURES, DeadlineExceededError):
                if span is not None:
                    TELEMETRY.finish(span, status="error")
                continue  # the replacement died too; try again

    def _journal_record(self, cmd: str, fields: dict[str, Any],
                        payload: Any) -> None:
        """Remember one acknowledged mutation for post-respawn replay.

        Entries are kept by reference — no copies — and the journal is
        bounded: past :data:`~repro.core.policy.JOURNAL_LIMIT_BYTES` it
        poisons itself, which disables transparent respawn (replaying a
        truncated history would silently lose writes) and frees the
        buffered memory.
        """
        if self._journal_poisoned:
            return
        if cmd == "write" or cmd == "writev":
            nbytes = sum(len(p) for p in payload) \
                if isinstance(payload, (tuple, list)) else len(payload)
        elif cmd == "truncate":
            nbytes = 0
        else:
            return
        self._journal.append((fields, payload))
        self._journal_bytes += nbytes
        if self._journal_bytes > policy.JOURNAL_LIMIT_BYTES:
            self._journal_poisoned = True
            self._journal.clear()
            self._journal_bytes = 0

    def _journal_replay(self, deadline: Deadline) -> None:
        """Re-apply the mutation history to a freshly respawned sentinel."""
        if not self._journal:
            return
        if TELEMETRY.tracing and TELEMETRY.current() is not None:
            with TELEMETRY.span("journal.replay",
                                attrs={"ops": len(self._journal)}):
                self._replay_journal_ops(deadline)
        else:
            self._replay_journal_ops(deadline)

    def _replay_journal_ops(self, deadline: Deadline) -> None:
        for fields, payload in self._journal:
            reply, _ = self._lease.request(
                fields, payload,
                timeout=deadline.capped(policy.ATTEMPT_TIMEOUT))
            raise_for_response(reply)

    # -- vectored plane ------------------------------------------------------------

    def read_multi(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """Fetch many extents per exchange with the ``readv`` command."""
        if not self.supports_random_access:
            return super().read_multi(extents)
        out: list[bytes] = []
        batch: list[list[int]] = []
        pending = 0

        def drain() -> None:
            nonlocal pending
            if not batch:
                return
            fields, payload = self._op({"cmd": "readv", "extents": batch})
            sizes = fields["sizes"]
            if len(sizes) == 1:
                out.append(payload)  # the payload IS the extent: no copy
            else:
                view = memoryview(payload)
                cursor = 0
                for n in sizes:
                    out.append(bytes(view[cursor:cursor + int(n)]))
                    cursor += int(n)
            batch.clear()
            pending = 0

        for offset, size in extents:
            size = int(size)
            if size > self.VECTOR_CHUNK:
                drain()
                out.append(self.read_at(int(offset), size))
                continue
            if pending + size > self.VECTOR_CHUNK:
                drain()
            batch.append([int(offset), size])
            pending += size
        drain()
        return out

    def write_extents(self, extents: list[tuple[int, bytes]]) -> list[int]:
        """Push many extents per exchange with the ``writev`` command.

        The extents' buffers are gathered straight onto the wire (each
        is its own frame part) — a coalesced write-behind flush costs
        one exchange and zero client-side concatenation.
        """
        if not self.supports_random_access:
            return super().write_extents(extents)
        out: list[int] = []
        batch: list[tuple[int, Any]] = []
        pending = 0

        def drain() -> None:
            nonlocal pending
            if not batch:
                return
            fields, _ = self._op(
                {"cmd": "writev",
                 "extents": [[offset, len(data)] for offset, data in batch]},
                tuple(data for _, data in batch))
            out.extend(int(n) for n in fields["written"])
            batch.clear()
            pending = 0

        for offset, data in extents:
            if len(data) > self.VECTOR_CHUNK:
                drain()
                out.append(self.write_at(int(offset), data))
                continue
            if pending + len(data) > self.VECTOR_CHUNK:
                drain()
            batch.append((int(offset), data))
            pending += len(data)
        drain()
        return out

    def close(self) -> None:
        """Close the session without silently losing writes.

        A crash during the close handshake is recoverable when no
        mutation is at risk (clean journal: release quietly, recording
        the close error on the transport counters) or when the journal
        can be replayed onto a respawned host and closed there.  A
        poisoned journal means buffered history was discarded, so the
        failure surfaces as a typed :class:`FlushError`; unsupervised
        sessions surface the crash directly.
        """
        if self._closed:
            return
        self._closed = True
        try:
            try:
                self._op({"cmd": "close"})
                return
            except SentinelCrashError as exc:
                if not self._lease.supervised:
                    raise
                if self._journal_poisoned:
                    raise FlushError(
                        "sentinel crashed at close with an over-limit write "
                        "journal; buffered mutations could not be replayed"
                    ) from exc
                if not self._journal:
                    # Nothing at risk: a clean-read session losing its
                    # close handshake is a non-event.  Record it so the
                    # transport counters keep the evidence.
                    self.counters.record_close_error(
                        f"close handshake lost: {exc}")
                    return
                # Dirty journal: replay it onto a fresh host, then close
                # for real so the mutations reach the data part.
                deadline = Deadline.after(policy.CLOSE_TIMEOUT)
                if not self._recover(self.RETRY.delays(), deadline):
                    raise FlushError(
                        f"sentinel crashed at close with "
                        f"{self._journal_bytes} journaled bytes and could "
                        f"not be respawned to replay them") from exc
                self._op({"cmd": "close"}, timeout=deadline)
        finally:
            self._lease.release()


def make_data_part(container: Container) -> DataPart:
    """Pick the data-part backing for *container*.

    Containers may declare ``meta={"data": "memory"}`` for an ephemeral
    data part (the paper: "an active file can have an empty data part
    ... the sentinel process just creates the illusion of its
    existence"); the default is the persistent container segment.
    """
    if container.meta.get("data") == "memory":
        return MemoryDataPart(container.data)
    return ContainerDataPart(container)


def make_context(container: Container, network, strategy: str,
                 with_shared: bool = True) -> SentinelContext:
    """Build a per-open sentinel context for an in-process strategy."""
    shared = shared_state_for(container.path) if with_shared else None
    return SentinelContext(
        path=str(container.path),
        params=dict(container.spec.params),
        data=make_data_part(container),
        network=network,
        shared=shared,
        meta=dict(container.meta),
        strategy=strategy,
    )
