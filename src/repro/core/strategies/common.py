"""Shared helpers for building sentinel contexts from containers."""

from __future__ import annotations

from repro.core.container import Container
from repro.core.datapart import ContainerDataPart, DataPart, MemoryDataPart
from repro.core.sentinel import SentinelContext
from repro.core.sync import shared_state_for

__all__ = ["make_data_part", "make_context"]


def make_data_part(container: Container) -> DataPart:
    """Pick the data-part backing for *container*.

    Containers may declare ``meta={"data": "memory"}`` for an ephemeral
    data part (the paper: "an active file can have an empty data part
    ... the sentinel process just creates the illusion of its
    existence"); the default is the persistent container segment.
    """
    if container.meta.get("data") == "memory":
        return MemoryDataPart(container.data)
    return ContainerDataPart(container)


def make_context(container: Container, network, strategy: str,
                 with_shared: bool = True) -> SentinelContext:
    """Build a per-open sentinel context for an in-process strategy."""
    shared = shared_state_for(container.path) if with_shared else None
    return SentinelContext(
        path=str(container.path),
        params=dict(container.spec.params),
        data=make_data_part(container),
        network=network,
        shared=shared,
        meta=dict(container.meta),
        strategy=strategy,
    )
