"""The simple process-based strategy (paper §4.1).

"The process-based implementation approach is the simple and intuitive
method, directly reflecting active file semantics": the sentinel runs in
a real child process, and the application sees only two sequential
byte streams — "it can only support a subset of the file operations.
Operations such as ReadFileScatter (or seek in Unix) and GetFileSize
cannot be implemented as there is no method of passing control
information between the user process and the sentinel process."

Accordingly :class:`ProcessSession` reports no random access and no
control support; attempts raise
:class:`~repro.errors.UnsupportedOperationError` (the paper's "dropped
with an appropriate return code").  The sequential planes now travel as
``rstream``/``wstream`` commands over the pooled host connection
(:mod:`repro.core.runner`) instead of dedicated raw pipes; the
application-visible vocabulary is unchanged.
"""

from __future__ import annotations

import threading

from repro.core.container import Container
from repro.core.runner import HOST_POOL
from repro.core.strategies.common import ChannelSession
from repro.core.telemetry import TELEMETRY

__all__ = ["ProcessSession", "open_session"]


class ProcessSession(ChannelSession):
    """Sequential stream session to a sentinel behind the host channel."""

    strategy = "process"
    supports_random_access = False
    supports_control = False

    # SHM_CMDS stays empty: ``rstream``/``wstream`` carry implicit
    # cursor state, so a shm-rejected attempt could not be retried
    # without replaying the cursor.  Stream bodies stay on the frame.

    #: Stream transfers are chunked below the 16 MiB frame cap.
    READ_CHUNK = 4 * 1024 * 1024
    WRITE_CHUNK = 4 * 1024 * 1024

    def __init__(self, lease) -> None:
        super().__init__(lease)
        self._read_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._read_eof = False

    # -- sequential plane ---------------------------------------------------------

    def read_stream(self, size: int) -> bytes:
        """Read up to *size* bytes; short only at end of stream."""
        if size <= 0:
            return b""
        chunks: list[bytes] = []
        with self._read_lock:
            if self._read_eof:
                return b""
            remaining = size
            while remaining:
                fields, chunk = self._op({
                    "cmd": "rstream",
                    "size": min(remaining, self.READ_CHUNK),
                })
                chunks.append(chunk)
                remaining -= len(chunk)
                if fields.get("eof", False):
                    self._read_eof = True
                    break
                if not chunk:
                    break
        return b"".join(chunks)

    def write_stream(self, data: bytes) -> int:
        if not data:
            return 0
        view = memoryview(data)
        total = 0
        with self._write_lock:
            while total < len(data):
                chunk = view[total:total + self.WRITE_CHUNK]
                fields, _ = self._op({"cmd": "wstream"}, chunk)
                total += int(fields.get("written", len(chunk)))
        return total


def open_session(container: Container, network=None, *,
                 pooled: bool = True) -> ProcessSession:
    """Open *container* with the simple process strategy."""
    lease = HOST_POOL.lease(str(container.path), strategy="process",
                            network=network, exclusive=not pooled)
    lease.supervised = bool(container.meta.get("supervise", True))
    TELEMETRY.metrics.counter("sessions.opened.process",
                              scope=str(container.path)).inc()
    return ProcessSession(lease)
