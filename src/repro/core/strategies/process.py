"""The simple process-based strategy (paper §4.1).

"The process-based implementation approach is the simple and intuitive
method, directly reflecting active file semantics": the sentinel runs as
a real child process, connected to the application by two anonymous
pipes on its standard input and output.  Reads drain the read pipe,
writes feed the write pipe, and that is the *entire* vocabulary — "it
can only support a subset of the file operations.  Operations such as
ReadFileScatter (or seek in Unix) and GetFileSize cannot be implemented
as there is no method of passing control information between the user
process and the sentinel process."

Accordingly :class:`ProcessSession` reports no random access and no
control support; attempts raise
:class:`~repro.errors.UnsupportedOperationError` (the paper's "dropped
with an appropriate return code").
"""

from __future__ import annotations

import threading

from repro.core.container import Container
from repro.core.runner import RunnerHandle, launch_runner
from repro.core.strategies.base import Session
from repro.errors import SentinelCrashError

__all__ = ["ProcessSession", "open_session"]


class ProcessSession(Session):
    """Sequential pipe session to a sentinel child process."""

    strategy = "process"
    supports_random_access = False
    supports_control = False

    def __init__(self, handle: RunnerHandle) -> None:
        self._handle = handle
        self._closed = False
        self._read_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._read_eof = False

    # -- sequential plane ---------------------------------------------------------

    def read_stream(self, size: int) -> bytes:
        """Read up to *size* bytes; short only at end of stream."""
        if size <= 0:
            return b""
        chunks: list[bytes] = []
        remaining = size
        with self._read_lock:
            if self._read_eof:
                return b""
            while remaining:
                chunk = self._handle.stdout.read(remaining)
                if not chunk:
                    self._read_eof = True
                    self._check_child_alive_at_eof()
                    break
                chunks.append(chunk)
                remaining -= len(chunk)
        return b"".join(chunks)

    def write_stream(self, data: bytes) -> int:
        with self._write_lock:
            try:
                self._handle.stdin.write(data)
            except (BrokenPipeError, ValueError) as exc:
                raise SentinelCrashError(
                    f"sentinel process died during write: "
                    f"{self._handle.stderr_text() or exc}"
                ) from exc
        return len(data)

    def _check_child_alive_at_eof(self) -> None:
        """EOF is legitimate stream end unless the child crashed."""
        returncode = self._handle.proc.poll()
        if returncode not in (None, 0):
            raise SentinelCrashError(
                f"sentinel process exited with status {returncode}: "
                f"{self._handle.stderr_text()}"
            )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for stream in (self._handle.stdin, self._handle.stdout):
            try:
                stream.close()
            except (BrokenPipeError, OSError):
                pass
        try:
            self._handle.proc.wait(timeout=10)
        except Exception:
            self._handle.proc.kill()
            self._handle.proc.wait()
        if self._handle.bridge is not None:
            self._handle.bridge.join(timeout=1.0)
        returncode = self._handle.proc.returncode
        if returncode not in (0, None):
            raise SentinelCrashError(
                f"sentinel process exited with status {returncode}: "
                f"{self._handle.stderr_text()}"
            )


def open_session(container: Container, network=None) -> ProcessSession:
    """Open *container* with the simple process strategy."""
    handle = launch_runner(str(container.path), mode="stream", network=network)
    return ProcessSession(handle)
