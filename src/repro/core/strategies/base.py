"""The session interface every strategy implements.

A *session* is one application-side open of an active file: it owns the
transport to "its" sentinel (child process, injected thread, or inline
object) and translates file operations into that transport.  The file
object (:mod:`repro.core.fileobj`) and the Win32-style API veneer
(:mod:`repro.core.api`) are written purely against this interface.

Capability flags express the paper's strategy differences: the simple
process strategy "can only support a subset of the file operations"
because bare pipes carry no control information, so its session reports
``supports_random_access = False`` and offers the sequential stream
methods instead.
"""

from __future__ import annotations

from typing import Any

from repro.errors import UnsupportedOperationError

__all__ = ["Session"]


class Session:
    """One open of an active file, bound to one sentinel."""

    #: Canonical strategy name serving this session.
    strategy = ""

    #: Whether reads/writes may carry explicit offsets (seek support).
    supports_random_access = True

    #: Whether GetFileSize/truncate/flush/control round-trips exist.
    supports_control = True

    #: Transport counters (:class:`repro.core.channel.ChannelCounters`)
    #: for channel-backed sessions, ``None`` for inline strategies.
    counters = None

    # -- random-access plane ----------------------------------------------------

    def read_at(self, offset: int, size: int) -> bytes:
        raise UnsupportedOperationError(
            f"{self.strategy}: random-access read unsupported"
        )

    def write_at(self, offset: int, data: bytes) -> int:
        raise UnsupportedOperationError(
            f"{self.strategy}: random-access write unsupported"
        )

    def read_at_into(self, offset: int, buffer: memoryview) -> int:
        """Read up to ``len(buffer)`` bytes at *offset* into *buffer*.

        Returns the byte count.  The default goes through
        :meth:`read_at`; transports that can land bytes directly in the
        caller's buffer override this to avoid the intermediate copy.
        """
        data = self.read_at(offset, len(buffer))
        buffer[:len(data)] = data
        return len(data)

    def read_multi(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """Read many ``(offset, size)`` extents; returns their bytes.

        The default loops :meth:`read_at` — one round trip per extent.
        Channel-backed sessions override this with the vectored
        ``readv`` command so the whole batch rides one exchange.
        """
        return [self.read_at(int(offset), int(size))
                for offset, size in extents]

    def write_extents(self, extents: list[tuple[int, bytes]]) -> list[int]:
        """Write many ``(offset, data)`` extents; returns written counts.

        Default is a :meth:`write_at` loop; channel-backed sessions
        override with the vectored ``writev`` command (one exchange for
        a coalesced write-behind flush).
        """
        return [self.write_at(int(offset), data) for offset, data in extents]

    def size(self) -> int:
        raise UnsupportedOperationError(f"{self.strategy}: size unsupported")

    def truncate(self, size: int) -> None:
        raise UnsupportedOperationError(f"{self.strategy}: truncate unsupported")

    def flush(self) -> None:
        raise UnsupportedOperationError(f"{self.strategy}: flush unsupported")

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        raise UnsupportedOperationError(f"{self.strategy}: control unsupported")

    # -- fan-out plane (coherence domain) ------------------------------------------

    def publish(self, offset: int, data: bytes,
                meta: "dict[str, Any] | None" = None) -> tuple[int, int]:
        """Write *data* and fan it out to every peer open/subscriber of
        this container's coherence domain; returns ``(written, seq)``."""
        raise UnsupportedOperationError(
            f"{self.strategy}: publish unsupported"
        )

    def subscribe(self, max_pending: int | None = None) -> int:
        """Open a bounded pending-update queue; returns its id."""
        raise UnsupportedOperationError(
            f"{self.strategy}: subscribe unsupported"
        )

    def poll(self, sub: int, max_items: int = 64) -> "list[dict[str, Any]]":
        """Drain pending update records (oldest first)."""
        raise UnsupportedOperationError(f"{self.strategy}: poll unsupported")

    def unsubscribe(self, sub: int) -> None:
        raise UnsupportedOperationError(
            f"{self.strategy}: unsubscribe unsupported"
        )

    # -- sequential plane (simple process strategy) -------------------------------

    def read_stream(self, size: int) -> bytes:
        """Read up to *size* bytes from the sequential read pipe."""
        raise UnsupportedOperationError(
            f"{self.strategy}: stream read unsupported"
        )

    def write_stream(self, data: bytes) -> int:
        """Append *data* to the sequential write pipe."""
        raise UnsupportedOperationError(
            f"{self.strategy}: stream write unsupported"
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        raise NotImplementedError
