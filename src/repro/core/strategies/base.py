"""The session interface every strategy implements.

A *session* is one application-side open of an active file: it owns the
transport to "its" sentinel (child process, injected thread, or inline
object) and translates file operations into that transport.  The file
object (:mod:`repro.core.fileobj`) and the Win32-style API veneer
(:mod:`repro.core.api`) are written purely against this interface.

Capability flags express the paper's strategy differences: the simple
process strategy "can only support a subset of the file operations"
because bare pipes carry no control information, so its session reports
``supports_random_access = False`` and offers the sequential stream
methods instead.
"""

from __future__ import annotations

from typing import Any

from repro.errors import UnsupportedOperationError

__all__ = ["Session"]


class Session:
    """One open of an active file, bound to one sentinel."""

    #: Canonical strategy name serving this session.
    strategy = ""

    #: Whether reads/writes may carry explicit offsets (seek support).
    supports_random_access = True

    #: Whether GetFileSize/truncate/flush/control round-trips exist.
    supports_control = True

    #: Transport counters (:class:`repro.core.channel.ChannelCounters`)
    #: for channel-backed sessions, ``None`` for inline strategies.
    counters = None

    # -- random-access plane ----------------------------------------------------

    def read_at(self, offset: int, size: int) -> bytes:
        raise UnsupportedOperationError(
            f"{self.strategy}: random-access read unsupported"
        )

    def write_at(self, offset: int, data: bytes) -> int:
        raise UnsupportedOperationError(
            f"{self.strategy}: random-access write unsupported"
        )

    def size(self) -> int:
        raise UnsupportedOperationError(f"{self.strategy}: size unsupported")

    def truncate(self, size: int) -> None:
        raise UnsupportedOperationError(f"{self.strategy}: truncate unsupported")

    def flush(self) -> None:
        raise UnsupportedOperationError(f"{self.strategy}: flush unsupported")

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        raise UnsupportedOperationError(f"{self.strategy}: control unsupported")

    # -- sequential plane (simple process strategy) -------------------------------

    def read_stream(self, size: int) -> bytes:
        """Read up to *size* bytes from the sequential read pipe."""
        raise UnsupportedOperationError(
            f"{self.strategy}: stream read unsupported"
        )

    def write_stream(self, data: bytes) -> int:
        """Append *data* to the sequential write pipe."""
        raise UnsupportedOperationError(
            f"{self.strategy}: stream write unsupported"
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        raise NotImplementedError
