"""One multiplexed, framed transport for every channel-based strategy.

The paper's §4 strategies all speak the same logical protocol — command
in, response out — but historically each carried it over its own
transport in strict lockstep: one in-flight operation, one dedicated fd
pair per concern.  This module is the single transport they now share:

* every message is tagged with a *request id* (``rid``) and a *logical
  channel id* (``chan``) — the envelope of
  :func:`repro.core.control.split_envelope`;
* a demultiplexer routes replies to per-request futures
  (:class:`PendingReply`), so callers can pipeline many operations over
  one connection;
* inbound requests are served by the process's event-loop host
  (:mod:`repro.core.hostloop`): one scheduler and a small fixed
  executor pool serve *every* registered channel, so distinct logical
  channels (= distinct opens of a container) execute concurrently
  while each channel stays strictly ordered — and a thousand channels
  cost O(1) threads, not a thousand.  ``REPRO_HOST_MODE=threads``
  restores the legacy worker-thread-per-channel model;
* the transport keeps per-operation latency/throughput counters
  (:class:`ChannelCounters`), so every strategy gets instrumentation
  for free.

Two concrete transports exist:

* :class:`StreamChannel` — length-prefixed frames over a byte-stream
  pair (the sentinel-host connection of :mod:`repro.core.runner` and the
  network bridge of :mod:`repro.core.netproxy` share one of these);
* :class:`LocalChannel` — an in-memory pair for same-process endpoints
  (the thread strategy): identical semantics, no serialization, which is
  exactly why that strategy is cheaper.

Both sides of a channel may originate requests: the application opens
files and issues file operations; a sentinel child issues network-bridge
calls back to the application.  Channel 0 is reserved for that
control/bridge traffic; sessions use channels 1 and up.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from queue import SimpleQueue
from typing import Any, BinaryIO, Callable

from repro.core import control, hostloop
from repro.core.policy import JOIN_TIMEOUT, Deadline
from repro.core.telemetry import TELEMETRY
from repro.errors import (
    ChannelClosedError,
    DeadlineExceededError,
    FrameError,
    ProtocolError,
)
from repro.util.framing import write_frame

__all__ = [
    "Channel",
    "StreamChannel",
    "LocalChannel",
    "PendingReply",
    "ChannelCounters",
    "CONTROL_CHAN",
    "FIRST_SESSION_CHAN",
]

#: The reserved channel for connection control and bridge traffic.
CONTROL_CHAN = 0

#: The first channel id handed to a logical session.
FIRST_SESSION_CHAN = 1

Handler = Callable[[dict[str, Any], bytes], "tuple[dict[str, Any], bytes]"]

#: Header-encoding counters, module-cached so the send path never takes
#: the metrics-registry lock.
_HDR_BINARY = TELEMETRY.metrics.counter("transport.header.binary")
_HDR_JSON = TELEMETRY.metrics.counter("transport.header.json")

#: Submission-ring tallies (the client-side ``batch.*`` family):
#: frames that coalesced >1 op, the ops they carried, and flushes that
#: passed a lone op straight through as a plain (binary-header) frame.
_BATCH_FLUSHES = TELEMETRY.metrics.counter("batch.flushes")
_BATCH_OPS = TELEMETRY.metrics.counter("batch.ops.batched")
_BATCH_SINGLETON = TELEMETRY.metrics.counter("batch.singleton")

#: Most sub-ops one multi-op frame may carry (well under the host's
#: HOST_QUEUE_DEPTH, so one frame can never be auto-rejected by the
#: per-channel admission bound it weighs against).
BATCH_MAX_OPS = 32

#: Most payload bytes one multi-op frame may carry; a large op cuts the
#: batch rather than ballooning the frame past the pipe's fast path.
BATCH_MAX_BYTES = 1 << 20

#: Environment kill-switch: set ``REPRO_NO_BATCH=1`` to send every op
#: as its own frame (read at channel construction).
ENV_NO_BATCH = "REPRO_NO_BATCH"

#: What the send path accepts as a payload: one buffer, or a sequence of
#: buffers gathered under the same frame (scatter-gather, copy-free on
#: the wire transport).
Payload = "bytes | bytearray | memoryview | tuple | list"


def _payload_parts(payload: Any) -> tuple:
    """Normalize a payload into a tuple of buffer parts."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return (payload,)
    return tuple(payload)


def _close_quietly(stream: BinaryIO) -> None:
    try:
        stream.close()
    except (BrokenPipeError, OSError, ValueError):
        pass


class ChannelCounters:
    """Thread-safe per-connection transport counters.

    ``max_in_flight`` is the high-water mark of concurrently outstanding
    requests — the direct measure of pipelining: it exceeds 1 only when
    a second operation was sent before the first one's reply arrived.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_sent = 0
        self.replies_received = 0
        self.requests_served = 0
        self.requests_failed = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.in_flight = 0
        self.max_in_flight = 0
        self.close_errors = 0
        self.last_close_error = ""
        #: Monotonic time of the last send/settle/serve — what the idle
        #: heartbeat of :mod:`repro.core.runner` keys off.
        self.last_activity = time.monotonic()
        #: op -> [count, bytes_out, bytes_in, total_latency_s, max_latency_s]
        self._per_op: dict[str, list[float]] = {}
        #: op -> shared global latency histogram (cached so the settle
        #: path never takes the registry lock).
        self._latency: dict[str, Any] = {}

    def request_started(self, op: str, nbytes: int) -> None:
        with self._lock:
            self.requests_sent += 1
            self.bytes_sent += nbytes
            self.in_flight += 1
            self.last_activity = time.monotonic()
            if self.in_flight > self.max_in_flight:
                self.max_in_flight = self.in_flight

    def request_settled(self, op: str, nbytes: int, elapsed: float,
                        ok: bool = True) -> None:
        with self._lock:
            self.in_flight -= 1
            self.last_activity = time.monotonic()
            if ok:
                self.replies_received += 1
                self.bytes_received += nbytes
            else:
                self.requests_failed += 1
            record = self._per_op.setdefault(op, [0, 0, 0, 0.0, 0.0])
            record[0] += 1
            record[2] += nbytes
            record[3] += elapsed
            if elapsed > record[4]:
                record[4] = elapsed
        hist = self._latency.get(op)
        if hist is None:
            hist = self._latency[op] = TELEMETRY.metrics.histogram(
                f"transport.latency.{op}")
        hist.observe(elapsed)

    def request_withdrawn(self, op: str) -> None:
        """A request was aborted before any reply (send error, timeout)."""
        with self._lock:
            self.in_flight -= 1
            self.requests_failed += 1

    def request_served(self, op: str) -> None:
        """An inbound request was handled locally (other side of the wire)."""
        with self._lock:
            self.requests_served += 1
            self.last_activity = time.monotonic()

    def record_close_error(self, reason: str) -> None:
        """A session teardown failed; keep it observable, not silent."""
        with self._lock:
            self.close_errors += 1
            self.last_close_error = reason

    def snapshot(self) -> dict[str, Any]:
        """A plain-data copy of every counter, for tests and monitoring."""
        with self._lock:
            per_op = {}
            for op, (count, out, in_, total, peak) in self._per_op.items():
                count = int(count)
                per_op[op] = {
                    "count": count,
                    "bytes_in": int(in_),
                    "total_latency_s": total,
                    "mean_latency_s": (total / count) if count else 0.0,
                    "max_latency_s": peak,
                }
            return {
                "requests_sent": self.requests_sent,
                "replies_received": self.replies_received,
                "requests_served": self.requests_served,
                "requests_failed": self.requests_failed,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "in_flight": self.in_flight,
                "max_in_flight": self.max_in_flight,
                "close_errors": self.close_errors,
                "last_close_error": self.last_close_error,
                "per_op": per_op,
            }


class PendingReply:
    """A per-request future: one in-flight operation awaiting its reply."""

    __slots__ = ("channel", "rid", "op", "started", "span", "ring",
                 "_event", "_fields", "_payload", "_error")

    def __init__(self, channel: "Channel", rid: int, op: str) -> None:
        self.channel = channel
        self.rid = rid
        self.op = op
        self.started = time.monotonic()
        #: The frame span covering this request's wire round trip (only
        #: set while tracing; finished at settle/withdraw time).
        self.span = None
        #: The submission ring whose outstanding count this request is
        #: part of — set at *flush* time (not enqueue), cleared on the
        #: first settle/withdraw so the ring is notified exactly once.
        self.ring = None
        self._event = threading.Event()
        self._fields: dict[str, Any] | None = None
        self._payload = b""
        self._error: BaseException | None = None

    def _notify_ring(self) -> None:
        ring = self.ring
        if ring is not None:
            self.ring = None
            ring.on_settle()

    def resolve(self, fields: dict[str, Any], payload: bytes) -> None:
        if self._event.is_set():
            return
        self._fields = fields
        self._payload = payload
        self.channel.counters.request_settled(
            self.op, len(payload), time.monotonic() - self.started)
        if self.span is not None:
            TELEMETRY.finish(self.span)
        self._event.set()
        self._notify_ring()

    def fail(self, error: BaseException) -> None:
        if self._event.is_set():
            return
        self._error = error
        self.channel.counters.request_settled(
            self.op, 0, time.monotonic() - self.started, ok=False)
        if self.span is not None:
            self.span.set(error=type(error).__name__)
            TELEMETRY.finish(self.span, status="error")
        self._event.set()
        self._notify_ring()

    def wait(self, timeout: "float | Deadline | None" = None
             ) -> tuple[dict[str, Any], bytes]:
        """Block for the reply; raises on channel death or deadline expiry.

        *timeout* is a :class:`~repro.core.policy.Deadline` or the
        legacy seconds-from-now float.
        """
        deadline = Deadline.coerce(timeout)
        if not self._event.wait(deadline.timeout()):
            withdrawn = self.channel._withdraw(self.rid) is self
            if withdrawn:
                self.channel.counters.request_withdrawn(self.op)
                # A timed-out flushed op still settles its ring slot —
                # otherwise a dropped frame would wedge the ring's
                # completion pacing forever.
                self._notify_ring()
                if self.span is not None:
                    TELEMETRY.finish(self.span, status="timeout")
                raise DeadlineExceededError(
                    f"no reply to {self.op!r} (rid {self.rid}) "
                    f"within its deadline")
            self._event.wait()  # resolution was racing; it is imminent
        if self._error is not None:
            raise self._error
        return self._fields or {}, self._payload


class _BatchPending:
    """The wire-level future of one multi-op frame.

    Registered under the frame's own rid so :meth:`Channel._dispatch`
    routes the aggregate reply here; :meth:`resolve` then demuxes the
    per-op reply fields and payload slices back to the sub-ops'
    :class:`PendingReply` futures.  Deliberately *not* counted by the
    transport counters — the frame is plumbing; only its sub-ops are
    requests.
    """

    __slots__ = ("channel", "rid", "op", "span", "started", "sub_rids")

    def __init__(self, channel: "Channel", rid: int,
                 sub_rids: list[int]) -> None:
        self.channel = channel
        self.rid = rid
        self.op = "batch"
        self.span = None
        self.started = time.monotonic()
        self.sub_rids = sub_rids

    def resolve(self, fields: dict[str, Any], payload: bytes) -> None:
        rs = fields.get("rs")
        if not fields.get("ok", False) or not isinstance(rs, list):
            # A batch-level failure (admission reject, malformed-frame
            # error): every sub-op resolves with its own copy of the
            # error fields, exactly as if it had been rejected alone —
            # the caller's raise_for_response sees the identical error.
            for rid in self.sub_rids:
                pending = self.channel._withdraw(rid)
                if pending is not None:
                    pending.resolve(dict(fields), b"")
            return
        lens = fields.get("lens") or []
        view = memoryview(payload or b"")
        offset = 0
        for index, sub in enumerate(rs):
            try:
                size = max(0, int(lens[index])) if index < len(lens) else 0
            except (TypeError, ValueError):
                size = 0
            chunk = bytes(view[offset:offset + size]) if size else b""
            offset += size
            if not isinstance(sub, dict) or "rid" not in sub:
                continue
            try:
                rid = int(sub.pop("rid"))
            except (TypeError, ValueError):
                continue
            pending = self.channel._withdraw(rid)
            if pending is None:
                continue  # withdrawn (timed out) while the frame flew
            if "tsp" in sub:  # spans the peer produced serving this sub
                TELEMETRY.ingest(sub.pop("tsp"), anchor=pending.span)
            pending.resolve(sub, chunk)
        # Sub-ops absent from rs (an injected per-sub drop) stay
        # pending; their per-attempt timeouts withdraw and retry them.

    def fail(self, error: BaseException) -> None:
        # Channel death: kill() clears _pending first and fails every
        # sub directly, so these withdraws are usually no-ops; they
        # matter on the send-failure path, where the subs still live.
        for rid in self.sub_rids:
            pending = self.channel._withdraw(rid)
            if pending is not None:
                pending.fail(error)


class _Ring:
    """Per-channel submission/completion ring coalescing ops into frames.

    Callers enqueue already-registered requests; the ring decides when
    to put them on the wire.  The flush policy is completion-paced, the
    way io_uring amortizes syscalls: with nothing outstanding the first
    op flushes immediately (an idle channel pays zero added latency —
    and a lone op passes through as a plain frame, byte-identical to
    the unbatched transport); while ops are outstanding, arrivals
    accumulate, and the next completion flushes them as *one* multi-op
    frame — one syscall, one host wakeup for N ops.  A flush takes at
    most :data:`BATCH_MAX_OPS` ops / :data:`BATCH_MAX_BYTES` payload;
    the remainder rides the next completion.

    ``outstanding`` counts flushed-but-unsettled *sub-ops*, and every
    settle path — resolve, fail, and a timed-out ``wait()``'s
    withdraw — decrements it, so dropped or lost frames drain the ring
    instead of wedging it.
    """

    __slots__ = ("channel", "chan", "_lock", "_queue", "outstanding")

    def __init__(self, channel: "Channel", chan: int) -> None:
        self.channel = channel
        self.chan = chan
        # Reentrant: a send failure inside a flush fails the batch's
        # futures, whose settle notifications re-enter this lock.
        self._lock = threading.RLock()
        self._queue: deque = deque()
        self.outstanding = 0

    def enqueue(self, pending: PendingReply, fields: dict[str, Any],
                parts: tuple, deadline: Deadline) -> None:
        with self._lock:
            self._queue.append((pending, fields, parts, deadline))
            # Strictly completion-paced: while ops are outstanding,
            # arrivals wait client-side.  That is what bounds the
            # host's queue (the intake throttle keeps seeing one
            # frame's worth of work) — the host serves this channel
            # serially anyway, so sending early could only move the
            # queueing across the wire.
            if self.outstanding == 0:
                self._flush_locked()

    def on_settle(self) -> None:
        """One flushed sub-op settled (reply, failure, or timeout)."""
        with self._lock:
            if self.outstanding > 0:
                self.outstanding -= 1
            if self.outstanding == 0 and self._queue:
                self._flush_locked()

    def _flush_locked(self) -> None:
        channel = self.channel
        if channel.dead:
            # kill() has already failed every registered future; drain
            # any enqueue that raced it so nothing hangs.
            stale = list(self._queue)
            self._queue.clear()
            error = channel._death_error()
            for pending, _fields, _parts, _deadline in stale:
                live = channel._withdraw(pending.rid)
                if live is not None:
                    live.fail(error)
            return
        batch: list = []
        size = 0
        while self._queue and len(batch) < BATCH_MAX_OPS:
            entry = self._queue[0]
            nbytes = sum(len(p) for p in entry[2])
            if batch and size + nbytes > BATCH_MAX_BYTES:
                break
            self._queue.popleft()
            with channel._pending_lock:
                live = channel._pending.get(entry[0].rid) is entry[0]
            if not live:
                continue  # withdrawn (timed out) while queued here
            batch.append(entry)
            size += nbytes
        if not batch:
            return
        plane = getattr(channel, "faults", None)
        if plane is not None and len(batch) > 1:
            # The `batch` fault point: per-sub drop (the op vanishes
            # from the frame; its future times out and retries) or
            # corrupt (a mangled header the host rejects) — exercised
            # only on genuinely multi-op frames.
            kept: list = []
            for entry in batch:
                rule = plane.on_batch(entry[1])
                if rule is None:
                    kept.append(entry)
                elif rule.action == "corrupt":
                    mangled = dict(entry[1])
                    mangled["cmd"] = f"corrupt:{mangled.get('cmd', '')}"
                    kept.append((entry[0], mangled, entry[2], entry[3]))
            batch = kept
            if not batch:
                return
        for pending, _fields, _parts, _deadline in batch:
            pending.ring = self
        self.outstanding += len(batch)
        try:
            if len(batch) == 1:
                pending, fields, parts, deadline = batch[0]
                _BATCH_SINGLETON.inc()
                channel._send_op(self.chan, pending, fields, parts,
                                 deadline)
            else:
                _BATCH_FLUSHES.inc()
                _BATCH_OPS.inc(len(batch))
                self._send_batch(batch)
        except BaseException as exc:
            # The error surfaces through the futures (their waiters sit
            # in wait(), the same place transport failures land when
            # unbatched); each fail() settles its ring slot.
            for pending, _fields, _parts, _deadline in batch:
                live = channel._withdraw(pending.rid)
                if live is not None:
                    live.fail(exc)

    def _send_batch(self, batch: list) -> None:
        channel = self.channel
        ops: list[dict[str, Any]] = []
        lens: list[int] = []
        parts_out: list = []
        for pending, fields, parts, deadline in batch:
            sub = dict(fields)
            sub["rid"] = pending.rid
            # Budgets are computed at send time, so ring wait counted
            # against the sender — same rule as the direct path.
            budget_ms = deadline.to_ms()
            if budget_ms is not None:
                sub["dl"] = budget_ms
            if pending.span is not None:
                sub["tc"] = (pending.span.trace, pending.span.sid)
            ops.append(sub)
            size = 0
            for part in parts:
                parts_out.append(part)
                size += len(part)
            lens.append(size)
        brid = channel._next_rid_locked()
        envelope = {"cmd": "batch", "rid": brid, "chan": self.chan,
                    "n": len(ops), "ops": ops, "lens": lens}
        frame = _BatchPending(channel, brid,
                              [entry[0].rid for entry in batch])
        with channel._pending_lock:
            channel._pending[brid] = frame
        try:
            channel._send(envelope, tuple(parts_out))
        except BaseException:
            channel._withdraw(brid)
            raise


class _ChanWorker:
    """Serial executor thread for one logical channel's inbound requests.

    The legacy (pre-event-loop) serving model, kept selectable via
    ``REPRO_HOST_MODE=threads`` for one release.  The serving body is
    :func:`repro.core.hostloop.serve_one` — shared with the loop's
    executors, so the two modes cannot drift apart semantically.
    """

    def __init__(self, channel: "Channel", chan: int, handler: Handler,
                 name: str) -> None:
        self.channel = channel
        self.chan = chan
        self.handler = handler
        self.queue: SimpleQueue = SimpleQueue()
        self.thread = threading.Thread(target=self._loop, name=name,
                                       daemon=True)
        self.thread.start()

    def submit(self, rid: int, fields: dict[str, Any],
               payload: bytes) -> None:
        # Re-anchor the sender's remaining budget (``dl``, milliseconds)
        # on the local monotonic clock at enqueue time; the queue wait
        # counts against it.  The trace context (``tc``) rides the same
        # way: popped here, re-parented by the worker.
        deadline = Deadline.from_ms(fields.pop("dl", None))
        tc = fields.pop("tc", None)
        if fields.get("cmd") == "batch" and "ops" in fields:
            # Multi-op frames unpack at intake time here too, so the
            # threads mode re-anchors per-sub budgets at the same point
            # as the event loop.
            try:
                subs = hostloop.unpack_batch(fields, payload)
            except (ValueError, TypeError) as exc:
                try:
                    self.channel._send_reply(
                        rid, self.chan,
                        control.error_fields(ProtocolError(str(exc))), b"")
                except (ChannelClosedError, OSError, ValueError):
                    pass
                return
            self.queue.put((rid, {"cmd": "batch", "subs": subs}, b"",
                            Deadline.never(), None))
            return
        self.queue.put((rid, fields, payload, deadline, tc))

    def stop(self) -> None:
        self.queue.put(None)
        if threading.current_thread() is not self.thread:
            self.thread.join(timeout=JOIN_TIMEOUT)

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            rid, fields, payload, deadline, tc = item
            subs = fields.get("subs") if fields.get("cmd") == "batch" \
                else None
            if subs is not None:
                alive = hostloop.serve_batch(self.channel, self.chan,
                                             self.handler, rid, subs)
            else:
                alive = hostloop.serve_one(self.channel, self.chan,
                                           self.handler, rid, fields,
                                           payload, deadline, tc)
            if not alive:
                return  # peer is gone; nothing left to answer to


class Channel:
    """The multiplexed request/reply core, independent of the byte transport.

    Subclasses provide :meth:`_send` (deliver one enveloped message to
    the peer) and arrange for inbound messages to reach
    :meth:`_dispatch`.
    """

    def __init__(self, name: str = "channel") -> None:
        self.name = name
        self.counters = ChannelCounters()
        # Re-home this connection's counters under telemetry.snapshot();
        # the registry holds only a weak reference, so a closed channel's
        # entry disappears with it.
        TELEMETRY.register_collector("transport", name, self.counters,
                                     ChannelCounters.snapshot)
        self.dead = False
        self.death_reason = ""
        self.death_error: BaseException | None = None
        #: Optional ``reason -> exception`` hook; when set, transport
        #: death fails in-flight futures with the typed error it builds
        #: (the sentinel host installs a crash-error factory here).
        self.crash_error_factory: "Callable[[str], BaseException] | None" = None
        self._closed_event = threading.Event()
        self._pending: dict[int, PendingReply] = {}
        self._pending_lock = threading.Lock()
        self._next_rid = 0
        self._rid_lock = threading.Lock()
        #: Whether :meth:`request_async` may coalesce session-channel
        #: ops into multi-op frames (only the wire transport opts in).
        self.batching = False
        #: chan -> :class:`_Ring`, created lazily per session channel.
        self._rings: dict[int, _Ring] = {}
        self._rings_lock = threading.Lock()
        #: chan -> serving state: a loop :class:`~repro.core.hostloop
        #: ._ChanState` or a legacy :class:`_ChanWorker`; both expose
        #: ``submit``/``stop``.
        self._handlers: dict[int, Any] = {}
        self._handlers_lock = threading.Lock()
        #: Pin this channel's serving to a specific
        #: :class:`~repro.core.hostloop.EventLoopServer` (tests);
        #: defaults to the process-shared loop.
        self.loop = None
        #: The loop actually serving this channel's handlers (set by
        #: the first :meth:`register`; None in threads mode).
        self.serve_loop = None

    # -- requester side ----------------------------------------------------------

    def request_async(self, chan: int, fields: dict[str, Any],
                      payload: Any = b"",
                      deadline: "Deadline | float | None" = None
                      ) -> PendingReply:
        """Send one request and return its future without waiting.

        *payload* may be a single buffer (``bytes``/``bytearray``/
        ``memoryview``) or a sequence of buffers to gather under one
        frame — the scatter-gather path used by the vectored ops.
        A bounded *deadline* travels with the request as its remaining
        millisecond budget (the ``dl`` envelope field), so the peer's
        worker and any nested exchanges inherit it.
        """
        self._check_alive()
        deadline = Deadline.coerce(deadline)
        rid = self._next_rid_locked()
        op = str(fields.get("cmd") or fields.get("op") or "?")
        pending = PendingReply(self, rid, op)
        with self._pending_lock:
            self._pending[rid] = pending
        parts = _payload_parts(payload)
        self.counters.request_started(op, sum(len(p) for p in parts))
        if TELEMETRY.tracing:  # one branch per frame when disabled
            parent = TELEMETRY.current()
            if parent is not None:
                pending.span = TELEMETRY.begin(f"frame.{op}", parent=parent,
                                               attrs={"chan": int(chan)})
        ring = self._ring_for(int(chan))
        if ring is not None:
            # The submission ring owns the wire from here: the op may
            # coalesce with its neighbours into one multi-op frame.
            # Send errors surface through pending.wait(), the same
            # place they land for an unbatched transport failure.
            ring.enqueue(pending, fields, parts, deadline)
            return pending
        try:
            self._send_op(chan, pending, fields, parts, deadline)
        except BaseException:
            if self._withdraw(rid) is pending:
                self.counters.request_withdrawn(op)
                if pending.span is not None:
                    TELEMETRY.finish(pending.span, status="error")
            raise
        if self.dead:
            # lost the race against kill(): nobody will resolve us
            pending.fail(self._death_error())
        return pending

    def _next_rid_locked(self) -> int:
        with self._rid_lock:
            self._next_rid += 1
            return self._next_rid

    def _send_op(self, chan: int, pending: PendingReply,
                 fields: dict[str, Any], parts: tuple,
                 deadline: Deadline) -> None:
        """Wire one registered request (direct path and ring flushes).

        The ``dl`` budget is stamped *here*, at send time — any wait in
        the submission ring counts against the sender's budget instead
        of silently extending it.
        """
        envelope = {**fields, "rid": pending.rid, "chan": int(chan)}
        budget_ms = deadline.to_ms()
        if budget_ms is not None:
            envelope["dl"] = budget_ms
        if pending.span is not None:
            envelope["tc"] = (pending.span.trace, pending.span.sid)
        self._send(envelope, parts)

    def _ring_for(self, chan: int) -> "_Ring | None":
        if not self.batching or chan == CONTROL_CHAN:
            return None  # control/bridge ops must never wait on a ring
        with self._rings_lock:
            ring = self._rings.get(chan)
            if ring is None:
                ring = self._rings[chan] = _Ring(self, chan)
            return ring

    def request(self, chan: int, fields: dict[str, Any],
                payload: Any = b"",
                timeout: "float | Deadline | None" = None
                ) -> tuple[dict[str, Any], bytes]:
        """One pipelinable command/response round trip."""
        deadline = Deadline.coerce(timeout)
        return self.request_async(chan, fields, payload,
                                  deadline=deadline).wait(deadline)

    # -- responder side ----------------------------------------------------------

    def register(self, chan: int, handler: Handler, *,
                 name: str | None = None, blocking: bool = True) -> None:
        """Serve inbound requests on *chan* with *handler*.

        Requests on one channel execute strictly in order; requests on
        distinct channels execute concurrently.  Serving runs on the
        process's event-loop host (``blocking=False`` promises the
        handler never blocks and lets it run inline on the scheduler
        tick); with ``REPRO_HOST_MODE=threads`` each channel instead
        gets the legacy dedicated worker thread.

        Session channels are subject to the loop's admission control;
        channel 0 (the control/bridge plane) is exempt — ``open``,
        ``ping`` and bridge traffic must never be load-shed.
        """
        chan = int(chan)
        label = name or f"{self.name}-chan{chan}"
        if hostloop.loop_serving_enabled():
            server = self.loop if self.loop is not None \
                else hostloop.shared_loop()
            worker = server.attach(self, chan, handler, name=label,
                                   blocking=blocking,
                                   governed=chan != CONTROL_CHAN)
            self.serve_loop = server
        else:
            worker = _ChanWorker(self, chan, handler, label)
        with self._handlers_lock:
            old = self._handlers.get(chan)
            self._handlers[chan] = worker
        if old is not None:
            old.stop()

    def unregister(self, chan: int) -> None:
        with self._handlers_lock:
            worker = self._handlers.pop(int(chan), None)
        if worker is not None:
            worker.stop()

    # -- routing ----------------------------------------------------------------

    def _dispatch(self, fields: dict[str, Any], payload: bytes) -> None:
        """Route one inbound message: reply -> future, request -> worker."""
        rid, chan, is_reply, rest = control.split_envelope(fields)
        if is_reply:
            pending = self._withdraw(rid)
            if pending is not None:
                if "tsp" in rest:  # spans the peer produced serving us
                    TELEMETRY.ingest(rest.pop("tsp"), anchor=pending.span)
                pending.resolve(rest, payload)
            return
        with self._handlers_lock:
            worker = self._handlers.get(chan)
        if worker is None:
            try:
                self._send_reply(rid, chan, control.error_fields(
                    ProtocolError(f"no handler for channel {chan}")), b"")
            except (ChannelClosedError, OSError, ValueError):
                pass
            return
        worker.submit(rid, rest, payload)

    def _withdraw(self, rid: int) -> PendingReply | None:
        with self._pending_lock:
            return self._pending.pop(rid, None)

    def _send_reply(self, rid: int, chan: int, fields: dict[str, Any],
                    payload: Any) -> None:
        self._send({**fields, "rid": rid, "chan": chan, "re": True},
                   _payload_parts(payload))

    # -- lifecycle ---------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.dead:
            raise ChannelClosedError(
                f"{self.name}: channel closed ({self.death_reason})")

    def _death_error(self) -> BaseException:
        """The error describing this (dead) channel's demise."""
        error = self.death_error
        if error is None:
            error = ChannelClosedError(
                f"{self.name}: channel closed ({self.death_reason})")
        return error

    def kill(self, reason: str, error: BaseException | None = None) -> None:
        """Mark the channel dead and fail every outstanding request.

        *error* (or the installed :attr:`crash_error_factory`) types the
        failure handed to in-flight futures — a crashed sentinel host
        surfaces as ``SentinelCrashedError`` rather than a bare closed
        channel.
        """
        with self._pending_lock:
            if self.dead:
                return
            self.dead = True
            self.death_reason = reason
            pending = list(self._pending.values())
            self._pending.clear()
        if error is None and self.crash_error_factory is not None:
            try:
                error = self.crash_error_factory(reason)
            except Exception:
                error = None
        if error is None:
            error = ChannelClosedError(f"{self.name}: {reason}")
        self.death_error = error
        for future in pending:
            future.fail(error)
        with self._handlers_lock:
            workers = list(self._handlers.values())
            self._handlers.clear()
        for worker in workers:
            worker.stop()
        self._teardown()
        self._closed_event.set()

    def close(self) -> None:
        # A deliberate close is not a crash: bypass the factory.
        self.kill("channel closed",
                  error=ChannelClosedError(f"{self.name}: channel closed"))

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until the channel dies (peer EOF or local close)."""
        return self._closed_event.wait(timeout)

    def _teardown(self) -> None:
        """Subclass hook: release transport resources (idempotent)."""

    def _send(self, fields: dict[str, Any], parts: tuple) -> None:
        """Deliver one enveloped message; *parts* is a tuple of buffers
        forming the payload back-to-back."""
        raise NotImplementedError


class StreamChannel(Channel):
    """A channel over a byte-stream pair, framed and demultiplexed.

    A background reader thread decodes inbound frames and routes them;
    writes from any thread are serialized by a lock.
    """

    def __init__(self, rfile: BinaryIO, wfile: BinaryIO,
                 name: str = "stream-channel") -> None:
        super().__init__(name)
        self._rfile = rfile
        self._wfile = wfile
        # Only the wire transport batches: a frame and a syscall are
        # what coalescing amortizes.  LocalChannel crosses by reference
        # and would gain nothing.
        self.batching = not os.environ.get(ENV_NO_BATCH)
        self._write_lock = threading.Lock()
        self._reader: threading.Thread | None = None
        #: Optional :class:`~repro.core.faults.FaultPlane` consulted on
        #: every send/receive (the framing-layer injection points).
        self.faults = None
        #: Callback for the ``kill`` fault action (the sentinel host
        #: wires this to hard-killing its child process).
        self.fault_kill: "Callable[[], None] | None" = None

    def start(self) -> "StreamChannel":
        """Start the demultiplexer; the channel is unusable before this."""
        self._reader = threading.Thread(target=self._read_loop,
                                        name=f"{self.name}-demux",
                                        daemon=True)
        self._reader.start()
        return self

    def _read_loop(self) -> None:
        try:
            while True:
                try:
                    fields, payload = control.read_wire_message(self._rfile)
                    plane = self.faults
                    if plane is not None:
                        rule = plane.on_recv(fields)
                        if rule is not None and rule.action == "drop":
                            continue  # inbound message lost after decode
                    self._dispatch(fields, payload)
                    server = self.serve_loop
                    if server is not None:
                        # Backpressure: past the intake high-water mark
                        # the reader stalls here, leaving the flood in
                        # the kernel pipe instead of this process.
                        server.throttle(self)
                except (ChannelClosedError, FrameError, OSError,
                        ValueError) as exc:
                    self.kill(f"transport closed: {exc}")
                    return
        finally:
            # The reader owns _rfile's closure (see _teardown).
            _close_quietly(self._rfile)

    def _send(self, fields: dict[str, Any], parts: tuple) -> None:
        self._check_alive()
        plane = self.faults
        if plane is not None:
            rule = plane.on_send(fields)
            if rule is not None and self._inject_send_fault(rule):
                return  # the frame never reached the wire
        # Hot-op headers pack to a tagged struct; everything else (and
        # anything the binary codec does not recognize) stays JSON.
        head = control.encode_head_wire(fields)
        if head is None:
            head = control.encode_head(fields)
            _HDR_JSON.inc()
        else:
            _HDR_BINARY.inc()
        try:
            with self._write_lock:
                # Every part rides the frame as its own write: headers,
                # blocks, and gathered extents are never concatenated.
                write_frame(self._wfile, head, *parts)
        except (BrokenPipeError, OSError, ValueError) as exc:
            self.kill(f"transport write failed: {exc}")
            raise ChannelClosedError(f"{self.name}: write failed: {exc}") from exc

    def _inject_send_fault(self, rule) -> bool:
        """Apply one fired send-point fault; True = swallow the frame."""
        if rule.action == "drop":
            return True
        if rule.action == "delay":
            time.sleep(rule.seconds)
            return False
        if rule.action == "kill":
            kill = self.fault_kill
            if kill is not None:
                kill()
            # Fall through to the real write: it races the dying peer,
            # exactly like an organic crash.
            return False
        if rule.action == "corrupt":
            # The peer decodes garbage, raises FrameError, and tears its
            # end down; the intended frame is lost.
            try:
                with self._write_lock:
                    write_frame(self._wfile, b"\xff" * 16)
            except (BrokenPipeError, OSError, ValueError):
                pass
            return True
        if rule.action == "eof":
            # A frame header promising more bytes than will ever come,
            # then the connection drops: EOF mid-frame on the peer.
            try:
                with self._write_lock:
                    self._wfile.write((1 << 16).to_bytes(4, "big") + b"\x00")
            except (BrokenPipeError, OSError, ValueError):
                pass
            self.kill("fault injected: EOF mid-frame")
            raise ChannelClosedError(
                f"{self.name}: fault injected: EOF mid-frame")
        return False

    def _teardown(self) -> None:
        # Serialize with in-flight senders: a thread between _send's
        # liveness check and the actual write(2) must never observe its
        # descriptor closed underneath it — the freed fd number can be
        # recycled by an unrelated pipe, and the straggler would then
        # write into (or poach bytes from) someone else's transport.  If
        # the lock cannot be had (a sender blocked on a full pipe is
        # already inside write(2), where the kernel pins the open file
        # description), closing is safe anyway.
        acquired = self._write_lock.acquire(timeout=JOIN_TIMEOUT)
        try:
            _close_quietly(self._wfile)
        finally:
            if acquired:
                self._write_lock.release()
        # Same hazard on the read side: only the reader thread may close
        # _rfile, since it may be between FileIO's fd check and read(2).
        # Closing our write end above gives the peer EOF; the peer's
        # teardown closes its write end, our reader unblocks on EOF and
        # closes _rfile on the way out (_read_loop's finally).
        if self._reader is None or threading.current_thread() is self._reader:
            _close_quietly(self._rfile)


class LocalChannel(Channel):
    """An in-memory channel endpoint: same semantics, no serialization.

    Use :meth:`pair` to create two connected endpoints.  Messages cross
    by reference — the thread strategy's "only one user-level copy"
    property (here: zero copies), with the same envelope, demux,
    pipelining and counters as the wire transport.
    """

    def __init__(self, name: str = "local-channel") -> None:
        super().__init__(name)
        self._peer: LocalChannel | None = None

    @classmethod
    def pair(cls, name: str = "local") -> "tuple[LocalChannel, LocalChannel]":
        a = cls(f"{name}:a")
        b = cls(f"{name}:b")
        a._peer = b
        b._peer = a
        return a, b

    def _send(self, fields: dict[str, Any], parts: tuple) -> None:
        self._check_alive()
        peer = self._peer
        if peer is None or peer.dead:
            raise ChannelClosedError(f"{self.name}: peer is closed")
        if len(parts) == 1 and isinstance(parts[0], bytes):
            payload = parts[0]  # cross by reference: zero copies
        else:
            # Handlers receive immutable bytes; materialize views and
            # gathered extents so the sender may reuse its buffers.
            payload = b"".join(parts)
        peer._dispatch(fields, payload)

    def kill(self, reason: str, error: BaseException | None = None) -> None:
        super().kill(reason, error=error)
        peer = self._peer
        if peer is not None and not peer.dead:
            peer.kill(f"peer closed: {reason}")
