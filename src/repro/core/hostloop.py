"""The event-loop sentinel host: O(1) threads for O(n) logical channels.

The paper's §2 contract — "multiple opens spawn multiple synchronizing
sentinels" — was historically served by one dedicated worker thread per
logical channel (``_ChanWorker`` in :mod:`repro.core.channel`).  That
caps host concurrency at thread overhead long before "millions of
users": a pooled host with a thousand opens carried a thousand stacks.

:class:`EventLoopServer` replaces the per-channel threads with one
scheduler and a small fixed executor pool, preserving the two
properties the worker model guaranteed:

* **serial per channel** — one channel's requests execute strictly in
  arrival order (that *is* the §2 semantic contract: one open, one
  synchronizing sentinel);
* **concurrent across channels** — distinct channels make progress
  independently, now bounded by the executor pool instead of the
  thread count.

Scheduling is round-robin over ready channels: a channel finishing an
op goes to the *tail* of the ready queue, so a saturated channel can
delay an idle sibling by at most the ops currently ahead of it — never
starve it.  Admission control bounds the damage of a flood: past the
global in-flight high-water mark (or a channel's FIFO bound), session
requests are fast-rejected with a typed
:class:`~repro.errors.HostOverloadedError` *from the reader thread*,
so a reject costs no queueing at all.  The control/bridge channel
(channel 0) is exempt — ``open``/``ping``/bridge traffic must never be
rejected, or recovery itself would be load-shed.

Backpressure is the transport's reader throttling itself
(:meth:`throttle`): past the intake high-water mark the reader stops
decoding frames until the backlog drains below the low-water mark.
The stall is conditional on the connection having **zero in-flight
outbound requests**: replies are resolved by the reader thread itself,
and a sentinel's bridge calls ride the same connection — stalling
while a reply is owed would deadlock the very handler we are waiting
for.

Deadline (``dl``) and trace-context (``tc``) re-anchoring is
byte-identical to the worker model: both are popped at submit time on
the reader thread, so queue wait counts against the sender's budget,
and the dispatch span parents on the sender's frame span (see
:func:`serve_one`, shared with the legacy workers).

The legacy model stays selectable for one release via the
``REPRO_HOST_MODE=threads`` environment kill switch (read per
``register()`` call, so tests can flip it with ``monkeypatch``).
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections import deque
from queue import SimpleQueue
from typing import Any, Callable

from repro.core import control, policy
from repro.core.policy import Deadline
from repro.core.telemetry import TELEMETRY
from repro.errors import (
    ChannelClosedError,
    DeadlineExceededError,
    HostOverloadedError,
    ProtocolError,
)

__all__ = [
    "EventLoopServer",
    "TimerHandle",
    "serve_one",
    "serve_batch",
    "unpack_batch",
    "latency_split_stats",
    "shared_loop",
    "loop_serving_enabled",
    "serving_stats",
]

#: Admission rejects, module-cached so the reject path (which must stay
#: cheap — that is its whole point) never takes the registry lock.
_REJECTS = TELEMETRY.metrics.counter("host.rejects.total")
_STALLS = TELEMETRY.metrics.counter("host.backpressure.stalls")

#: Multi-op frame serving tallies (the host-side ``batch.*`` family).
_BATCH_FRAMES = TELEMETRY.metrics.counter("batch.frames.served")
_BATCH_OPS = TELEMETRY.metrics.counter("batch.ops.served")

#: End-to-end host latency, split at the scheduling grant: time an
#: admitted request waited in its channel FIFO vs time its handler ran.
#: The split is what makes batching wins legible — coalescing shrinks
#: queue wait without touching service time.
_QWAIT = TELEMETRY.metrics.histogram("host.queue_wait_s")
_SERVICE = TELEMETRY.metrics.histogram("host.service_s")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def loop_serving_enabled() -> bool:
    """False iff the ``REPRO_HOST_MODE=threads`` kill switch is set."""
    return os.environ.get("REPRO_HOST_MODE", "").strip().lower() != "threads"


def _execute_one(channel, chan: int, handler, fields: dict[str, Any],
                 payload: bytes, deadline: Deadline, tc):
    """Run one request body; returns its ``(fields, payload)`` reply.

    The single execution body shared by unbatched serving
    (:func:`serve_one`) and multi-op frames (:func:`serve_batch`) —
    every sub-op of a batch gets the same span parenting, deadline
    check, nested-budget inheritance and error envelope it would get
    alone.  A handler raising *any* exception — ``BaseException``
    included — still produces an error reply: a teardown-grade failure
    (``SystemExit`` from a dying sentinel, say) must never leave the
    peer's reply future unresolved.
    """
    op = str(fields.get("cmd") or fields.get("op") or "?")
    span = collector = None
    if tc is not None and isinstance(tc, (list, tuple)) and len(tc) == 2:
        # This request is traced: serve it under a dispatch span
        # parented on the sender's frame span, and (in sentinel
        # children) capture everything it causes for the reply.
        if TELEMETRY.piggyback:
            collector = TELEMETRY.start_collect()
        span = TELEMETRY.begin(f"dispatch.{op}", trace=str(tc[0]),
                               parent=str(tc[1]), push=True)
    if deadline.expired():
        # The caller has already given up (and withdrawn the rid);
        # answer with the typed expiry rather than doing work nobody
        # is waiting for.
        out_fields, out_payload = control.error_fields(
            DeadlineExceededError(
                f"{op!r}: deadline expired before execution")), b""
    else:
        remaining_ms = deadline.to_ms()
        if remaining_ms is not None:
            # Nested exchanges (e.g. a dispatcher's bridge calls)
            # inherit what is left of the caller's budget.
            fields["dl"] = remaining_ms
        try:
            out_fields, out_payload = handler(fields, payload)
        except BaseException as exc:
            out_fields, out_payload = control.error_fields(exc), b""
    if span is not None:
        TELEMETRY.finish(
            span, status="ok" if out_fields.get("ok", True) else "error")
        if collector is not None:
            out_fields["tsp"] = TELEMETRY.end_collect(
                collector, anchor_us=span.start_us)
    channel.counters.request_served(op)
    return out_fields, out_payload


def serve_one(channel, chan: int, handler, rid: int,
              fields: dict[str, Any], payload: bytes,
              deadline: Deadline, tc) -> bool:
    """Serve one inbound request and send its reply.

    The single serving body shared by the event loop's executors and
    the legacy per-channel workers — extracting it is what makes the
    ``dl``/``tc`` semantics of the two modes identical by construction.
    Returns False when the peer is gone (callers stop serving the
    channel).
    """
    out_fields, out_payload = _execute_one(channel, chan, handler,
                                           fields, payload, deadline, tc)
    try:
        channel._send_reply(rid, chan, out_fields, out_payload)
    except (ChannelClosedError, OSError, ValueError):
        return False  # peer is gone; nothing left to answer to
    return True


def unpack_batch(fields: dict[str, Any], payload: bytes) -> list[tuple]:
    """Split a multi-op frame into its re-anchored sub-requests.

    Returns ``[(rid, fields, payload, Deadline, tc), ...]`` in wire
    order.  Per-sub ``dl`` budgets re-anchor on the local monotonic
    clock *here* — at intake time, on the reader thread — which is the
    same point (hence the same semantics) as unbatched submission.
    Raises ``ValueError`` on a malformed frame.
    """
    ops = fields.get("ops")
    lens = fields.get("lens")
    if (not isinstance(ops, list) or not isinstance(lens, list)
            or len(ops) != len(lens) or not ops):
        raise ValueError("malformed batch frame: ops/lens mismatch")
    view = memoryview(payload or b"")
    subs: list[tuple] = []
    offset = 0
    for sub, size in zip(ops, lens):
        if not isinstance(sub, dict) or "rid" not in sub:
            raise ValueError("malformed batch frame: sub-op without rid")
        size = int(size)
        if size < 0 or offset + size > len(view):
            raise ValueError("malformed batch frame: payload overrun")
        sub = dict(sub)
        rid = int(sub.pop("rid"))
        deadline = Deadline.from_ms(sub.pop("dl", None))
        tc = sub.pop("tc", None)
        chunk = bytes(view[offset:offset + size]) if size else b""
        offset += size
        subs.append((rid, sub, chunk, deadline, tc))
    if offset != len(view):
        raise ValueError("malformed batch frame: trailing payload")
    return subs


def serve_batch(channel, chan: int, handler, rid: int,
                subs: list[tuple]) -> bool:
    """Serve one multi-op frame: execute sub-ops in order, reply once.

    Sub-ops run strictly in wire order on the one scheduling grant the
    frame was given — the serial-per-channel contract is preserved by
    construction, and N ops cost one executor hop and one reply frame.
    The aggregate reply carries each sub-op's reply fields (tagged with
    its rid) plus the concatenated reply payloads, split by ``lens``.
    """
    rs: list[dict[str, Any]] = []
    lens: list[int] = []
    parts: list = []
    for sub_rid, sub_fields, sub_payload, sub_deadline, sub_tc in subs:
        out_fields, out_payload = _execute_one(
            channel, chan, handler, sub_fields, sub_payload,
            sub_deadline, sub_tc)
        out_fields["rid"] = sub_rid
        rs.append(out_fields)
        if isinstance(out_payload, (tuple, list)):
            size = 0
            for part in out_payload:
                parts.append(part)
                size += len(part)
            lens.append(size)
        else:
            chunk = out_payload or b""
            parts.append(chunk)
            lens.append(len(chunk))
    _BATCH_FRAMES.inc()
    _BATCH_OPS.inc(len(subs))
    try:
        channel._send_reply(rid, chan,
                            {"ok": True, "n": len(rs), "rs": rs,
                             "lens": lens}, parts)
    except (ChannelClosedError, OSError, ValueError):
        return False
    return True


def latency_split_stats() -> dict[str, float]:
    """Queue-wait vs service-time split of every op this host served.

    Fed by the two global histograms the loop observes around each
    scheduling grant; surfaced through the ``ping`` reply so clients
    (and ``BENCH_swarm.json``) can attribute end-to-end latency to
    waiting vs working.
    """
    out: dict[str, float] = {}
    for label, hist in (("queue_wait", _QWAIT), ("service", _SERVICE)):
        count = hist.count
        out[f"{label}_ops"] = count
        out[f"{label}_mean_us"] = (hist.total / count * 1e6) if count else 0.0
        out[f"{label}_p50_us"] = hist.percentile(0.5) * 1e6
        out[f"{label}_p95_us"] = hist.percentile(0.95) * 1e6
    return out


def _item_weight(fields: dict[str, Any]) -> int:
    """Admission weight of one queued item (a batch of N counts as N)."""
    subs = fields.get("subs")
    return len(subs) if isinstance(subs, list) else 1


class TimerHandle:
    """A cancellable one-shot timer on the scheduler wheel.

    API-compatible with the ``threading.Timer`` objects the host pool's
    idle reapers used to be, minus the thread per timer.
    """

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: Callable[..., Any], args: tuple) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _ChanState:
    """One registered channel's serving state on the loop.

    Implements the worker interface (:meth:`submit`/:meth:`stop`) so
    :class:`~repro.core.channel.Channel` treats loop-served and
    thread-served channels uniformly.
    """

    __slots__ = ("server", "channel", "chan", "handler", "name",
                 "blocking", "governed", "fifo", "qweight", "scheduled",
                 "detached")

    def __init__(self, server: "EventLoopServer", channel, chan: int,
                 handler, name: str, blocking: bool,
                 governed: bool) -> None:
        self.server = server
        self.channel = channel
        self.chan = chan
        self.handler = handler
        self.name = name
        self.blocking = blocking
        self.governed = governed
        self.fifo: deque = deque()
        #: Admission weight of the FIFO: a queued batch of N sub-ops
        #: counts as N against ``queue_depth``, exactly as if the N ops
        #: had arrived unbatched.
        self.qweight = 0
        self.scheduled = False
        self.detached = False

    def submit(self, rid: int, fields: dict[str, Any],
               payload: bytes) -> None:
        self.server.submit(self, rid, fields, payload)

    def stop(self) -> None:
        # Detaching is O(1) and never joins: kill() may run from a
        # handler currently executing on this very state.
        self.server.detach(self)


class EventLoopServer:
    """One scheduler + K executors serving every channel of a process.

    The scheduler thread owns the timer wheel and the round-robin ready
    queue; executors pop exactly one request per scheduling grant, so
    no channel can hold an executor across ops.  All threads are lazy:
    a process that never serves a channel (a pure client) starts none.
    """

    def __init__(self, name: str = "af-loop", *,
                 executors: int | None = None,
                 max_inflight: int | None = None,
                 queue_depth: int | None = None,
                 intake_high: int | None = None,
                 intake_low: int | None = None,
                 publish_gauges: bool = False) -> None:
        self.name = name
        self.executors = executors if executors is not None else _env_int(
            "REPRO_HOST_EXECUTORS", policy.HOST_EXECUTOR_THREADS)
        self.max_inflight = max_inflight if max_inflight is not None \
            else _env_int("REPRO_HOST_MAX_INFLIGHT", policy.HOST_MAX_INFLIGHT)
        self.queue_depth = queue_depth if queue_depth is not None \
            else _env_int("REPRO_HOST_QUEUE_DEPTH", policy.HOST_QUEUE_DEPTH)
        self.intake_high = intake_high if intake_high is not None \
            else min(policy.HOST_INTAKE_HIGH, self.max_inflight)
        self.intake_low = intake_low if intake_low is not None \
            else min(policy.HOST_INTAKE_LOW, max(0, self.intake_high - 1))
        #: When True this server's gauges are published to the global
        #: metrics registry at snapshot time (only the process's shared
        #: loop does, so private test servers cannot clobber them).
        self.publish_gauges = publish_gauges
        self._cond = threading.Condition()
        self._ready: deque[_ChanState] = deque()
        self._timers: list[tuple[float, int, TimerHandle]] = []
        self._timer_seq = itertools.count()
        self._exec_q: SimpleQueue = SimpleQueue()
        self._scheduler: threading.Thread | None = None
        self._exec_threads: list[threading.Thread] = []
        self._stopping = False
        self._channels = 0   # attached states
        self._queued = 0     # admitted requests waiting in a FIFO
        self._inflight = 0   # admitted requests not yet replied to
        self._rejects = 0
        self._stalls = 0
        TELEMETRY.register_collector("host", name, self,
                                     EventLoopServer.stats)

    # -- registration --------------------------------------------------------

    def attach(self, channel, chan: int, handler, *, name: str,
               blocking: bool = True, governed: bool = True) -> _ChanState:
        """Serve *chan* of *channel* on this loop; returns the state.

        ``blocking=False`` promises the handler never blocks (no I/O,
        no nested exchanges): it then runs inline on the scheduler
        thread, skipping the executor hop.  ``governed=False`` exempts
        the channel from admission control (the control/bridge plane).
        """
        state = _ChanState(self, channel, int(chan), handler, name,
                           blocking, governed)
        self._ensure_scheduler()
        with self._cond:
            self._channels += 1
        return state

    def detach(self, state: _ChanState) -> None:
        """Stop serving *state*: queued (unstarted) requests are dropped.

        The requester's futures are not left hanging — a detach only
        happens on unregister/kill, where the channel itself fails
        every outstanding future.
        """
        with self._cond:
            if state.detached:
                return
            state.detached = True
            dropped = sum(_item_weight(item[1]) for item in state.fifo)
            state.fifo.clear()
            state.qweight = 0
            self._queued -= dropped
            self._inflight -= dropped
            self._channels -= 1
            self._cond.notify_all()

    # -- submission (called on the reader thread) ----------------------------

    def submit(self, state: _ChanState, rid: int, fields: dict[str, Any],
               payload: bytes) -> None:
        # Re-anchor the sender's remaining budget (``dl``, milliseconds)
        # on the local monotonic clock at enqueue time; the queue wait
        # counts against it.  The trace context (``tc``) rides the same
        # way: popped here, re-parented at serve time.
        deadline = Deadline.from_ms(fields.pop("dl", None))
        tc = fields.pop("tc", None)
        weight = 1
        if fields.get("cmd") == "batch" and "ops" in fields:
            # Unpack at intake time so every sub-op's budget re-anchors
            # exactly as it would have unbatched; a batch of N then
            # weighs N against admission control — coalescing frames
            # must not smuggle ops past HOST_QUEUE_DEPTH.
            try:
                subs = unpack_batch(fields, payload)
            except (ValueError, TypeError) as exc:
                try:
                    state.channel._send_reply(
                        rid, state.chan,
                        control.error_fields(ProtocolError(str(exc))), b"")
                except (ChannelClosedError, OSError, ValueError):
                    pass
                return
            fields = {"cmd": "batch", "subs": subs}
            payload = b""
            deadline = Deadline.never()
            tc = None
            weight = len(subs)
        reject = None
        with self._cond:
            if state.detached or self._stopping:
                return  # channel is tearing down; kill() fails the peer
            if state.governed and (self._inflight >= self.max_inflight
                                   or state.qweight + weight
                                   > self.queue_depth):
                reject = (f"host overloaded: {self._inflight} in flight "
                          f"(max {self.max_inflight}), channel backlog "
                          f"{state.qweight}+{weight}/{self.queue_depth}")
                self._rejects += 1
            else:
                state.fifo.append((rid, fields, payload, deadline, tc,
                                   time.monotonic()))
                state.qweight += weight
                self._queued += weight
                self._inflight += weight
                if not state.scheduled:
                    state.scheduled = True
                    self._ready.append(state)
                    self._cond.notify_all()
        if reject is not None:
            # Fast-reject straight from the caller (reader) thread: an
            # overloaded host sheds load without queueing it first.
            # The reply may overtake queued siblings on the wire; rid
            # matching makes that harmless.
            _REJECTS.inc()
            try:
                state.channel._send_reply(
                    rid, state.chan,
                    control.error_fields(HostOverloadedError(reject)), b"")
            except (ChannelClosedError, OSError, ValueError):
                pass

    def throttle(self, channel) -> None:
        """Backpressure hook for the transport's reader thread.

        Called after each dispatched frame; blocks while the admitted
        backlog sits above the intake high-water mark, so the kernel
        pipe (not this process's memory) absorbs a flood.  Never stalls
        a connection with in-flight *outbound* requests: their replies
        are resolved by this very reader thread, and stalling it would
        deadlock any handler awaiting a bridge reply.
        """
        if self._queued < self.intake_high or channel.dead:
            return
        self._stalls += 1
        _STALLS.inc()
        with self._cond:
            while (self._queued > self.intake_low
                   and not channel.dead and not self._stopping
                   and channel.counters.in_flight == 0):
                self._cond.wait(policy.SCHED_TICK_S)

    # -- timer wheel ---------------------------------------------------------

    def call_later(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` after *delay* seconds; returns a handle.

        One wheel replaces the thread-per-timer ``threading.Timer``
        idiom; callbacks run on the executor pool (they may block —
        the host pool's reaper waits on child exit) so a slow callback
        never stalls the scheduler tick.
        """
        handle = TimerHandle(fn, args)
        when = time.monotonic() + max(0.0, float(delay))
        self._ensure_scheduler()
        with self._cond:
            heapq.heappush(self._timers, (when, next(self._timer_seq),
                                          handle))
            self._cond.notify_all()
        return handle

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``host.*`` gauge family (also the telemetry collector)."""
        with self._cond:
            out = {
                "host.channels.active": self._channels,
                "host.queue.depth": self._queued,
                "host.inflight": self._inflight,
                "host.rejects": self._rejects,
                "host.backpressure.stalls": self._stalls,
                "host.executors": len(self._exec_threads),
                "host.timers": sum(1 for _, _, h in self._timers
                                   if not h.cancelled),
            }
        if self.publish_gauges:
            metrics = TELEMETRY.metrics
            for key in ("host.channels.active", "host.queue.depth",
                        "host.inflight"):
                metrics.gauge(key).set(out[key])
        return out

    def shutdown(self) -> None:
        """Stop the loop's threads (used by tests owning a private loop)."""
        with self._cond:
            self._stopping = True
            started = len(self._exec_threads)
            self._cond.notify_all()
        for _ in range(started):
            self._exec_q.put(None)

    # -- internals -----------------------------------------------------------

    def _ensure_scheduler(self) -> None:
        with self._cond:
            if self._scheduler is not None or self._stopping:
                return
            self._scheduler = threading.Thread(
                target=self._scheduler_loop, name=f"{self.name}-sched",
                daemon=True)
            self._scheduler.start()

    def _ensure_executors(self) -> None:
        with self._cond:
            if self._stopping:
                return
            while len(self._exec_threads) < self.executors:
                thread = threading.Thread(
                    target=self._executor_loop,
                    name=f"{self.name}-exec{len(self._exec_threads)}",
                    daemon=True)
                self._exec_threads.append(thread)
                thread.start()

    def _scheduler_loop(self) -> None:
        while True:
            fire: TimerHandle | None = None
            state: _ChanState | None = None
            with self._cond:
                if self._stopping:
                    return
                now = time.monotonic()
                while self._timers:
                    when, _, handle = self._timers[0]
                    if handle.cancelled:
                        heapq.heappop(self._timers)
                        continue
                    if when <= now:
                        heapq.heappop(self._timers)
                        fire = handle
                    break
                if fire is None:
                    if self._ready:
                        state = self._ready.popleft()
                    else:
                        timeout = None
                        if self._timers:
                            timeout = max(0.0, self._timers[0][0] - now)
                        self._cond.wait(timeout)
                        continue
            if fire is not None:
                # Timer callbacks may block; never run them on the tick.
                self._ensure_executors()
                self._exec_q.put(fire)
                continue
            # The fault plane's scheduler-tick injection point: delay
            # stalls this grant, kill crashes the armed process — the
            # loop-mode analogues of the worker-era injection sites.
            self._sched_faults(state)
            if state.blocking:
                self._ensure_executors()
                self._exec_q.put(state)
            else:
                self._run_one(state)

    def _sched_faults(self, state: _ChanState) -> None:
        plane = getattr(state.channel, "faults", None)
        if plane is None:
            return
        with self._cond:
            head = state.fifo[0] if state.fifo else None
        op = ""
        if head is not None:
            head_fields = head[1]
            subs = head_fields.get("subs")
            if isinstance(subs, list) and subs:
                # A batch grant is matchable by its first sub-op's name.
                op = str(subs[0][1].get("cmd") or "")
            else:
                op = str(head_fields.get("cmd")
                         or head_fields.get("op") or "")
        rule = plane.on_sched({"cmd": op})
        if rule is None:
            return
        if rule.action == "delay":
            time.sleep(rule.seconds)
        elif rule.action == "kill":
            kill = getattr(state.channel, "fault_kill", None)
            if kill is not None:
                kill()

    def _executor_loop(self) -> None:
        while True:
            task = self._exec_q.get()
            if task is None:
                return
            if isinstance(task, TimerHandle):
                if not task.cancelled:
                    try:
                        task.fn(*task.args)
                    except Exception:
                        pass  # a timer callback must not kill the pool
                continue
            self._run_one(task)

    def _run_one(self, state: _ChanState) -> None:
        """Serve exactly one queued request of *state*, then requeue it.

        Popping a single item per grant (and re-appending the state to
        the ready *tail*) is the round-robin fairness property: a
        channel with a deep backlog re-competes after every op.
        """
        with self._cond:
            if not state.fifo or state.detached:
                state.scheduled = False
                return
            item = state.fifo.popleft()
            weight = _item_weight(item[1])
            self._queued -= weight
            state.qweight -= weight
            if self._queued <= self.intake_low:
                self._cond.notify_all()  # release a throttled reader
        rid, fields, payload, deadline, tc, submitted = item
        _QWAIT.observe(time.monotonic() - submitted)
        started = time.monotonic()
        try:
            subs = fields.get("subs") if fields.get("cmd") == "batch" \
                else None
            if subs is not None:
                serve_batch(state.channel, state.chan, state.handler,
                            rid, subs)
            else:
                serve_one(state.channel, state.chan, state.handler,
                          rid, fields, payload, deadline, tc)
        finally:
            _SERVICE.observe(time.monotonic() - started)
            with self._cond:
                self._inflight -= weight
                if state.fifo and not state.detached:
                    self._ready.append(state)
                else:
                    state.scheduled = False
                self._cond.notify_all()


_SHARED: EventLoopServer | None = None
_SHARED_LOCK = threading.Lock()


def shared_loop() -> EventLoopServer:
    """The process-wide loop server (created on first use).

    Shared across every channel of the process — a thousand registered
    channels still cost one scheduler and one executor pool, which is
    the whole O(1)-threads claim.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            _SHARED = EventLoopServer(publish_gauges=True)
        return _SHARED


def serving_stats(channel) -> dict[str, Any] | None:
    """The ``host.*`` stats of the loop serving *channel* (None if
    the channel is served by legacy worker threads)."""
    server = getattr(channel, "serve_loop", None)
    if server is None:
        return None
    return server.stats()
