"""The dummy-handle table.

The paper's OpenFile stub returns "a fictitious handle that points to
this structure" and later stubs "check if this ReadFile is against the
dummy handle we created".  :class:`HandleTable` is that structure for
the Win32-style API veneer: small integer handles (multiples of 4,
like real NT handles) mapped to whatever object the veneer stored.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import HandleError

__all__ = ["HandleTable", "INVALID_HANDLE_VALUE"]

#: Win32's INVALID_HANDLE_VALUE, for callers that prefer sentinel returns.
INVALID_HANDLE_VALUE = -1


class HandleTable:
    """Thread-safe allocation of small-integer handles."""

    def __init__(self, first: int = 4, step: int = 4) -> None:
        self._lock = threading.Lock()
        self._next = first
        self._step = step
        self._entries: dict[int, Any] = {}

    def allocate(self, value: Any) -> int:
        with self._lock:
            handle = self._next
            self._next += self._step
            self._entries[handle] = value
            return handle

    def get(self, handle: int) -> Any:
        with self._lock:
            try:
                return self._entries[handle]
            except KeyError:
                raise HandleError(f"invalid handle: {handle}") from None

    def release(self, handle: int) -> Any:
        """Remove and return the entry (closing is the caller's job)."""
        with self._lock:
            try:
                return self._entries.pop(handle)
            except KeyError:
                raise HandleError(f"invalid handle: {handle}") from None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, handle: int) -> bool:
        with self._lock:
            return handle in self._entries
