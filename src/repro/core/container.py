"""The on-disk ``.af`` container — packaging the active and data parts.

The paper packages an active file's two passive components (executable +
data file) as NTFS alternate streams of a single file so that directory
operations — copy, rename, delete — act on both at once.  POSIX
filesystems lack streams, so we use a single-file container with the
same observable property::

    +-------+------------+-------------------+---------------+
    | AFC1  | header len | JSON header       | raw data part |
    +-------+------------+-------------------+---------------+

The JSON header carries the sentinel spec and free-form metadata; the
data segment is the data part verbatim.  All rewrites go through an
atomic temp-file + ``os.replace`` so a crash never leaves a torn
container.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import ContainerError, ContainerFormatError
from repro.core.spec import SentinelSpec

__all__ = ["Container", "ACTIVE_SUFFIX", "MAGIC", "is_active_path", "sniff"]

MAGIC = b"AFC1"
_HEADER_LEN = struct.Struct(">I")

#: Conventional filename suffix; the interception layer (like the paper's
#: stubs, which "check the extension") treats matching names as candidates.
ACTIVE_SUFFIX = ".af"

_MAX_HEADER = 1 << 20  # 1 MiB of JSON header is already absurd


def is_active_path(path: str | os.PathLike) -> bool:
    """True if *path* names an active file by suffix convention."""
    return str(path).endswith(ACTIVE_SUFFIX)


def sniff(path: str | os.PathLike) -> bool:
    """True if the file at *path* starts with the container magic."""
    try:
        with open(path, "rb") as stream:
            return stream.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class Container:
    """One active file on disk: spec + metadata + data part."""

    def __init__(self, path: str | os.PathLike, spec: SentinelSpec,
                 data: bytes = b"", meta: dict[str, Any] | None = None) -> None:
        self.path = Path(path)
        self.spec = spec
        self.meta = dict(meta or {})
        self._data = bytes(data)

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, path: str | os.PathLike, spec: SentinelSpec,
               data: bytes = b"", meta: dict[str, Any] | None = None,
               exist_ok: bool = False) -> "Container":
        """Create a new container on disk and return it."""
        container = cls(path, spec, data, meta)
        if container.path.exists() and not exist_ok:
            raise ContainerError(f"container already exists: {container.path}")
        container.save()
        return container

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Container":
        """Parse the container at *path*."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise ContainerError(f"cannot read container {path}: {exc}") from exc
        return cls._parse(path, raw)

    @classmethod
    def _parse(cls, path: Path, raw: bytes) -> "Container":
        if len(raw) < len(MAGIC) + _HEADER_LEN.size:
            raise ContainerFormatError(f"{path}: too short to be a container")
        if raw[:len(MAGIC)] != MAGIC:
            raise ContainerFormatError(f"{path}: bad magic {raw[:4]!r}")
        (header_len,) = _HEADER_LEN.unpack_from(raw, len(MAGIC))
        if header_len > _MAX_HEADER:
            raise ContainerFormatError(f"{path}: implausible header length {header_len}")
        header_start = len(MAGIC) + _HEADER_LEN.size
        header_end = header_start + header_len
        if len(raw) < header_end:
            raise ContainerFormatError(f"{path}: truncated header")
        try:
            header = json.loads(raw[header_start:header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ContainerFormatError(f"{path}: header is not JSON: {exc}") from exc
        try:
            spec = SentinelSpec.from_dict(header["spec"])
        except KeyError as exc:
            raise ContainerFormatError(f"{path}: header missing 'spec'") from exc
        data_size = int(header.get("data_size", len(raw) - header_end))
        data = raw[header_end:header_end + data_size]
        if len(data) != data_size:
            raise ContainerFormatError(
                f"{path}: data segment truncated "
                f"(expected {data_size}, found {len(data)})"
            )
        return cls(path, spec, data, header.get("meta") or {})

    # -- persistence ----------------------------------------------------------

    def save(self) -> None:
        """Atomically write the container to its path."""
        header = json.dumps(
            {"spec": self.spec.to_dict(), "meta": self.meta,
             "data_size": len(self._data)},
            separators=(",", ":"), sort_keys=True,
        ).encode("utf-8")
        blob = MAGIC + _HEADER_LEN.pack(len(header)) + header + self._data
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        prefix=self.path.name + ".tmp")
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(blob)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- data part ------------------------------------------------------------

    @property
    def data(self) -> bytes:
        """The data part as loaded/last written."""
        return self._data

    def read_data(self) -> bytes:
        """Re-read the data part from disk (sees other writers)."""
        self._data = Container.load(self.path)._data
        return self._data

    def write_data(self, data: bytes) -> None:
        """Replace the data part and persist atomically."""
        self._data = bytes(data)
        self.save()

    # -- directory operations (paper §2.1) -------------------------------------

    def copy_to(self, destination: str | os.PathLike) -> "Container":
        """Copy this active file; the copy shares spec and data.

        "a copy operation produces a second active file with the same
        data and executable components as the first one."
        """
        clone = Container(destination, self.spec, self._data, dict(self.meta))
        clone.save()
        return clone

    def rename_to(self, destination: str | os.PathLike) -> None:
        os.replace(self.path, destination)
        self.path = Path(destination)

    def delete(self) -> None:
        self.path.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Container(path={str(self.path)!r}, spec={self.spec.target!r}, "
                f"data_size={len(self._data)})")
