"""A deterministic fault-injection plane for the transport stack.

Recovery code that is only exercised by real crashes is untested code.
:class:`FaultPlane` makes failures *schedulable*: a seeded rule engine
that the framing layer (:class:`~repro.core.channel.StreamChannel`), the
sentinel host (:mod:`repro.core.runner`) and the simulated
:class:`~repro.net.Network` consult at well-defined injection points.
Given the same seed and the same workload, the same faults fire at the
same moments — chaos tests become reproducible regressions.

Injection points and the actions meaningful at each:

======== ==========================================================
point    actions
======== ==========================================================
send     ``drop`` (frame vanishes), ``delay`` (stall the writer),
         ``corrupt`` (peer sees an undecodable frame and dies),
         ``eof`` (truncated frame: connection dies mid-message),
         ``kill`` (hard-kill the host process — SIGKILL)
recv     ``drop`` (inbound message discarded after decode)
network  ``fail`` (exchange raises ``NetworkError``),
         ``delay`` (charge extra transfer time),
         ``partition`` (cut the address for ``seconds``)
service  ``fail`` (service returns a failure response)
shm      ``shm-corrupt`` (flip a staged byte after the CRC is taken),
         ``shm-stale-generation`` (bump the slot's generation word)
sched    ``delay`` (stall one event-loop scheduling grant),
         ``kill`` (hard-kill the host at a scheduler tick)
batch    ``drop`` (one sub-op vanishes from a multi-op frame; its
         caller times out and retries), ``corrupt`` (one sub-op's
         header is mangled; its caller sees a protocol error while
         its batch-mates complete normally)
======== ==========================================================

Rules match on the message's command/op name (``op=``), an address
(``address=``, network point only), fire with probability ``p`` from the
seeded stream, skip the first ``after`` matching encounters, and stop
after ``times`` firings.  Every firing is appended to :attr:`fired`, so
a test can assert exactly which faults its run experienced.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.core.telemetry import TELEMETRY

__all__ = ["FaultPlane", "FaultRule"]

#: Actions whose firing the send path must handle.
_SEND_ACTIONS = ("drop", "delay", "corrupt", "eof", "kill")
_RECV_ACTIONS = ("drop",)
_NETWORK_ACTIONS = ("fail", "delay", "partition")
_SERVICE_ACTIONS = ("fail",)
_SHM_ACTIONS = ("shm-corrupt", "shm-stale-generation")
_SCHED_ACTIONS = ("delay", "kill")
_BATCH_ACTIONS = ("drop", "corrupt")

_POINTS = {
    "send": _SEND_ACTIONS,
    "recv": _RECV_ACTIONS,
    "network": _NETWORK_ACTIONS,
    "service": _SERVICE_ACTIONS,
    "shm": _SHM_ACTIONS,
    "sched": _SCHED_ACTIONS,
    "batch": _BATCH_ACTIONS,
}


@dataclass
class FaultRule:
    """One scheduled fault: where, what, and when it fires."""

    point: str
    action: str
    op: str | None = None
    address: str | None = None
    p: float = 1.0
    after: int = 0
    times: int | None = None
    seconds: float = 0.0
    seen: int = 0
    fired: int = 0

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


@dataclass
class FaultEvent:
    """A record of one fault that actually fired."""

    point: str
    action: str
    op: str
    detail: dict[str, Any] = field(default_factory=dict)


class FaultPlane:
    """A seeded schedule of injected faults.

    One plane may be armed on several components at once; matching is
    serialized under a lock, so the probability stream stays
    deterministic even when hooks race.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._rules: list[FaultRule] = []
        #: Chronological log of fired faults (read-only for callers).
        self.fired: list[FaultEvent] = []
        # Re-home the fired-action histogram under telemetry.snapshot()
        # (weakly — the entry disappears with this plane).
        TELEMETRY.register_collector("faults", f"plane-seed-{seed}", self,
                                     FaultPlane.summary)

    # -- schedule construction ---------------------------------------------

    def rule(self, point: str, action: str, *, op: str | None = None,
             address: str | None = None, p: float = 1.0, after: int = 0,
             times: int | None = None, seconds: float = 0.0) -> "FaultPlane":
        """Add one rule; returns ``self`` for chaining."""
        if point not in _POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        if action not in _POINTS[point]:
            raise ValueError(f"action {action!r} is not valid at {point!r}")
        with self._lock:
            self._rules.append(FaultRule(
                point=point, action=action, op=op, address=address,
                p=float(p), after=int(after), times=times,
                seconds=float(seconds)))
        return self

    # Convenience constructors for the common schedules.

    def drop_frame(self, *, op: str | None = None, p: float = 1.0,
                   after: int = 0, times: int | None = None) -> "FaultPlane":
        """Outbound frames matching *op* silently vanish."""
        return self.rule("send", "drop", op=op, p=p, after=after, times=times)

    def delay_frame(self, seconds: float, *, op: str | None = None,
                    p: float = 1.0, after: int = 0,
                    times: int | None = None) -> "FaultPlane":
        return self.rule("send", "delay", op=op, p=p, after=after,
                         times=times, seconds=seconds)

    def corrupt_frame(self, *, op: str | None = None, after: int = 0,
                      times: int | None = 1) -> "FaultPlane":
        """The peer receives an undecodable frame (its channel dies)."""
        return self.rule("send", "corrupt", op=op, after=after, times=times)

    def eof_mid_frame(self, *, op: str | None = None, after: int = 0,
                      times: int | None = 1) -> "FaultPlane":
        """The connection breaks in the middle of a frame."""
        return self.rule("send", "eof", op=op, after=after, times=times)

    def kill_host(self, *, after: int = 0,
                  times: int | None = 1) -> "FaultPlane":
        """Hard-kill the armed host process after *after* requests."""
        return self.rule("send", "kill", after=after, times=times)

    def drop_reply(self, *, p: float = 1.0, after: int = 0,
                   times: int | None = None) -> "FaultPlane":
        """Inbound messages are discarded after decoding."""
        return self.rule("recv", "drop", p=p, after=after, times=times)

    def fail_network(self, *, address: str | None = None,
                     op: str | None = None, p: float = 1.0, after: int = 0,
                     times: int | None = None) -> "FaultPlane":
        return self.rule("network", "fail", op=op, address=address, p=p,
                         after=after, times=times)

    def partition(self, seconds: float, *, address: str | None = None,
                  after: int = 0, times: int | None = 1) -> "FaultPlane":
        """Cut the matched address for *seconds* on the armed network."""
        return self.rule("network", "partition", address=address,
                         after=after, times=times, seconds=seconds)

    def fail_service(self, *, op: str | None = None, p: float = 1.0,
                     after: int = 0, times: int | None = None) -> "FaultPlane":
        return self.rule("service", "fail", op=op, p=p, after=after,
                         times=times)

    def corrupt_shm_slot(self, *, op: str | None = None, after: int = 0,
                         times: int | None = 1) -> "FaultPlane":
        """Flip one byte of a staged shm payload post-checksum.

        The peer's CRC validation rejects the slot and the attempt
        retries inline — the operation still succeeds.
        """
        return self.rule("shm", "shm-corrupt", op=op, after=after,
                         times=times)

    def stale_shm_generation(self, *, op: str | None = None, after: int = 0,
                             times: int | None = 1) -> "FaultPlane":
        """Bump a leased slot's generation so its descriptor goes stale."""
        return self.rule("shm", "shm-stale-generation", op=op, after=after,
                         times=times)

    def drop_batch_op(self, *, op: str | None = None, after: int = 0,
                      times: int | None = 1) -> "FaultPlane":
        """One sub-op matching *op* vanishes from a batched frame.

        Its batch-mates complete normally; the dropped op's future
        never resolves for that attempt and the caller's per-attempt
        timeout retries it.
        """
        return self.rule("batch", "drop", op=op, after=after, times=times)

    def corrupt_batch_op(self, *, op: str | None = None, after: int = 0,
                         times: int | None = 1) -> "FaultPlane":
        """One sub-op of a batched frame goes out with a mangled header.

        The host rejects that sub-op with a protocol error while its
        batch-mates complete normally.
        """
        return self.rule("batch", "corrupt", op=op, after=after, times=times)

    def delay_sched(self, seconds: float, *, op: str | None = None,
                    p: float = 1.0, after: int = 0,
                    times: int | None = None) -> "FaultPlane":
        """Stall one scheduling grant on the armed event-loop host."""
        return self.rule("sched", "delay", op=op, p=p, after=after,
                         times=times, seconds=seconds)

    def kill_at_sched(self, *, after: int = 0,
                      times: int | None = 1) -> "FaultPlane":
        """Hard-kill the armed host at a scheduler tick (loop mode)."""
        return self.rule("sched", "kill", after=after, times=times)

    # -- arming -------------------------------------------------------------

    def arm_channel(self, channel) -> "FaultPlane":
        """Consult this plane on *channel*'s send/recv paths."""
        channel.faults = self
        return self

    def arm_host(self, host) -> "FaultPlane":
        """Arm a :class:`~repro.core.runner.SentinelHost` connection."""
        return self.arm_channel(host.channel)

    def arm_pool(self, pool) -> "FaultPlane":
        """Arm every host a :class:`SentinelHostPool` spawns from now on."""
        pool.faults = self
        return self

    def arm_network(self, network) -> "FaultPlane":
        """Consult this plane on every :meth:`Network.call`."""
        network.faults = self
        return self

    def arm_service(self, service) -> "FaultPlane":
        """Consult this plane in a :class:`~repro.net.service.Service`."""
        service.faults = self
        return self

    # -- hook surface (called by the transport) -----------------------------

    def on_send(self, fields: dict[str, Any]) -> FaultRule | None:
        op = str(fields.get("cmd") or fields.get("op") or "")
        if op == "batch" and isinstance(fields.get("ops"), list):
            # A multi-op frame is matchable by its own name or by any
            # sub-op's name — `drop_frame(op="read")` still fells a
            # frame whose reads ride inside a batch.
            rule = self._match("send", "batch")
            if rule is not None:
                return rule
            for sub in fields["ops"]:
                if isinstance(sub, dict):
                    rule = self._match("send",
                                       str(sub.get("cmd") or sub.get("op")
                                           or ""))
                    if rule is not None:
                        return rule
            return None
        return self._match("send", op)

    def on_batch(self, fields: dict[str, Any]) -> FaultRule | None:
        """Consulted per sub-op as the submission ring flushes a batch."""
        op = str(fields.get("cmd") or fields.get("op") or "")
        return self._match("batch", op)

    def on_recv(self, fields: dict[str, Any]) -> FaultRule | None:
        op = str(fields.get("cmd") or fields.get("op") or "")
        return self._match("recv", op)

    def on_network(self, address, op: str) -> FaultRule | None:
        return self._match("network", str(op), address=str(address))

    def on_service(self, op: str) -> FaultRule | None:
        return self._match("service", str(op))

    def on_shm(self, fields: dict[str, Any]) -> FaultRule | None:
        """Consulted sender-side after a slot is staged/offered."""
        op = str(fields.get("cmd") or fields.get("op") or "")
        return self._match("shm", op)

    def on_sched(self, fields: dict[str, Any]) -> FaultRule | None:
        """Consulted by the event loop before granting one channel a turn."""
        op = str(fields.get("cmd") or fields.get("op") or "")
        return self._match("sched", op)

    # -- matching -----------------------------------------------------------

    def _match(self, point: str, op: str,
               address: str | None = None) -> FaultRule | None:
        with self._lock:
            for rule in self._rules:
                if rule.point != point or rule.exhausted():
                    continue
                if rule.op is not None and rule.op != op:
                    continue
                if rule.address is not None and rule.address != address:
                    continue
                rule.seen += 1
                if rule.seen <= rule.after:
                    continue
                if rule.p < 1.0 and self._rng.random() >= rule.p:
                    continue
                rule.fired += 1
                detail: dict[str, Any] = {"seconds": rule.seconds}
                if address is not None:
                    detail["address"] = address
                self.fired.append(FaultEvent(point=point, action=rule.action,
                                             op=op, detail=detail))
                # Every firing leaves a durable counter behind — planes
                # are per-test objects, but faults.injected.* survives
                # them, so `afctl stats` shows chaos the process saw.
                TELEMETRY.metrics.counter(
                    f"faults.injected.{point}.{rule.action}").inc()
                return rule
        return None

    def summary(self) -> dict[str, int]:
        """Fired-action histogram, for assertions and reports."""
        out: dict[str, int] = {}
        with self._lock:
            for event in self.fired:
                key = f"{event.point}:{event.action}"
                out[key] = out.get(key, 0) + 1
        return out
