"""A Win32-flavoured file API over both passive and active files.

This is the surface the paper's instrumented applications call:
``CreateFile``/``OpenFile``, ``ReadFile``, ``WriteFile``,
``SetFilePointer``, ``GetFileSize``, ``FlushFileBuffers`` and
``CloseHandle``.  The veneer plays the role of the injected stub DLL —
"the stub for OpenFile() ... checks to see if the file name corresponds
to an active file or not (by checking the extension).  If the file is
not an active file, the stub calls the standard Win32 OpenFile routine."

Handles are fictitious small integers from a :class:`HandleTable`;
behind each one sits either a real Python file (passive path) or an
:class:`~repro.core.fileobj.ActiveFile` (active path).  Legacy-style
code written against this API cannot tell which it got.
"""

from __future__ import annotations

import builtins

from repro.core.container import is_active_path, sniff
from repro.core.fileobj import ActiveFile
from repro.core.handles import HandleTable
from repro.core.opener import DEFAULT_STRATEGY, open_active
from repro.errors import UnsupportedOperationError

__all__ = ["Win32Api", "FILE_BEGIN", "FILE_CURRENT", "FILE_END"]

FILE_BEGIN = 0
FILE_CURRENT = 1
FILE_END = 2


class Win32Api:
    """One instrumented-application view of the file API."""

    def __init__(self, network=None, strategy: str = DEFAULT_STRATEGY,
                 sniff_content: bool = False) -> None:
        self.network = network
        self.strategy = strategy
        #: Also treat magic-matching files without the ``.af`` suffix as
        #: active (contents check instead of extension check).
        self.sniff_content = sniff_content
        self._handles = HandleTable()

    # -- open/close -----------------------------------------------------------------

    def _is_active(self, path: str) -> bool:
        if is_active_path(path):
            return True
        return self.sniff_content and sniff(path)

    def CreateFile(self, path: str, mode: str = "r+b") -> int:
        """Open (or create, per *mode*) a file and return a handle."""
        if self._is_active(str(path)):
            stream = open_active(path, mode, strategy=self.strategy,
                                 network=self.network)
        else:
            if "b" not in mode:
                mode += "b"
            stream = builtins.open(path, mode)
        return self._handles.allocate(stream)

    #: The paper uses OpenFile and CreateFile interchangeably.
    OpenFile = CreateFile

    def CloseHandle(self, handle: int) -> None:
        stream = self._handles.release(handle)
        stream.close()

    # -- data plane -------------------------------------------------------------------

    def ReadFile(self, handle: int, size: int) -> bytes:
        return self._handles.get(handle).read(size)

    def WriteFile(self, handle: int, data: bytes) -> int:
        written = self._handles.get(handle).write(data)
        return len(data) if written is None else written

    def SetFilePointer(self, handle: int, offset: int,
                       method: int = FILE_BEGIN) -> int:
        return self._handles.get(handle).seek(offset, method)

    def GetFileSize(self, handle: int) -> int:
        """File size as the sentinel (or filesystem) reports it.

        Under the simple process strategy this raises — faithfully: "
        GetFileSize cannot be implemented as there is no method of
        passing control information" (§4.1).
        """
        stream = self._handles.get(handle)
        if isinstance(stream, ActiveFile):
            return stream.getsize()
        position = stream.tell()
        try:
            return stream.seek(0, FILE_END)
        finally:
            stream.seek(position, FILE_BEGIN)

    def FlushFileBuffers(self, handle: int) -> None:
        self._handles.get(handle).flush()

    def ReadFileScatter(self, handle: int, sizes: list[int]) -> list[bytes]:
        """Scatter read; unsupported without a control channel (§4.1).

        Active files serve the whole batch as one vectored exchange
        (``readv``) instead of one round trip per buffer.
        """
        stream = self._handles.get(handle)
        if isinstance(stream, ActiveFile):
            if not stream.seekable():
                raise UnsupportedOperationError(
                    "ReadFileScatter dropped: no control channel in the "
                    "simple process strategy"
                )
            return stream.read_scatter(sizes)
        return [stream.read(size) for size in sizes]

    def WriteFileGather(self, handle: int, buffers: list[bytes]) -> int:
        """Gather write; unsupported without a control channel (§4.1).

        Active files push the whole batch as one vectored exchange
        (``writev``).
        """
        stream = self._handles.get(handle)
        if isinstance(stream, ActiveFile):
            if not stream.seekable():
                raise UnsupportedOperationError(
                    "WriteFileGather dropped: no control channel in the "
                    "simple process strategy"
                )
            return stream.write_gather(buffers)
        return sum(stream.write(buffer) for buffer in buffers)

    # -- introspection -------------------------------------------------------------------

    def open_handle_count(self) -> int:
        return len(self._handles)
