"""The sentinel host child process (``python -m repro.core.runner``).

The process-based strategies really do run sentinels in a separate
operating-system process, as the paper's §4.1/§4.2 prescribe.  What
changed from the paper's one-process-per-open picture is the transport
economics: spawning a fresh interpreter for every ``open_active()`` and
giving every open its own pipe pair (plus a second pair for the network
bridge) does not scale to many concurrent opens.

This module therefore implements a pooled **sentinel host**:

* :func:`main` — the child side.  One child interpreter per container
  serves *many* concurrent opens.  Its stdin/stdout carry a single
  multiplexed :class:`~repro.core.channel.StreamChannel`; channel 0 is
  the host-control plane (``open``/``ping`` from the application,
  network-bridge calls from the sentinels), and every open lives on its
  own logical channel with its own dispatcher and its own
  freshly-loaded container state — exactly the isolation the per-open
  child gave, minus the per-open fork/exec.
* :class:`SentinelHost` / :class:`SentinelHostPool` — the parent side.
  The pool hands out refcounted :class:`HostLease` objects keyed by
  (container realpath, network); a host lingers briefly after its last
  lease closes so open/close churn reuses the warm child.

File-descriptor layout in the child:

====  =========================================================
fd    purpose
====  =========================================================
0     multiplexed channel, application -> host (framed)
1     multiplexed channel, host -> application (framed)
2     stderr (captured by the parent for crash diagnostics)
====  =========================================================
"""

from __future__ import annotations

import argparse
import atexit
import os
import sys
import threading
import time
from collections import deque
from subprocess import PIPE, Popen
from typing import Any

from repro.core import control, hostloop, policy
from repro.core.channel import (
    CONTROL_CHAN,
    FIRST_SESSION_CHAN,
    Channel,
    StreamChannel,
)
from repro.core.container import Container
from repro.core.dispatch import SentinelDispatcher, StreamDispatcher
from repro.core.fanout import domain_for
from repro.core.netproxy import NetworkBridgeServer, ProxyNetwork
from repro.core.policy import Deadline
from repro.core.sentinel import SentinelContext
from repro.core.planesel import PlaneCostModel
from repro.core.shm import AttachedSegment, ShmPlane, shm_enabled
from repro.core.strategies.common import make_data_part
from repro.core.telemetry import TELEMETRY
from repro.errors import ProtocolError, SentinelCrashedError, ShmError

__all__ = [
    "main",
    "HostAgent",
    "SentinelHost",
    "SentinelHostPool",
    "HostLease",
    "HOST_POOL",
    "HOST_LINGER_S",
]

#: How long an idle host survives after its last lease closes
#: (re-exported from :mod:`repro.core.policy`, where timeouts live).
HOST_LINGER_S = policy.HOST_LINGER_S

_DISPATCHERS = {
    "process-control": SentinelDispatcher,
    "process": StreamDispatcher,
}


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------

class HostAgent:
    """Child-side channel-0 agent: turns ``open`` requests into sessions."""

    def __init__(self, channel: Channel, container_path: str,
                 use_network: bool) -> None:
        self.channel = channel
        self.container_path = container_path
        self.use_network = use_network
        self._lock = threading.Lock()
        self._next_chan = FIRST_SESSION_CHAN
        self._sessions: dict[int, Any] = {}
        #: The host's shared-memory segment, attached at the first
        #: ``open`` that advertises one (see :mod:`repro.core.shm`).
        self._segment: AttachedSegment | None = None

    def handle(self, fields: dict[str, Any],
               payload: bytes) -> tuple[dict[str, Any], bytes]:
        cmd = fields.get("cmd", "")
        if cmd == "open":
            return self._open(str(fields.get("strategy", "")),
                              fields.get("shm")), b""
        if cmd == "ping":
            # A ping doubles as the host's introspection probe: thread
            # count (the O(1)-threads acceptance gauge) and the event
            # loop's ``host.*`` stats ride every pong.
            reply: dict[str, Any] = {
                "ok": True, "pid": os.getpid(),
                "sessions": len(self._sessions),
                "threads": threading.active_count(),
            }
            stats = hostloop.serving_stats(self.channel)
            if stats is not None:
                reply["host"] = stats
            # Queue-wait vs service-time split of everything this host
            # has served — the latency attribution BENCH_swarm.json
            # reports (waiting and working are different problems).
            reply["lat"] = hostloop.latency_split_stats()
            return reply, b""
        if cmd == "chaos":
            return self._chaos(fields), b""
        raise ProtocolError(f"unknown host command {cmd!r}")

    @staticmethod
    def _chaos(fields: dict[str, Any]) -> dict[str, Any]:
        """Execute one resource-fault op inside this host.

        ``action`` selects a resource fault (cpu-hog, memory-pressure,
        fd-exhaustion, disk-full — executed here, in the process the
        sessions actually run in) or the control verbs ``revert``,
        ``revert-all`` and ``status``.  Faults are clamped and
        watchdogged by :mod:`repro.core.resourcefaults`, so a host keeps
        its revert-within-bound guarantee even if the injecting parent
        dies right after this reply.
        """
        from repro.core import resourcefaults
        action = str(fields.get("action", ""))
        if action == "revert-all":
            return {"ok": True,
                    "reverted": resourcefaults.CONTROLLER.revert_all()}
        if action == "revert":
            done = resourcefaults.CONTROLLER.revert(
                int(fields.get("fault_id", 0)))
            return {"ok": True, "reverted": 1 if done else 0}
        if action == "status":
            return {"ok": True,
                    "active": resourcefaults.CONTROLLER.active()}
        info = resourcefaults.CONTROLLER.inject(
            action, fields.get("params") or {})
        return {"ok": True, **info}

    def _attach_shm(self, info: dict[str, Any]) -> bool:
        """Attach the advertised segment (idempotent); False = inline."""
        with self._lock:
            if self._segment is not None:
                return self._segment.name == str(info.get("name"))
            try:
                self._segment = AttachedSegment.attach(
                    str(info["name"]), int(info["slots"]),
                    int(info["slot_bytes"]), bool(info.get("crc")))
            except Exception:
                # Capability negotiation, not an error: the parent falls
                # back to inline payloads when the ack says no.
                return False
            return True

    def _open(self, strategy: str,
              shm_info: dict[str, Any] | None = None) -> dict[str, Any]:
        dispatcher_class = _DISPATCHERS.get(strategy)
        if dispatcher_class is None:
            raise ProtocolError(f"host cannot serve strategy {strategy!r}")
        shm_ok = bool(shm_info) and self._attach_shm(shm_info)
        # Each open re-loads the container so concurrent sessions keep the
        # independent data-part state per-open children used to have;
        # cross-open coordination stays on FileLock (shared=None).  This
        # child serves every open of its container, so it IS the
        # container's consistency domain: each open joins the shared
        # CoherenceDomain (leases, write fences, single-flight fills,
        # pub/sub fan-out).
        container = Container.load(self.container_path)
        sentinel = container.spec.instantiate()
        ctx = SentinelContext(
            path=str(container.path),
            params=dict(container.spec.params),
            data=make_data_part(container),
            network=ProxyNetwork(self.channel) if self.use_network else None,
            shared=None,
            coherence=domain_for(self.container_path),
            meta=dict(container.meta),
            strategy=strategy,
        )
        dispatcher = dispatcher_class(sentinel, ctx)
        dispatcher.open()
        with self._lock:
            chan = self._next_chan
            self._next_chan += 1
            self._sessions[chan] = dispatcher
        self.channel.register(chan, self._session_handler(chan, dispatcher),
                              name=f"af-session-{chan}",
                              blocking=dispatcher_class.blocking)
        # "chan" itself is an envelope key, so the session id travels
        # under its own name.
        return {"ok": True, "session_chan": chan, "strategy": strategy,
                "shm": shm_ok}

    def _session_handler(self, chan: int, dispatcher):
        def handle(fields: dict[str, Any],
                   payload: bytes) -> tuple[dict[str, Any], bytes]:
            # Shared-memory substitution: an inbound ``shm`` descriptor
            # replaces the (empty) frame payload with slot bytes, and an
            # ``shm_r`` descriptor offers a slot the reply should be
            # written straight into.  Validation failures come back as
            # typed ShmErrors; the sender retries the attempt inline.
            shm_desc = fields.pop("shm", None)
            reply_desc = fields.pop("shm_r", None)
            payload_view = reply_view = None
            segment = self._segment
            if shm_desc is not None or reply_desc is not None:
                try:
                    if segment is None:
                        raise ShmError("host has no shm segment attached")
                    if shm_desc is not None:
                        # Zero-copy: the dispatcher consumes the slot
                        # bytes in place; the post-execute recheck
                        # detects a torn read, and the sender's inline
                        # retry (absolute offsets) rewrites the range.
                        payload_view = segment.payload_view(shm_desc)
                        payload = payload_view
                    if reply_desc is not None:
                        _, reply_view = segment.fill_view(reply_desc)
                except ShmError as exc:
                    return control.error_fields(exc), b""
            try:
                if reply_view is not None:
                    out_fields, out_payload = dispatcher.execute(
                        fields, payload, reply_into=reply_view)
                    filled = out_fields.pop("sl", None)
                    if filled is not None and out_fields.get("ok"):
                        # The reply body is already in the slot; the
                        # frame carries only the sealed descriptor.
                        out_fields["sl"] = int(filled)
                        out_fields["shm"] = segment.seal(
                            reply_desc, reply_view[:int(filled)])
                        out_payload = b""
                    out = out_fields, out_payload
                else:
                    out = dispatcher.execute(fields, payload)
                if payload_view is not None:
                    try:
                        segment.recheck(shm_desc)
                    except ShmError as exc:
                        return control.error_fields(exc), b""
            finally:
                if payload_view is not None:
                    payload_view.release()
                if reply_view is not None:
                    reply_view.release()
            if fields.get("cmd") == "close":
                with self._lock:
                    self._sessions.pop(chan, None)
                self.channel.unregister(chan)
            return out
        return handle

    def close_all(self) -> None:
        """Flush sessions the application abandoned without a close."""
        with self._lock:
            leftovers = list(self._sessions.values())
            self._sessions.clear()
        for dispatcher in leftovers:
            try:
                dispatcher.close()
            except Exception:
                pass  # best-effort flush on the way out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.core.runner")
    parser.add_argument("--container", required=True)
    parser.add_argument("--net", action="store_true",
                        help="expose the application's network over chan 0")
    args = parser.parse_args(argv)

    channel = StreamChannel(os.fdopen(0, "rb", buffering=0),
                            os.fdopen(1, "wb", buffering=0),
                            name="af-host-child")
    # A sentinel child has no local span consumer: everything it records
    # while serving a traced request ships back on the reply (``tsp``).
    # Tracing stays armed here — spans only materialize under a request
    # that actually carried a trace context (there is no current span
    # otherwise), so untraced traffic still pays just the one branch.
    TELEMETRY.piggyback = True
    TELEMETRY.tracing = True
    agent = HostAgent(channel, args.container, args.net)
    channel.register(CONTROL_CHAN, agent.handle, name="af-host-control")
    channel.start()
    channel.wait_closed()  # parent closed the connection or died
    agent.close_all()
    return 0


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class SentinelHost:
    """One pooled sentinel child, its channel, and its supervision.

    Supervision is two watchers per host:

    * a **process watcher** blocks in ``waitpid`` and kills the channel
      the instant the child dies, so in-flight futures fail with a typed
      :class:`SentinelCrashedError` instead of hanging until a read
      notices EOF;
    * an **idle heartbeat** pings the child whenever the connection has
      been quiet for :data:`~repro.core.policy.HEARTBEAT_IDLE_S`, so a
      wedged-but-running child is detected even with no traffic.
    """

    def __init__(self, container_path: str, network=None,
                 faults=None) -> None:
        self.container_path = str(container_path)
        self.network = network
        argv = [sys.executable, "-m", "repro.core.runner",
                "--container", self.container_path]
        if network is not None:
            argv.append("--net")
        # The child must import this package even when the app has
        # chdir'd away from whatever a relative PYTHONPATH pointed at.
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + [p for p in env.get("PYTHONPATH", "").split(
                os.pathsep) if p and p != src_root])
        # The bulk-data plane: one shared-memory slab per host, offered
        # to the child in the open handshake.  Creation failure (or the
        # REPRO_NO_SHM kill-switch) just means every payload rides
        # inline, exactly as before the plane existed.
        self.shm: ShmPlane | None = None
        self.shm_ready = False
        if shm_enabled():
            try:
                self.shm = ShmPlane()
            except Exception:
                self.shm = None
        # Adaptive data-plane selection: one cost model per host learns
        # the measured shm-vs-inline crossover for this connection's
        # workload (sessions consult it in _shm_stage, feed it per op).
        self.plane_model = PlaneCostModel()
        TELEMETRY.register_collector(
            "plane", f"host:{os.path.basename(self.container_path)}",
            self.plane_model, PlaneCostModel.stats)
        self.proc = Popen(argv, stdin=PIPE, stdout=PIPE, stderr=PIPE,
                          bufsize=0, env=env)
        self.channel = StreamChannel(
            self.proc.stdout, self.proc.stdin,
            name=f"af-host:{os.path.basename(self.container_path)}")
        self.channel.crash_error_factory = self.crash_error
        self.channel.fault_kill = self.proc.kill
        if faults is not None:
            self.channel.faults = faults
        if network is not None:
            bridge = NetworkBridgeServer(network)
            self.channel.register(CONTROL_CHAN, bridge.handle,
                                  name="af-net-bridge")
        self.stderr_tail: deque = deque(maxlen=50)
        threading.Thread(target=self._drain_stderr, name="af-stderr-drain",
                         daemon=True).start()
        self.channel.start()
        threading.Thread(target=self._watch_proc, name="af-host-watch",
                         daemon=True).start()
        threading.Thread(target=self._heartbeat_loop, name="af-host-hb",
                         daemon=True).start()

    def _drain_stderr(self) -> None:
        for line in self.proc.stderr:
            self.stderr_tail.append(line.decode("utf-8", errors="replace"))

    def stderr_text(self) -> str:
        return "".join(self.stderr_tail).strip()

    # -- supervision ---------------------------------------------------------

    def _watch_proc(self) -> None:
        """Fail the channel the moment the child process exits."""
        try:
            returncode = self.proc.wait()
        except Exception:  # pragma: no cover - interpreter teardown
            return
        if not self.channel.dead:
            self.mark_crashed(
                f"host process exited with code {returncode}")

    def _heartbeat_loop(self) -> None:
        """Probe an idle connection; a failed probe declares the host dead."""
        while not self.channel.wait_closed(policy.HEARTBEAT_IDLE_S):
            counters = self.channel.counters
            if counters.in_flight > 0:
                continue  # live traffic carries its own deadlines
            if time.monotonic() - counters.last_activity \
                    < policy.HEARTBEAT_IDLE_S:
                continue
            try:
                self.ping(timeout=policy.HEARTBEAT_TIMEOUT)
            except Exception as exc:
                self.mark_crashed(f"heartbeat failed: {exc}")
                return

    def mark_crashed(self, reason: str) -> None:
        """Declare the host dead: typed failure for every in-flight op."""
        if self.channel.dead:
            return
        self.channel.kill(reason, error=self.crash_error(reason))
        try:
            self.proc.kill()
        except Exception:
            pass
        # The segment dies with the host: a respawned child gets a fresh
        # slab, so journal replay (which re-sends inline) can never hand
        # it a descriptor from this incarnation.
        self._destroy_shm()

    def _destroy_shm(self) -> None:
        self.shm_ready = False
        plane = self.shm
        if plane is not None:
            plane.destroy()

    def crash_error(self, cause) -> SentinelCrashedError:
        """Describe this host's death, folding in its captured stderr."""
        detail = self.stderr_text()
        message = f"sentinel host died: {cause}"
        if detail:
            message = f"{message}\n--- sentinel stderr ---\n{detail}"
        return SentinelCrashedError(message)

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None and not self.channel.dead

    def open(self, strategy: str,
             timeout: "float | Deadline | None" = None) -> int:
        """Open one logical session; returns its channel id."""
        deadline = Deadline.coerce(timeout, policy.OPEN_TIMEOUT)
        request: dict[str, Any] = {"cmd": "open", "strategy": strategy}
        if self.shm is not None:
            request["shm"] = self.shm.handshake_fields()
        fields, _ = self.channel.request(CONTROL_CHAN, request,
                                         timeout=deadline)
        control.raise_for_response(fields)
        if self.shm is not None and fields.get("shm"):
            self.shm_ready = True
        return int(fields["session_chan"])

    def ping(self, timeout: "float | Deadline | None" = None
             ) -> dict[str, Any]:
        deadline = Deadline.coerce(timeout, policy.HEARTBEAT_TIMEOUT)
        fields, _ = self.channel.request(CONTROL_CHAN, {"cmd": "ping"},
                                         timeout=deadline)
        control.raise_for_response(fields)
        return fields

    def inject_chaos(self, action: str,
                     params: dict[str, Any] | None = None,
                     timeout: "float | Deadline | None" = None
                     ) -> dict[str, Any]:
        """Run one resource-fault op inside this host's child process.

        *action* is a resource fault from
        :data:`~repro.core.resourcefaults.RESOURCE_ACTIONS` or one of
        the control verbs ``revert``/``revert-all``/``status``.  Typed
        failures (:class:`~repro.errors.ChaosError`,
        :class:`~repro.errors.ChaosSafetyError`) round-trip the wire.
        A real injection also increments the parent-side
        ``faults.injected.resource.<action>`` counter, so the process
        that *ordered* the chaos shows it in ``afctl stats`` too.
        """
        deadline = Deadline.coerce(timeout, policy.CHAOS_OP_TIMEOUT)
        request: dict[str, Any] = {"cmd": "chaos", "action": str(action)}
        if params:
            request["params"] = dict(params)
        fields, _ = self.channel.request(CONTROL_CHAN, request,
                                         timeout=deadline)
        control.raise_for_response(fields)
        if action not in ("revert", "revert-all", "status"):
            TELEMETRY.metrics.counter(
                f"faults.injected.resource.{action}").inc()
        return fields

    def shutdown(self) -> None:
        """Close the connection; the child exits on EOF."""
        self.channel.close()
        try:
            self.proc.wait(timeout=policy.SHUTDOWN_TIMEOUT)
        except Exception:
            self.proc.kill()
            self.proc.wait(timeout=policy.SHUTDOWN_TIMEOUT)
        self._destroy_shm()


class HostLease:
    """One refcounted session on a pooled (or exclusive) host.

    A lease remembers everything needed to re-establish itself on a
    fresh host (:meth:`respawn`), which is what lets the supervised
    session layer retry idempotent operations invisibly after a crash.
    ``supervised`` is consulted by that layer: containers carrying
    ``meta={"supervise": False}`` opt out of transparent recovery and
    surface every crash.
    """

    def __init__(self, pool: "SentinelHostPool | None", key,
                 host: SentinelHost, chan: int, strategy: str,
                 supervised: bool = True) -> None:
        self._pool = pool
        self._key = key
        self.host = host
        self.chan = chan
        self.strategy = strategy
        self.supervised = supervised
        self.released = False
        self.respawns = 0

    @property
    def channel(self) -> StreamChannel:
        return self.host.channel

    def request(self, fields: dict[str, Any], payload: bytes = b"",
                timeout: "float | Deadline | None" = None
                ) -> tuple[dict[str, Any], bytes]:
        """One pipelinable operation on this session's channel."""
        return self.host.channel.request(self.chan, fields, payload,
                                         timeout=timeout)

    def request_async(self, fields: dict[str, Any], payload: bytes = b""):
        return self.host.channel.request_async(self.chan, fields, payload)

    def crash_error(self, cause: BaseException) -> SentinelCrashedError:
        """Describe a dead host, folding in its captured stderr."""
        return self.host.crash_error(f"mid-operation: {cause}")

    def respawn(self, deadline: "Deadline | float | None" = None) -> None:
        """Re-establish this session on a live host after a crash.

        The dead host is evicted; a replacement is pooled (or spawned
        exclusively) and a fresh logical session opened on it.  The
        caller replays whatever state the new sentinel instance must
        observe (see the session-layer write journal).
        """
        deadline = Deadline.coerce(deadline, policy.OPEN_TIMEOUT)
        dead = self.host
        if self._pool is not None:
            host, chan = self._pool._respawn(
                self._key, dead, self.host.container_path,
                self.host.network, self.strategy, deadline)
        else:
            host = SentinelHost(dead.container_path, network=dead.network,
                                faults=dead.channel.faults)
            try:
                chan = host.open(self.strategy, timeout=deadline)
            except BaseException:
                host.shutdown()
                raise
            dead.shutdown()
        self.host = host
        self.chan = chan
        self.respawns += 1
        # Durable respawn accounting: the global tally plus a
        # per-container scope, so `afctl doctor` can tell "one crash"
        # from "this container's host is in a respawn storm".
        TELEMETRY.metrics.counter("host.respawns").inc()
        TELEMETRY.metrics.counter("host.respawns",
                                  scope=host.container_path).inc()

    def release(self) -> None:
        """Return the session's slot to the pool (or retire the host)."""
        if self.released:
            return
        self.released = True
        if self._pool is not None:
            self._pool._release(self._key, self.host)
        else:
            self.host.shutdown()


class SentinelHostPool:
    """Keyed pool of sentinel hosts: one child serves many opens.

    Hosts are keyed by (container realpath, bridged network) so every
    open of the same container shares one child process and one framed
    connection.  A host lingers :data:`HOST_LINGER_S` seconds after its
    last lease closes, letting open/close churn reuse the warm child
    instead of paying interpreter startup per open.
    """

    def __init__(self, linger: float = HOST_LINGER_S) -> None:
        self.linger = linger
        #: Optional :class:`~repro.core.faults.FaultPlane` armed on every
        #: host this pool spawns (including respawns after a crash).
        self.faults = None
        # Reentrant: leaked sessions are closed off the GC path (see
        # repro.util.finalize), but if a release ever re-enters on the
        # same thread anyway it must not deadlock on the pool lock.
        self._lock = threading.RLock()
        self._hosts: dict[Any, SentinelHost] = {}
        self._refs: dict[Any, int] = {}
        #: key -> pending idle-reap timer on the shared scheduler wheel
        #: (one wheel for every lingering lease — a timer no longer
        #: costs a thread).
        self._reapers: dict[Any, hostloop.TimerHandle] = {}

    @staticmethod
    def _key(container_path: str, network) -> tuple:
        return (os.path.realpath(str(container_path)),
                id(network) if network is not None else None)

    def lease(self, container_path: str, *, strategy: str,
              network=None, exclusive: bool = False) -> HostLease:
        """Open one session, pooling the host unless *exclusive*.

        ``exclusive=True`` spawns a dedicated, unpooled host for this
        single open — the legacy one-process-per-open arrangement, kept
        for comparison benchmarks.
        """
        if exclusive:
            host = SentinelHost(container_path, network=network,
                                faults=self.faults)
            try:
                chan = host.open(strategy)
            except BaseException:
                host.shutdown()
                raise
            return HostLease(None, None, host, chan, strategy)

        key = self._key(container_path, network)
        host, reaper = self._checkout_locked(key, container_path, network)
        if reaper is not None:
            reaper.cancel()
        try:
            chan = host.open(strategy)
        except BaseException:
            self._release(key, host)
            raise
        return HostLease(self, key, host, chan, strategy)

    def _checkout_locked(self, key, container_path, network):
        """Take one ref on the live host at *key*, spawning if needed."""
        with self._lock:
            host = self._hosts.get(key)
            if host is not None and not host.alive:
                self._evict_locked(key)
                host = None
            if host is None:
                host = SentinelHost(container_path, network=network,
                                    faults=self.faults)
                self._hosts[key] = host
                self._refs[key] = 0
                TELEMETRY.metrics.counter("hosts.spawned").inc()
            self._refs[key] += 1
            reaper = self._reapers.pop(key, None)
            TELEMETRY.metrics.gauge("hosts.pooled").set(len(self._hosts))
        return host, reaper

    def _respawn(self, key, dead_host: SentinelHost, container_path,
                 network, strategy: str, deadline):
        """Replace *dead_host* and open a fresh session for one lease.

        The dead host is evicted (wiping its ref accounting — every
        surviving lease re-registers via its own respawn, or detects the
        eviction at release time); the replacement is shared, so many
        leases crashing together converge on one new child.
        """
        with self._lock:
            if self._hosts.get(key) is dead_host:
                self._evict_locked(key)
        host, reaper = self._checkout_locked(key, container_path, network)
        if reaper is not None:
            reaper.cancel()
        try:
            chan = host.open(strategy, timeout=deadline)
        except BaseException:
            self._release(key, host)
            raise
        return host, chan

    def _release(self, key, host: SentinelHost) -> None:
        with self._lock:
            if self._hosts.get(key) is not host:
                shutdown_now = True  # host was already evicted/replaced
            else:
                self._refs[key] -= 1
                shutdown_now = not host.alive and self._refs[key] <= 0
                if self._refs[key] <= 0 and not shutdown_now:
                    self._reapers[key] = hostloop.shared_loop().call_later(
                        self.linger, self._reap, key, host)
                if shutdown_now:
                    self._evict_locked(key)
        if shutdown_now:
            host.shutdown()

    def _reap(self, key, host: SentinelHost) -> None:
        with self._lock:
            if self._hosts.get(key) is not host or self._refs.get(key, 0) > 0:
                return
            self._evict_locked(key)
        host.shutdown()

    def _evict_locked(self, key) -> None:
        self._hosts.pop(key, None)
        self._refs.pop(key, None)
        reaper = self._reapers.pop(key, None)
        if reaper is not None:
            reaper.cancel()
        TELEMETRY.metrics.gauge("hosts.pooled").set(len(self._hosts))

    def shutdown_all(self) -> None:
        with self._lock:
            hosts = list(self._hosts.values())
            self._hosts.clear()
            self._refs.clear()
            for reaper in self._reapers.values():
                reaper.cancel()
            self._reapers.clear()
        for host in hosts:
            host.shutdown()


#: The process-wide host pool used by the strategies.
HOST_POOL = SentinelHostPool()
atexit.register(HOST_POOL.shutdown_all)


if __name__ == "__main__":
    sys.exit(main())
