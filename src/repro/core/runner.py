"""The sentinel child-process driver (``python -m repro.core.runner``).

The two process-based strategies really do run the sentinel in a
separate operating-system process, as the paper's §4.1/§4.2 prescribe:
"the stub ... first creates a new process for running the executable
associated with the active file" and "creates two pipes and attaches
them to the standard input and output of the sentinel process".

This module contains both halves of that arrangement:

* :func:`main` — the child side.  It loads the container, instantiates
  the sentinel from its spec, wires the data part (and, if granted, a
  :class:`~repro.core.netproxy.ProxyNetwork` back to the application's
  simulated network) and runs either the stream pumps (simple process
  strategy, Figure 2) or the control dispatch loop (process-plus-control).
* :func:`launch_runner` — the parent-side stub helper that creates the
  pipes, spawns the child, and starts the network bridge.

File-descriptor layout in the child:

====  =========================================================
fd    purpose
====  =========================================================
0     write pipe (application -> sentinel, raw data)
1     read pipe (sentinel -> application; raw data in stream
      mode, response frames in control mode)
2     stderr (captured by the parent for crash diagnostics)
N     control channel (``--control-fd N``; command frames)
N     network bridge out/in (``--net-out-fd`` / ``--net-in-fd``)
====  =========================================================
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from collections import deque
from dataclasses import dataclass, field
from subprocess import PIPE, Popen

from repro.core.container import Container
from repro.core.control import decode_message
from repro.core.dispatch import SentinelDispatcher
from repro.core.netproxy import NetworkBridgeServer, ProxyNetwork
from repro.core.sentinel import SentinelContext
from repro.core.strategies.common import make_data_part
from repro.errors import ChannelClosedError
from repro.util.framing import read_exact, read_frame, write_frame

__all__ = ["main", "launch_runner", "RunnerHandle"]


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------

def _build_context(container: Container, args) -> SentinelContext:
    network = None
    if args.net_out_fd >= 0 and args.net_in_fd >= 0:
        network = ProxyNetwork(
            rfile=os.fdopen(args.net_in_fd, "rb", buffering=0),
            wfile=os.fdopen(args.net_out_fd, "wb", buffering=0),
        )
    return SentinelContext(
        path=str(container.path),
        params=dict(container.spec.params),
        data=make_data_part(container),
        network=network,
        shared=None,  # cross-process sentinels coordinate via FileLock/IPC
        meta=dict(container.meta),
        strategy=args.strategy_name,
    )


def _run_stream(sentinel, ctx: SentinelContext) -> int:
    """Figure 2: two pump threads, raw pipes, no control channel."""
    stdin = os.fdopen(0, "rb", buffering=0)
    stdout = os.fdopen(1, "wb", buffering=0)
    sentinel.on_open(ctx)

    def read_pump() -> None:
        """Sentinel -> application: push the generated stream."""
        try:
            for chunk in sentinel.generate(ctx):
                stdout.write(chunk)
        except (BrokenPipeError, ValueError):
            return  # application closed its read end; stop producing
        finally:
            try:
                stdout.close()
            except (BrokenPipeError, OSError):
                pass

    def write_pump() -> None:
        """Application -> sentinel: absorb the written stream."""
        offset = 0
        while True:
            chunk = stdin.read(65536)
            if not chunk:
                return
            offset += sentinel.consume(ctx, chunk, offset)

    threads = [
        threading.Thread(target=read_pump, name="af-read-pump", daemon=True),
        threading.Thread(target=write_pump, name="af-write-pump", daemon=True),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    try:
        sentinel.on_close(ctx)
    finally:
        ctx.data.close()
    return 0


def _run_control(sentinel, ctx: SentinelContext, control_fd: int) -> int:
    """§4.2: block on the control channel, answer on the read pipe."""
    stdin = os.fdopen(0, "rb", buffering=0)
    stdout = os.fdopen(1, "wb", buffering=0)
    control_pipe = os.fdopen(control_fd, "rb", buffering=0)
    dispatcher = SentinelDispatcher(sentinel, ctx)
    dispatcher.open()
    try:
        while True:
            try:
                fields, _ = decode_message(read_frame(control_pipe))
            except ChannelClosedError:
                return 0  # application vanished without a close command
            payload = b""
            count = int(fields.get("count", 0))
            if count:
                payload = read_exact(stdin, count)
            write_frame(stdout, dispatcher.handle(fields, payload))
            if fields.get("cmd") == "close":
                return 0
    finally:
        dispatcher.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.core.runner")
    parser.add_argument("--container", required=True)
    parser.add_argument("--mode", choices=("stream", "control"), required=True)
    parser.add_argument("--control-fd", type=int, default=-1)
    parser.add_argument("--net-out-fd", type=int, default=-1)
    parser.add_argument("--net-in-fd", type=int, default=-1)
    parser.add_argument("--strategy-name", default="process")
    args = parser.parse_args(argv)

    container = Container.load(args.container)
    sentinel = container.spec.instantiate()
    ctx = _build_context(container, args)
    if args.mode == "stream":
        return _run_stream(sentinel, ctx)
    if args.control_fd < 0:
        parser.error("--mode control requires --control-fd")
    return _run_control(sentinel, ctx, args.control_fd)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class RunnerHandle:
    """Everything the parent-side stub holds about one sentinel child."""

    proc: Popen
    stdin: object          # application's write pipe (raw)
    stdout: object         # application's read pipe (raw/frames)
    control: object | None  # control-channel write end, or None
    bridge: NetworkBridgeServer | None
    stderr_tail: deque = field(default_factory=lambda: deque(maxlen=50))

    def stderr_text(self) -> str:
        return "".join(self.stderr_tail).strip()


def launch_runner(container_path: str, mode: str,
                  network=None) -> RunnerHandle:
    """Spawn the sentinel child and wire its pipes (the OpenFile stub)."""
    argv = [sys.executable, "-m", "repro.core.runner",
            "--container", str(container_path), "--mode", mode]
    pass_fds: list[int] = []
    to_close: list[int] = []

    control_write = None
    if mode == "control":
        control_read_fd, control_write_fd = os.pipe()
        argv += ["--control-fd", str(control_read_fd)]
        pass_fds.append(control_read_fd)
        to_close.append(control_read_fd)
        control_write = os.fdopen(control_write_fd, "wb", buffering=0)

    bridge = None
    if network is not None:
        req_read_fd, req_write_fd = os.pipe()   # child writes requests
        resp_read_fd, resp_write_fd = os.pipe()  # child reads responses
        argv += ["--net-out-fd", str(req_write_fd),
                 "--net-in-fd", str(resp_read_fd)]
        pass_fds += [req_write_fd, resp_read_fd]
        to_close += [req_write_fd, resp_read_fd]
        bridge = NetworkBridgeServer(
            network,
            rfile=os.fdopen(req_read_fd, "rb", buffering=0),
            wfile=os.fdopen(resp_write_fd, "wb", buffering=0),
        )
        bridge.start()

    strategy_name = "process" if mode == "stream" else "process-control"
    argv += ["--strategy-name", strategy_name]
    proc = Popen(argv, stdin=PIPE, stdout=PIPE, stderr=PIPE,
                 bufsize=0, pass_fds=pass_fds)
    for fd in to_close:  # child-side ends stay open in the child only
        os.close(fd)

    handle = RunnerHandle(proc=proc, stdin=proc.stdin, stdout=proc.stdout,
                          control=control_write, bridge=bridge)

    def drain_stderr() -> None:
        for line in proc.stderr:
            handle.stderr_tail.append(line.decode("utf-8", errors="replace"))

    threading.Thread(target=drain_stderr, name="af-stderr-drain",
                     daemon=True).start()
    return handle


if __name__ == "__main__":
    sys.exit(main())
