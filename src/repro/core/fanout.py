"""Per-container coherence domain + pub/sub fan-out plane.

The paper's §2 contract — "multiple sentinels are created, which
synchronize amongst themselves" — previously stopped at a FileLock and a
shared dict.  This module is the synchronization fabric proper: every
open of one container joins a :class:`CoherenceDomain`, which provides

* **read leases** — a member whose lease is valid may serve reads from
  its private cache with *zero* origin round trips; a remote write
  either push-installs the new bytes (lease stays valid) or revokes the
  lease (next read revalidates);
* **write fences** — per-extent serialization, so two writers of
  overlapping ranges never race each other's origin pushes;
* **single-flight fills** — concurrent cache misses for the same window
  from different opens collapse onto one origin fetch;
* **pub/sub fan-out** — one published update is staged once and
  multicast to every subscriber's bounded queue, with slow consumers
  evicted rather than allowed to wedge the publisher.

The domain is process-local by design: the pooled sentinel host runs
every open of a container in one child process, so the host child *is*
the consistency domain for the process strategies, exactly as the
application process is for the thread/inproc strategies.

Telemetry: the ``lease.*`` and ``fanout.*`` counter families mirror the
domain's own integer counters into the process-wide metrics registry,
so evidence bundles (and the doctor's ``fanout-slow-consumer`` /
``lease-invalidation-storm`` checks) see them without new plumbing.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable

from repro.core.telemetry import TELEMETRY
from repro.errors import FanoutError, SubscriberEvictedError

__all__ = ["CoherenceDomain", "domain_for", "DEFAULT_MAX_PENDING"]

#: Default bound of a subscriber's pending-update queue.
DEFAULT_MAX_PENDING = 64


def _metric(name: str):
    return TELEMETRY.metrics.counter(name)


class _Member:
    """One open's callbacks into its private cache/view."""

    __slots__ = ("invalidate", "install")

    def __init__(self, invalidate: Callable[[Any, Any], None] | None,
                 install: Callable[[int, bytes, Any, Any], None] | None
                 ) -> None:
        self.invalidate = invalidate
        self.install = install


class _Subscriber:
    """A bounded pending-update queue owned by one member."""

    __slots__ = ("member", "max_pending", "queue", "evicted")

    def __init__(self, member: int, max_pending: int) -> None:
        self.member = member
        self.max_pending = max_pending
        self.queue: deque[dict[str, Any]] = deque()
        self.evicted = False


class _FillEntry:
    """One single-flight origin fill, joinable across members.

    The *start* factory (typically ``fetch_window``) is run once by the
    registering member — so exactly one origin request goes out — and
    the resolver it returns is claimed by whichever member demands the
    bytes first.  Joiners wait on that outcome; if the claimer's
    resolver raises, everyone sees the error and the entry is dropped
    so the next miss retries afresh.
    """

    __slots__ = ("epoch", "done", "_ready", "_resolver", "_issue_error",
                 "_event", "_claim", "_data", "_error")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.done = False
        self._ready = threading.Event()
        self._resolver: Callable[[], bytes] | None = None
        self._issue_error: BaseException | None = None
        self._event = threading.Event()
        self._claim = threading.Lock()
        self._data = b""
        self._error: BaseException | None = None

    def arm(self, resolver: Callable[[], bytes]) -> None:
        self._resolver = resolver
        self._ready.set()

    def poison(self, exc: BaseException) -> None:
        self._issue_error = exc
        self._ready.set()

    def result(self) -> bytes:
        self._ready.wait()
        if self._issue_error is not None:
            raise self._issue_error
        claimed = self._claim.acquire(blocking=False)
        if claimed and not self._event.is_set():
            try:
                self._data = self._resolver()
            except BaseException as exc:
                self._error = exc
            finally:
                self._event.set()
        else:
            self._event.wait()
        if self._error is not None:
            raise self._error
        return self._data


class CoherenceDomain:
    """The consistency domain shared by every open of one container."""

    def __init__(self, scope: str = "") -> None:
        self.scope = scope
        self._lock = threading.RLock()
        self._fence_freed = threading.Condition(self._lock)
        self._members: dict[int, _Member] = {}
        self._next_member = 1
        #: member -> lease validity (True = reads need no revalidation).
        self._leases: dict[int, bool] = {}
        #: Active write fences: [start, end, member] byte extents.
        self._fences: list[list[int]] = []
        #: Bumped on every fence/publish/invalidate; fills from older
        #: epochs are never joined (a post-write miss must see the
        #: post-write origin, not a pre-write in-flight fetch).
        self._epoch = 0
        self._seq = 0
        #: member -> seq of its latest publish (lets the generic
        #: publish handler detect a write path that already published).
        self._last_pub: dict[int, int] = {}
        self._fills: dict[Any, _FillEntry] = {}
        self._subs: dict[int, _Subscriber] = {}
        self._next_sub = 1
        # Plain-int mirrors of the lease.*/fanout.* registry counters,
        # queryable in-process via stats() (the registry counters live
        # in whichever process the domain does; a benchmark in the app
        # process reads these through a control op instead).
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.evicted = 0
        self.lease_granted = 0
        self.lease_invalidated = 0
        self.fill_coalesced = 0
        self.write_waits = 0

    # -- membership ----------------------------------------------------------------

    def register(self,
                 invalidate: Callable[[Any, Any], None] | None = None,
                 install: Callable[[int, bytes, Any, Any], None] | None = None
                 ) -> int:
        """Join the domain; returns this open's member id.

        ``invalidate(offset, size)`` (offset ``None`` = everything)
        drops the member's cached range after a remote write it was not
        given bytes for; ``install(offset, data, total, version)``
        push-installs published bytes so the member's lease can stay
        valid across the update.
        """
        with self._lock:
            member = self._next_member
            self._next_member += 1
            self._members[member] = _Member(invalidate, install)
            self._leases[member] = False
            return member

    def unregister(self, member: int) -> None:
        with self._lock:
            self._members.pop(member, None)
            self._leases.pop(member, None)
            self._last_pub.pop(member, None)
            dead = [sid for sid, sub in self._subs.items()
                    if sub.member == member]
            for sid in dead:
                del self._subs[sid]
            self._fences = [f for f in self._fences if f[2] != member]
            self._fence_freed.notify_all()
            self._sub_gauge()

    @property
    def members(self) -> int:
        with self._lock:
            return len(self._members)

    @property
    def seq(self) -> int:
        return self._seq

    def last_published(self, member: int) -> int:
        """Seq of *member*'s most recent publish (0 if none).

        A member's operations are serial, so comparing this before and
        after an ``on_write`` call tells exactly whether that write path
        published on its own behalf.
        """
        with self._lock:
            return self._last_pub.get(member, 0)

    # -- read leases ---------------------------------------------------------------

    def lease_valid(self, member: int) -> bool:
        with self._lock:
            return self._leases.get(member, False)

    def grant(self, member: int) -> None:
        """Record a successful revalidation: reads are origin-free
        until a peer write revokes the lease."""
        with self._lock:
            if member not in self._members:
                return
            self._leases[member] = True
            self.lease_granted += 1
        _metric("lease.granted").inc()

    # -- write serialization -------------------------------------------------------

    @contextmanager
    def write_fence(self, member: int, offset: int, size: int):
        """Serialize writers per extent: overlapping fences queue.

        Entering and leaving the fence both bump the fill epoch, so a
        single-flight fill started before the write can never be joined
        after it.
        """
        end = offset + max(int(size), 1)
        token = [int(offset), end, member]
        with self._fence_freed:
            waited = False
            while any(s < end and e > offset and owner != member
                      for s, e, owner in self._fences):
                waited = True
                self._fence_freed.wait(timeout=5.0)
            if waited:
                self.write_waits += 1
                _metric("lease.write_waits").inc()
            self._fences.append(token)
            self._bump_epoch_locked()
        try:
            yield
        finally:
            with self._fence_freed:
                if token in self._fences:
                    self._fences.remove(token)
                self._bump_epoch_locked()
                self._fence_freed.notify_all()

    def _bump_epoch_locked(self) -> None:
        self._epoch += 1
        self._fills.clear()

    # -- fan-out -------------------------------------------------------------------

    def publish(self, member: int, offset: int, data: bytes, *,
                total: int | None = None, version: Any = None,
                fields: dict[str, Any] | None = None) -> int:
        """Fan one update out to every other member and subscriber.

        Peers with an ``install`` callback get the bytes pushed into
        their caches and keep their leases; peers with only an
        ``invalidate`` callback lose the covered range and their lease.
        Every live subscriber (except the publisher's own) gets one
        bounded-queue record; a queue past its bound evicts its
        subscriber instead of blocking the publisher.  Returns the
        publish sequence number.
        """
        data = bytes(data)
        with self._lock:
            self._bump_epoch_locked()
            self._seq += 1
            seq = self._seq
            self._last_pub[member] = seq
            peers = [(mid, m) for mid, m in self._members.items()
                     if mid != member]
            subs = list(self._subs.items())
            self.published += 1
        _metric("fanout.published").inc()
        revoked: list[int] = []
        for mid, peer in peers:
            if peer.install is not None:
                peer.install(offset, data, total, version)
            else:
                if peer.invalidate is not None:
                    if data:
                        peer.invalidate(offset, len(data))
                    else:
                        peer.invalidate(None, None)
                revoked.append(mid)
        if revoked:
            self._revoke(revoked)
        record = {"seq": seq, "offset": int(offset), "size": len(data)}
        if total is not None:
            record["total"] = int(total)
        if fields:
            record.update(fields)
        self._enqueue(record, skip_member=member)
        return seq

    def invalidate_peers(self, member: int, offset: int | None = None,
                         size: int | None = None) -> None:
        """Revoke every other member's lease (and cached range).

        The heavyweight consistency action — truncation, or an update
        whose bytes are not worth shipping; peers revalidate against
        the origin on their next read.
        """
        with self._lock:
            self._bump_epoch_locked()
            peers = [(mid, m) for mid, m in self._members.items()
                     if mid != member]
        for mid, peer in peers:
            if peer.invalidate is not None:
                peer.invalidate(offset, size)
        self._revoke([mid for mid, _ in peers])

    def _revoke(self, members: list[int]) -> None:
        revoked = 0
        with self._lock:
            for mid in members:
                if self._leases.get(mid):
                    self._leases[mid] = False
                    revoked += 1
            self.lease_invalidated += revoked
        if revoked:
            _metric("lease.invalidated").inc(revoked)

    def _enqueue(self, record: dict[str, Any], *, skip_member: int) -> None:
        delivered = dropped = newly_evicted = 0
        with self._lock:
            for sub in self._subs.values():
                if sub.member == skip_member or sub.evicted:
                    continue
                if len(sub.queue) >= sub.max_pending:
                    # Slow consumer: drop its backlog and evict it —
                    # the publisher never blocks on a dead reader.
                    dropped += len(sub.queue) + 1
                    sub.queue.clear()
                    sub.evicted = True
                    newly_evicted += 1
                    continue
                sub.queue.append(dict(record))
                delivered += 1
            self.delivered += delivered
            self.dropped += dropped
            self.evicted += newly_evicted
            if newly_evicted:
                self._sub_gauge()
        if delivered:
            _metric("fanout.delivered").inc(delivered)
        if dropped:
            _metric("fanout.dropped").inc(dropped)
        if newly_evicted:
            _metric("fanout.evicted").inc(newly_evicted)

    # -- single-flight fills -------------------------------------------------------

    def fill(self, key: Any, start: Callable[[], Callable[[], bytes]]
             ) -> Callable[[], bytes]:
        """Collapse concurrent misses for *key* onto one origin fetch.

        *start* issues the origin request and returns its resolver; it
        runs only for the first member to miss.  Members missing while
        that fetch is *in flight* (same epoch — no intervening write)
        get a joining resolver instead and are counted as
        ``lease.fill_coalesced``; once a fill completes it is dropped,
        so a later miss (e.g. a fresh open) fetches afresh.
        """
        with self._lock:
            entry = self._fills.get(key)
            if entry is not None and entry.epoch == self._epoch \
                    and not entry.done:
                self.fill_coalesced += 1
                join = True
            else:
                if len(self._fills) > 512:
                    self._fills.clear()
                entry = _FillEntry(self._epoch)
                self._fills[key] = entry
                join = False
        if join:
            _metric("lease.fill_coalesced").inc()
            return lambda: self._run_fill(key, entry)
        try:
            resolver = start()
        except BaseException as exc:
            with self._lock:
                if self._fills.get(key) is entry:
                    del self._fills[key]
            entry.poison(exc)
            raise
        entry.arm(resolver)
        return lambda: self._run_fill(key, entry)

    def _run_fill(self, key: Any, entry: _FillEntry) -> bytes:
        try:
            return entry.result()
        except BaseException:
            # A failed fill must not be sticky: drop the entry so the
            # next miss (e.g. after a partition heals) goes to origin.
            with self._lock:
                if self._fills.get(key) is entry:
                    del self._fills[key]
            raise
        finally:
            # Completed fills stop accepting joiners: coalescing is for
            # concurrent misses, never for serving stale re-fetches.
            entry.done = True
            with self._lock:
                if self._fills.get(key) is entry:
                    del self._fills[key]

    # -- pub/sub -------------------------------------------------------------------

    def subscribe(self, member: int,
                  max_pending: int = DEFAULT_MAX_PENDING) -> int:
        """Open a bounded update queue for *member*; returns its id."""
        max_pending = int(max_pending)
        if max_pending <= 0:
            raise FanoutError(
                f"max_pending must be positive, got {max_pending}")
        with self._lock:
            sub_id = self._next_sub
            self._next_sub += 1
            self._subs[sub_id] = _Subscriber(member, max_pending)
            self._sub_gauge()
        return sub_id

    def poll(self, sub_id: int, max_items: int = DEFAULT_MAX_PENDING
             ) -> list[dict[str, Any]]:
        """Drain up to *max_items* pending updates (oldest first).

        An evicted subscription raises :class:`SubscriberEvictedError`
        exactly once (and is removed): updates were dropped, so the
        caller must resubscribe and re-read for a fresh view.
        """
        with self._lock:
            sub = self._subs.get(sub_id)
            if sub is None:
                raise FanoutError(f"unknown subscription id {sub_id}")
            if sub.evicted:
                del self._subs[sub_id]
                self._sub_gauge()
                raise SubscriberEvictedError(
                    f"subscription {sub_id} evicted as a slow consumer "
                    f"(bound {sub.max_pending}); resubscribe for a fresh "
                    f"view")
            out = []
            while sub.queue and len(out) < int(max_items):
                out.append(sub.queue.popleft())
            return out

    def unsubscribe(self, sub_id: int) -> None:
        with self._lock:
            self._subs.pop(sub_id, None)
            self._sub_gauge()

    def _sub_gauge(self) -> None:
        """Live subscriber count for this domain (lock held)."""
        TELEMETRY.metrics.gauge("fanout.subscribers").set(
            float(len(self._subs)))

    # -- observability --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "members": len(self._members),
                "subscribers": len(self._subs),
                "leases_valid": sum(1 for v in self._leases.values() if v),
                "seq": self._seq,
                "published": self.published,
                "delivered": self.delivered,
                "dropped": self.dropped,
                "evicted": self.evicted,
                "lease_granted": self.lease_granted,
                "lease_invalidated": self.lease_invalidated,
                "fill_coalesced": self.fill_coalesced,
                "write_waits": self.write_waits,
            }


_registry_lock = threading.Lock()
_registry: dict[str, CoherenceDomain] = {}


def domain_for(path: "str | os.PathLike") -> CoherenceDomain:
    """The per-container coherence domain (process-global registry).

    Keyed by realpath, mirroring :func:`repro.core.sync.shared_state_for`:
    in the application process this joins thread/inproc opens, and in a
    pooled host child — which serves exactly one container — it joins
    every channel session of that container.
    """
    key = str(os.path.realpath(os.fspath(path)))
    with _registry_lock:
        domain = _registry.get(key)
        if domain is None:
            domain = CoherenceDomain(scope=key)
            _registry[key] = domain
        return domain
