"""The native active-files runtime — the paper's primary contribution.

Public surface:

* :func:`~repro.core.opener.create_active` / :func:`~repro.core.opener.open_active`
  — make and open active files;
* :class:`~repro.core.sentinel.Sentinel` / :class:`~repro.core.sentinel.StreamSentinel`
  — the sentinel programming model;
* :class:`~repro.core.interception.MediatingConnector` — transparent
  ``open()`` interception for unmodified legacy code;
* :class:`~repro.core.api.Win32Api` — the Win32-flavoured handle API;
* :class:`~repro.core.container.Container` / :class:`~repro.core.spec.SentinelSpec`
  — the on-disk representation.
"""

from repro.core.api import Win32Api
from repro.core.cache import BlockCache
from repro.core.container import ACTIVE_SUFFIX, Container, is_active_path
from repro.core.fileobj import ActiveFile
from repro.core.handles import HandleTable
from repro.core.interception import MediatingConnector
from repro.core.opener import create_active, open_active
from repro.core.sentinel import Sentinel, SentinelContext, StreamSentinel
from repro.core.spec import SentinelSpec
from repro.core.strategies import STRATEGIES

__all__ = [
    "ACTIVE_SUFFIX",
    "ActiveFile",
    "BlockCache",
    "Container",
    "HandleTable",
    "MediatingConnector",
    "STRATEGIES",
    "Sentinel",
    "SentinelContext",
    "SentinelSpec",
    "StreamSentinel",
    "Win32Api",
    "create_active",
    "is_active_path",
    "open_active",
]
