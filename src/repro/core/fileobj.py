"""The application-facing file object.

"From the user process' perspective, interactions with active files are
indistinguishable from interactions with ordinary (passive) files"
(§2.1).  :class:`ActiveFile` delivers that property for Python code: it
subclasses :class:`io.RawIOBase`, so everything that accepts a binary
file — ``io.TextIOWrapper``, ``io.BufferedReader``, ``shutil``,
``json.load`` — works on an active file unmodified.

The object owns the application-side cursor and translates positioned
reads/writes onto its strategy session.  Sessions without random access
(the simple process strategy) are driven through their sequential stream
plane instead, and ``seekable()`` honestly reports ``False``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any

from repro.core.strategies.base import Session
from repro.errors import UnsupportedOperationError
from repro.util.finalize import defer_close, ensure_reaper

__all__ = ["ActiveFile", "FileStats"]


@dataclass
class FileStats:
    """Per-open operation counters (monitoring hook).

    The paper motivates sentinels that "monitor how the application
    uses this file"; these counters are the application-side mirror,
    useful for tests, tuning, and the benchmark harness.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    controls: int = 0


class ActiveFile(io.RawIOBase):
    """A binary file object served by a sentinel."""

    def __init__(self, session: Session, name: str = "", *,
                 readable: bool = True, writable: bool = True,
                 append: bool = False) -> None:
        super().__init__()
        ensure_reaper()  # so a leaked open can be closed off the GC path
        self._session = session
        self.name = name
        self._readable = readable
        self._writable = writable
        self._session_closed = False
        self.stats = FileStats()
        self._pos = 0
        if append and session.supports_random_access:
            self._pos = session.size()

    # -- io.RawIOBase surface ------------------------------------------------------

    def readable(self) -> bool:
        return self._readable

    def writable(self) -> bool:
        return self._writable

    def seekable(self) -> bool:
        return self._session.supports_random_access

    @property
    def session(self) -> Session:
        """The underlying strategy session (for introspection)."""
        return self._session

    @property
    def strategy(self) -> str:
        return self._session.strategy

    def transport_stats(self) -> dict[str, Any] | None:
        """Transport-level counters, when the strategy is channel-backed.

        A snapshot of the shared connection's
        :class:`~repro.core.channel.ChannelCounters` — per-op latency,
        byte totals, and the in-flight high-water mark that evidences
        pipelining.  ``None`` for inline strategies with no transport.
        """
        counters = self._session.counters
        return None if counters is None else counters.snapshot()

    def readinto(self, buffer) -> int:
        self._ensure_open()
        if not self._readable:
            raise UnsupportedOperationError(f"{self.name}: not open for reading")
        view = memoryview(buffer)
        if self._session.supports_random_access:
            data = self._session.read_at(self._pos, len(view))
        else:
            data = self._session.read_stream(len(view))
        view[:len(data)] = data
        self._pos += len(data)
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        return len(data)

    def write(self, data) -> int:
        self._ensure_open()
        if not self._writable:
            raise UnsupportedOperationError(f"{self.name}: not open for writing")
        data = bytes(data)
        if self._session.supports_random_access:
            written = self._session.write_at(self._pos, data)
        else:
            written = self._session.write_stream(data)
        self._pos += written
        self.stats.writes += 1
        self.stats.bytes_written += written
        return written

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        self._ensure_open()
        if not self._session.supports_random_access:
            raise UnsupportedOperationError(
                f"{self._session.strategy}: seek requires a control channel "
                "(use the process-control, thread, or inproc strategy)"
            )
        if whence == io.SEEK_SET:
            target = offset
        elif whence == io.SEEK_CUR:
            target = self._pos + offset
        elif whence == io.SEEK_END:
            target = self._session.size() + offset
        else:
            raise ValueError(f"bad whence: {whence}")
        if target < 0:
            raise ValueError(f"negative seek target: {target}")
        self._pos = target
        self.stats.seeks += 1
        return self._pos

    def tell(self) -> int:
        return self._pos

    def truncate(self, size: int | None = None) -> int:
        self._ensure_open()
        target = self._pos if size is None else size
        self._session.truncate(target)
        return target

    def flush(self) -> None:
        if self.closed or self._session_closed:
            return
        if self._session.supports_control:
            self._session.flush()

    # -- beyond the passive-file surface ---------------------------------------------

    def getsize(self) -> int:
        """GetFileSize: ask the sentinel how big the file appears to be."""
        self._ensure_open()
        return self._session.size()

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        """Send a custom control operation to the sentinel.

        This is the programmability escape hatch: applications that *do*
        know they are holding an active file can steer the sentinel
        ("yielding control to the end application") without leaving the
        file abstraction.
        """
        self._ensure_open()
        self.stats.controls += 1
        return self._session.control(op, args, payload)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        try:
            if not self._session_closed:
                self._session.close()
                self._session_closed = True
        finally:
            super().close()

    def _ensure_open(self) -> None:
        if self.closed:
            raise ValueError("I/O operation on closed active file")

    def __del__(self) -> None:
        # io.IOBase's finalizer would call close() right here, inside the
        # garbage collector — where the session's transport work can
        # deadlock against a lock held by the interrupted thread.
        # Resurrect the leaked file into the reaper thread instead.
        if not self.closed:
            defer_close(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else f"pos={self._pos}"
        return (f"ActiveFile(name={self.name!r}, "
                f"strategy={self._session.strategy!r}, {state})")
