"""The application-facing file object.

"From the user process' perspective, interactions with active files are
indistinguishable from interactions with ordinary (passive) files"
(§2.1).  :class:`ActiveFile` delivers that property for Python code: it
subclasses :class:`io.RawIOBase`, so everything that accepts a binary
file — ``io.TextIOWrapper``, ``io.BufferedReader``, ``shutil``,
``json.load`` — works on an active file unmodified.

The object owns the application-side cursor and translates positioned
reads/writes onto its strategy session.  Sessions without random access
(the simple process strategy) are driven through their sequential stream
plane instead, and ``seekable()`` honestly reports ``False``.
"""

from __future__ import annotations

import io
from dataclasses import asdict, dataclass
from typing import Any

from repro.core.strategies.base import Session
from repro.core.telemetry import NULL_SPAN, TELEMETRY
from repro.errors import ActiveFileError, UnsupportedOperationError
from repro.util.finalize import defer_close, ensure_reaper

__all__ = ["ActiveFile", "FileStats"]


@dataclass
class FileStats:
    """Per-open operation counters (monitoring hook).

    The paper motivates sentinels that "monitor how the application
    uses this file"; these counters are the application-side mirror,
    useful for tests, tuning, and the benchmark harness.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    controls: int = 0
    # Sentinel-side cache counters, populated by refresh_cache_stats()
    # for sentinels that answer the "cache-stats" control op.
    cache_hits: int = 0
    cache_misses: int = 0
    prefetch_issued: int = 0
    prefetch_used: int = 0
    coalesced_flushes: int = 0
    dirty_high_water: int = 0


class ActiveFile(io.RawIOBase):
    """A binary file object served by a sentinel."""

    def __init__(self, session: Session, name: str = "", *,
                 readable: bool = True, writable: bool = True,
                 append: bool = False) -> None:
        super().__init__()
        ensure_reaper()  # so a leaked open can be closed off the GC path
        self._session = session
        self.name = name
        self._readable = readable
        self._writable = writable
        self._session_closed = False
        self.stats = FileStats()
        self._pos = 0
        # Re-home this open's counters under telemetry.snapshot()["files"]
        # (weakly: the entry vanishes with the file object).
        TELEMETRY.register_collector("files", name or "<anonymous>",
                                     self.stats, asdict)
        # The per-open trace context (tentpole: "a per-open trace context
        # with trace/span IDs propagated through the framed channel
        # envelope").  Created only when tracing was on at open time; the
        # root span stays open until close().
        self._trace = None
        if TELEMETRY.tracing:
            self._trace = TELEMETRY.new_trace(
                "file", attrs={"path": name, "strategy": session.strategy})
        if append:
            if not session.supports_random_access:
                raise UnsupportedOperationError(
                    f"{session.strategy}: append mode needs the end-of-file "
                    "position, which requires random access (use the "
                    "process-control, thread, or inproc strategy)")
            self._pos = session.size()

    # -- io.RawIOBase surface ------------------------------------------------------

    def readable(self) -> bool:
        return self._readable

    def writable(self) -> bool:
        return self._writable

    def seekable(self) -> bool:
        return self._session.supports_random_access

    @property
    def session(self) -> Session:
        """The underlying strategy session (for introspection)."""
        return self._session

    @property
    def strategy(self) -> str:
        return self._session.strategy

    def transport_stats(self) -> dict[str, Any] | None:
        """Transport-level counters, when the strategy is channel-backed.

        A snapshot of the shared connection's
        :class:`~repro.core.channel.ChannelCounters` — per-op latency,
        byte totals, and the in-flight high-water mark that evidences
        pipelining.  ``None`` for inline strategies with no transport.
        """
        counters = self._session.counters
        return None if counters is None else counters.snapshot()

    def _span(self, name: str, **attrs: Any):
        """An app-call span in this file's trace (no-op when untraced)."""
        if self._trace is None or not TELEMETRY.tracing:
            return NULL_SPAN
        current = TELEMETRY.current()
        parent = current if current is not None \
            and current.trace == self._trace.id else self._trace.root
        return TELEMETRY.span(f"app.{name}", parent=parent,
                              attrs=attrs or None)

    def readinto(self, buffer) -> int:
        self._ensure_open()
        if not self._readable:
            raise UnsupportedOperationError(f"{self.name}: not open for reading")
        view = memoryview(buffer)
        with self._span("readinto", offset=self._pos, size=len(view)):
            if self._session.supports_random_access:
                # Fills the caller's buffer directly — no intermediate bytes.
                count = self._session.read_at_into(self._pos, view)
            else:
                data = self._session.read_stream(len(view))
                count = len(data)
                view[:count] = data
        self._pos += count
        self.stats.reads += 1
        self.stats.bytes_read += count
        return count

    def read(self, size: int = -1) -> bytes:
        """Read up to *size* bytes (all remaining if negative).

        Overrides :class:`io.RawIOBase`'s default, which allocates a
        bytearray, fills it via :meth:`readinto`, then copies it into
        the result — the session's bytes are returned as-is instead.
        """
        if size is None or size < 0:
            return self.readall()
        self._ensure_open()
        if not self._readable:
            raise UnsupportedOperationError(f"{self.name}: not open for reading")
        with self._span("read", offset=self._pos, size=size):
            if self._session.supports_random_access:
                data = self._session.read_at(self._pos, size)
            else:
                data = self._session.read_stream(size)
        self._pos += len(data)
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        return data

    def readall(self) -> bytes:
        """Read to end of file in progressively larger bounded chunks.

        Starts small so sentinels that meter *requested* bytes (e.g. a
        sandbox budget) are not overcharged for small files, and grows
        toward 1 MiB so large files don't pay a round trip per 8 KiB.
        """
        chunks = []
        step = 8 * 1024
        while True:
            chunk = self.read(step)
            if not chunk:
                break
            chunks.append(chunk)
            step = min(step * 2, 1024 * 1024)
        return b"".join(chunks)

    def read_scatter(self, sizes: list[int]) -> list[bytes]:
        """ReadFileScatter: fill many buffers from the cursor in one go.

        Equivalent to consecutive reads of each size, but the whole
        batch travels as one vectored exchange on channel strategies.
        A short extent ends the sequence (end of file).
        """
        self._ensure_open()
        if not self._readable:
            raise UnsupportedOperationError(f"{self.name}: not open for reading")
        if not self._session.supports_random_access:
            raise UnsupportedOperationError(
                f"{self._session.strategy}: scatter read requires random access")
        extents = []
        position = self._pos
        for size in sizes:
            extents.append((position, int(size)))
            position += int(size)
        with self._span("read_scatter", extents=len(extents)):
            results = self._session.read_multi(extents)
        out: list[bytes] = []
        eof = False
        for (wanted_offset, wanted), data in zip(extents, results):
            if eof:
                # Past end of file: consecutive reads would return b""
                # and leave the cursor parked at the short-read point.
                data = b""
            else:
                self._pos = wanted_offset + len(data)
            out.append(data)
            self.stats.reads += 1
            self.stats.bytes_read += len(data)
            if len(data) < wanted:
                eof = True
        return out

    def write_gather(self, buffers: list[bytes]) -> int:
        """WriteFileGather: write many buffers from the cursor in one go."""
        self._ensure_open()
        if not self._writable:
            raise UnsupportedOperationError(f"{self.name}: not open for writing")
        if not self._session.supports_random_access:
            raise UnsupportedOperationError(
                f"{self._session.strategy}: gather write requires random access")
        extents = []
        position = self._pos
        for data in buffers:
            data = data if isinstance(data, (bytes, bytearray)) else bytes(data)
            extents.append((position, data))
            position += len(data)
        with self._span("write_gather", extents=len(extents)):
            written = self._session.write_extents(extents)
        total = sum(written)
        self._pos += total
        self.stats.writes += len(written)
        self.stats.bytes_written += total
        return total

    def write(self, data) -> int:
        self._ensure_open()
        if not self._writable:
            raise UnsupportedOperationError(f"{self.name}: not open for writing")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            data = bytes(data)
        with self._span("write", offset=self._pos, size=len(data)):
            if self._session.supports_random_access:
                written = self._session.write_at(self._pos, data)
            else:
                written = self._session.write_stream(data)
        self._pos += written
        self.stats.writes += 1
        self.stats.bytes_written += written
        return written

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        self._ensure_open()
        if not self._session.supports_random_access:
            raise UnsupportedOperationError(
                f"{self._session.strategy}: seek requires a control channel "
                "(use the process-control, thread, or inproc strategy)"
            )
        if whence == io.SEEK_SET:
            target = offset
        elif whence == io.SEEK_CUR:
            target = self._pos + offset
        elif whence == io.SEEK_END:
            target = self._session.size() + offset
        else:
            raise ValueError(f"bad whence: {whence}")
        if target < 0:
            raise ValueError(f"negative seek target: {target}")
        if self._trace is not None and TELEMETRY.tracing:
            with self._span("seek", target=target):
                pass
        self._pos = target
        self.stats.seeks += 1
        return self._pos

    def tell(self) -> int:
        return self._pos

    def truncate(self, size: int | None = None) -> int:
        self._ensure_open()
        target = self._pos if size is None else size
        with self._span("truncate", size=target):
            self._session.truncate(target)
        return target

    def flush(self) -> None:
        if self.closed or self._session_closed:
            return
        if self._session.supports_control:
            with self._span("flush"):
                self._session.flush()

    # -- beyond the passive-file surface ---------------------------------------------

    def getsize(self) -> int:
        """GetFileSize: ask the sentinel how big the file appears to be."""
        self._ensure_open()
        return self._session.size()

    def control(self, op: str, args: dict[str, Any] | None = None,
                payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        """Send a custom control operation to the sentinel.

        This is the programmability escape hatch: applications that *do*
        know they are holding an active file can steer the sentinel
        ("yielding control to the end application") without leaving the
        file abstraction.
        """
        self._ensure_open()
        self.stats.controls += 1
        with self._span("control", op=op):
            return self._session.control(op, args, payload)

    def publish(self, data: bytes, offset: int | None = None,
                meta: dict[str, Any] | None = None) -> int:
        """Write *data* at *offset* (default: the cursor) and fan it out
        to every peer open and subscriber of this container's coherence
        domain.  Returns the publish sequence number.

        The pub/sub face of the paper's "multiple synchronizing
        sentinels": one publish reaches every subscribed open without
        each paying its own origin round trip.
        """
        self._ensure_open()
        if not self._writable:
            raise UnsupportedOperationError(f"{self.name}: not open for writing")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            data = bytes(data)
        position = self._pos if offset is None else int(offset)
        with self._span("publish", offset=position, size=len(data)):
            written, seq = self._session.publish(position, bytes(data), meta)
        if offset is None:
            self._pos += written
        self.stats.writes += 1
        self.stats.bytes_written += written
        return seq

    def subscribe(self, max_pending: int | None = None) -> int:
        """Open a bounded update queue on the coherence domain."""
        self._ensure_open()
        with self._span("subscribe"):
            return self._session.subscribe(max_pending)

    def poll(self, sub: int, max_items: int = 64) -> list[dict[str, Any]]:
        """Drain pending update records for subscription *sub*.

        Raises :class:`~repro.errors.SubscriberEvictedError` (once) if
        the queue overflowed and the subscription was evicted.
        """
        self._ensure_open()
        with self._span("poll"):
            return self._session.poll(sub, max_items)

    def unsubscribe(self, sub: int) -> None:
        self._ensure_open()
        with self._span("unsubscribe"):
            self._session.unsubscribe(sub)

    def cache_stats(self) -> dict[str, Any]:
        """The sentinel's cache counters, via the ``cache-stats`` control op.

        Also folds the counters into :attr:`stats`, so one call gives
        tests and benchmarks hit ratios alongside the operation counts.
        Raises :class:`UnsupportedOperationError` for sentinels without
        a cache-stats control handler.
        """
        fields, _ = self.control("cache-stats")
        snapshot = dict(fields)
        for key, attr in (("hits", "cache_hits"), ("misses", "cache_misses"),
                          ("prefetch_issued", "prefetch_issued"),
                          ("prefetch_used", "prefetch_used"),
                          ("coalesced_flushes", "coalesced_flushes"),
                          ("dirty_high_water", "dirty_high_water")):
            if key in snapshot:
                setattr(self.stats, attr, int(snapshot[key]))
        # Fold in the host's live data-plane selection counters (the
        # ``plane.*`` family) when this open rides a pooled host —
        # where the op bytes travelled belongs next to how the cache
        # used them.
        plane = getattr(self._session, "plane_stats", None)
        if plane is not None:
            snapshot["plane"] = plane
        return snapshot

    def trace(self) -> dict[str, Any] | None:
        """This open's span tree (nested dicts), or ``None`` when the
        file was opened with tracing disabled."""
        if self._trace is None:
            return None
        return TELEMETRY.trace_tree(self._trace.id,
                                    extra=(self._trace.root,))

    def telemetry(self) -> dict[str, Any]:
        """Everything observable about this open, under one roof.

        ``{"file": FileStats dict, "transport": channel counters or
        None, "cache": sentinel cache-stats or None, "trace": span tree
        or None}`` — the unified surface over :attr:`stats`,
        :meth:`transport_stats`, :meth:`cache_stats` and :meth:`trace`.
        """
        cache = None
        if (not self.closed and not self._session_closed
                and self._session.supports_control):
            try:
                cache = self.cache_stats()
            except (ActiveFileError, ValueError):
                pass  # sentinel has no cache-stats handler
        return {
            "file": asdict(self.stats),
            "transport": self.transport_stats(),
            "cache": cache,
            "trace": self.trace(),
        }

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        try:
            if not self._session_closed:
                with self._span("close"):
                    self._session.close()
                self._session_closed = True
        finally:
            super().close()
            if self._trace is not None:
                TELEMETRY.finish(self._trace.root)

    def _ensure_open(self) -> None:
        if self.closed:
            raise ValueError("I/O operation on closed active file")

    def __del__(self) -> None:
        # io.IOBase's finalizer would call close() right here, inside the
        # garbage collector — where the session's transport work can
        # deadlock against a lock held by the interrupted thread.
        # Resurrect the leaked file into the reaper thread instead.
        if not self.closed:
            defer_close(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else f"pos={self._pos}"
        return (f"ActiveFile(name={self.name!r}, "
                f"strategy={self._session.strategy!r}, {state})")
