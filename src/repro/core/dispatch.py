"""Command dispatch loop shared by the channel-based strategies.

The paper's §4.2/§5.2 sentinel "typically blocks on a read on the
control channel.  Upon receiving a command from the application, the
thread wakes up and performs the operation".  This module is that
dispatch loop, factored out once: the process-plus-control runner drives
it from pipe frames (encoded), the thread strategy drives it from the
shared-memory channel (raw dicts — no serialization, which is exactly
why that strategy is cheaper), and tests drive it directly.
"""

from __future__ import annotations

from typing import Any

from repro.core import control
from repro.core.policy import Deadline
from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import ProtocolError

__all__ = ["SentinelDispatcher", "StreamDispatcher",
           "CONTROL_OP_ALIASES", "canonical_control_op"]

#: Historical spellings of control ops, folded to one canonical name
#: before any sentinel sees them.  Sentinels therefore match a single
#: spelling; both forms on the wire hit the same handler.
CONTROL_OP_ALIASES = {
    "cache_stats": "cache-stats",
}


def canonical_control_op(op: str) -> str:
    """The canonical spelling of a (possibly aliased) control op name."""
    return CONTROL_OP_ALIASES.get(op, op)


class SentinelDispatcher:
    """Executes decoded control commands against one sentinel instance."""

    #: Submission hint for the event-loop host: sentinel handlers may
    #: touch origin I/O or issue bridge calls, so they run on the
    #: loop's executor pool rather than inline on the scheduler tick.
    blocking = True

    def __init__(self, sentinel: Sentinel, ctx: SentinelContext) -> None:
        self.sentinel = sentinel
        self.ctx = ctx
        self.closed = False

    def open(self) -> None:
        self.sentinel.on_open(self.ctx)

    def execute(self, fields: dict[str, Any], payload: bytes,
                reply_into: memoryview | None = None
                ) -> tuple[dict[str, Any], bytes]:
        """Serve one command; returns (response fields, response payload).

        Sentinel exceptions become failure responses rather than killing
        the dispatch loop — one bad operation must not tear down the
        file.  The caller's remaining deadline budget (the ``dl``
        field, when the command travelled a wire) is published on the
        context so sentinels inherit it for their own remote exchanges.

        *reply_into* (the shared-memory fast path) offers a buffer the
        read commands fill directly; when used, the response fields
        carry ``sl`` (bytes filled) and the returned payload is empty.
        """
        cmd = fields.get("cmd", "")
        budget_ms = fields.get("dl")
        self.ctx.deadline = Deadline.from_ms(budget_ms) \
            if budget_ms is not None else None
        try:
            return self._execute(cmd, fields, payload, reply_into)
        except Exception as exc:
            return ({"ok": False, "error": str(exc),
                     "error_type": type(exc).__name__}, b"")

    def handle(self, fields: dict[str, Any], payload: bytes) -> bytes:
        """Like :meth:`execute` but returns an encoded response frame body."""
        out_fields, out_payload = self.execute(fields, payload)
        return control.encode_message(out_fields, out_payload)

    def _execute(self, cmd: str, fields: dict[str, Any], payload: bytes,
                 reply_into: memoryview | None = None
                 ) -> tuple[dict[str, Any], bytes]:
        if cmd == "read":
            size = int(fields["size"])
            if reply_into is not None and size <= len(reply_into):
                # Fill the offered (shared-memory) buffer directly: the
                # bytes never exist as an intermediate payload object.
                filled = self.sentinel.on_read_into(
                    self.ctx, int(fields["offset"]), size, reply_into)
                return {"ok": True, "sl": int(filled)}, b""
            data = self.sentinel.on_read(self.ctx,
                                         int(fields["offset"]),
                                         int(fields["size"]))
            return {"ok": True}, data
        if cmd == "write":
            written = self.sentinel.on_write(self.ctx,
                                             int(fields["offset"]), payload)
            return {"ok": True, "written": written}, b""
        if cmd == "readv":
            # Vectored read: one round trip serves many extents.  The
            # reply payload is the extents' data back-to-back; "sizes"
            # tells the caller where each (possibly short) one ends.
            if reply_into is not None:
                cursor = 0
                sizes = []
                for offset, size in fields["extents"]:
                    size = int(size)
                    if cursor + size > len(reply_into):
                        break  # cannot fit: fall back to inline below
                    filled = self.sentinel.on_read_into(
                        self.ctx, int(offset), size,
                        reply_into[cursor:cursor + size])
                    cursor += filled
                    sizes.append(filled)
                else:
                    return {"ok": True, "sizes": sizes,
                            "sl": cursor}, b""
            chunks = []
            sizes = []
            for offset, size in fields["extents"]:
                data = self.sentinel.on_read(self.ctx, int(offset), int(size))
                chunks.append(data)
                sizes.append(len(data))
            return {"ok": True, "sizes": sizes}, b"".join(chunks)
        if cmd == "writev":
            # Vectored write: the payload carries the extents' data
            # back-to-back, split according to the (offset, size) list.
            view = memoryview(payload)
            cursor = 0
            written = []
            for offset, size in fields["extents"]:
                size = int(size)
                chunk = view[cursor:cursor + size]
                cursor += size
                written.append(
                    self.sentinel.on_write(self.ctx, int(offset),
                                           bytes(chunk)))
            return {"ok": True, "written": written}, b""
        if cmd == "size":
            return {"ok": True, "size": self.sentinel.on_size(self.ctx)}, b""
        if cmd == "truncate":
            self.sentinel.on_truncate(self.ctx, int(fields["size"]))
            return {"ok": True}, b""
        if cmd == "flush":
            self.sentinel.on_flush(self.ctx)
            return {"ok": True}, b""
        if cmd == "control":
            out_fields, out_payload = self.sentinel.on_control(
                self.ctx, canonical_control_op(str(fields.get("op", ""))),
                fields.get("args") or {}, payload
            )
            return {"ok": True, **(out_fields or {})}, out_payload
        if cmd == "publish":
            # Fan-out plane: apply the payload as a write and multicast
            # it to every peer open and subscriber of this container's
            # coherence domain.
            out = self.sentinel.on_publish(
                self.ctx, int(fields.get("offset", 0)), payload,
                fields.get("meta") or {})
            return {"ok": True, **(out or {})}, b""
        if cmd == "subscribe":
            out = self.sentinel.on_subscribe(self.ctx,
                                             fields.get("args") or {})
            return {"ok": True, **(out or {})}, b""
        if cmd == "poll":
            out_fields, out_payload = self.sentinel.on_poll(
                self.ctx, fields.get("args") or {})
            return {"ok": True, **(out_fields or {})}, out_payload
        if cmd == "unsubscribe":
            out = self.sentinel.on_unsubscribe(self.ctx,
                                               fields.get("args") or {})
            return {"ok": True, **(out or {})}, b""
        if cmd == "close":
            self.close()
            return {"ok": True}, b""
        raise ProtocolError(f"unknown command {cmd!r}")

    def close(self) -> None:
        """Run close-side lifecycle exactly once."""
        if self.closed:
            return
        self.closed = True
        try:
            self.sentinel.on_close(self.ctx)
        finally:
            try:
                release = getattr(self.sentinel, "_fanout_release", None)
                if release is not None:
                    release(self.ctx)
            finally:
                self.ctx.data.close()


class StreamDispatcher:
    """The simple process strategy (§4.1) served as channel commands.

    Instead of two free-running pump threads pushing raw bytes through
    dedicated pipes, the sequential planes become a pull protocol over
    the multiplexed transport: ``rstream`` pulls the next chunk of the
    sentinel's generated stream, ``wstream`` feeds the sentinel's
    consumed stream.  Semantics are unchanged — reads are sequential,
    writes are sequential, no random access — but the transport is the
    same framed Channel every other strategy uses.
    """

    #: Stream pulls drive the sentinel's generator, which may block on
    #: origin I/O: run on the loop's executor pool.
    blocking = True

    def __init__(self, sentinel: Sentinel, ctx: SentinelContext) -> None:
        self.sentinel = sentinel
        self.ctx = ctx
        self.closed = False
        self._generator = None
        self._buffer = bytearray()
        self._generated_eof = False
        self._write_offset = 0

    def open(self) -> None:
        self.sentinel.on_open(self.ctx)
        self._generator = self.sentinel.generate(self.ctx)

    def execute(self, fields: dict[str, Any], payload: bytes,
                reply_into: memoryview | None = None
                ) -> tuple[dict[str, Any], bytes]:
        # ``reply_into`` is accepted for interface parity but unused:
        # the stream commands carry cursor state, so they never travel
        # the shared-memory fast path (see strategies/process.py).
        cmd = fields.get("cmd", "")
        try:
            return self._execute(cmd, fields, payload)
        except Exception as exc:
            return ({"ok": False, "error": str(exc),
                     "error_type": type(exc).__name__}, b"")

    def _execute(self, cmd: str, fields: dict[str, Any],
                 payload: bytes) -> tuple[dict[str, Any], bytes]:
        if cmd == "rstream":
            size = int(fields.get("size", 0))
            while len(self._buffer) < size and not self._generated_eof:
                try:
                    self._buffer += next(self._generator)
                except StopIteration:
                    self._generated_eof = True
            chunk = bytes(self._buffer[:size])
            del self._buffer[:size]
            eof = self._generated_eof and not self._buffer
            return {"ok": True, "eof": eof}, chunk
        if cmd == "wstream":
            self._write_offset += self.sentinel.consume(
                self.ctx, payload, self._write_offset)
            return {"ok": True, "written": len(payload)}, b""
        if cmd == "close":
            self.close()
            return {"ok": True}, b""
        raise ProtocolError(f"unknown stream command {cmd!r}")

    def close(self) -> None:
        """Run close-side lifecycle exactly once."""
        if self.closed:
            return
        self.closed = True
        try:
            if self._generator is not None:
                self._generator.close()
        finally:
            try:
                self.sentinel.on_close(self.ctx)
            finally:
                try:
                    release = getattr(self.sentinel, "_fanout_release", None)
                    if release is not None:
                        release(self.ctx)
                finally:
                    self.ctx.data.close()
