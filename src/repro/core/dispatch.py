"""Command dispatch loop shared by the channel-based strategies.

The paper's §4.2/§5.2 sentinel "typically blocks on a read on the
control channel.  Upon receiving a command from the application, the
thread wakes up and performs the operation".  This module is that
dispatch loop, factored out once: the process-plus-control runner drives
it from pipe frames (encoded), the thread strategy drives it from the
shared-memory channel (raw dicts — no serialization, which is exactly
why that strategy is cheaper), and tests drive it directly.
"""

from __future__ import annotations

from typing import Any

from repro.core import control
from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import ProtocolError

__all__ = ["SentinelDispatcher"]


class SentinelDispatcher:
    """Executes decoded control commands against one sentinel instance."""

    def __init__(self, sentinel: Sentinel, ctx: SentinelContext) -> None:
        self.sentinel = sentinel
        self.ctx = ctx
        self.closed = False

    def open(self) -> None:
        self.sentinel.on_open(self.ctx)

    def execute(self, fields: dict[str, Any],
                payload: bytes) -> tuple[dict[str, Any], bytes]:
        """Serve one command; returns (response fields, response payload).

        Sentinel exceptions become failure responses rather than killing
        the dispatch loop — one bad operation must not tear down the
        file.
        """
        cmd = fields.get("cmd", "")
        try:
            return self._execute(cmd, fields, payload)
        except Exception as exc:
            return ({"ok": False, "error": str(exc),
                     "error_type": type(exc).__name__}, b"")

    def handle(self, fields: dict[str, Any], payload: bytes) -> bytes:
        """Like :meth:`execute` but returns an encoded response frame body."""
        out_fields, out_payload = self.execute(fields, payload)
        return control.encode_message(out_fields, out_payload)

    def _execute(self, cmd: str, fields: dict[str, Any],
                 payload: bytes) -> tuple[dict[str, Any], bytes]:
        if cmd == "read":
            data = self.sentinel.on_read(self.ctx,
                                         int(fields["offset"]),
                                         int(fields["size"]))
            return {"ok": True}, data
        if cmd == "write":
            written = self.sentinel.on_write(self.ctx,
                                             int(fields["offset"]), payload)
            return {"ok": True, "written": written}, b""
        if cmd == "size":
            return {"ok": True, "size": self.sentinel.on_size(self.ctx)}, b""
        if cmd == "truncate":
            self.sentinel.on_truncate(self.ctx, int(fields["size"]))
            return {"ok": True}, b""
        if cmd == "flush":
            self.sentinel.on_flush(self.ctx)
            return {"ok": True}, b""
        if cmd == "control":
            out_fields, out_payload = self.sentinel.on_control(
                self.ctx, fields.get("op", ""), fields.get("args") or {}, payload
            )
            return {"ok": True, **(out_fields or {})}, out_payload
        if cmd == "close":
            self.close()
            return {"ok": True}, b""
        raise ProtocolError(f"unknown command {cmd!r}")

    def close(self) -> None:
        """Run close-side lifecycle exactly once."""
        if self.closed:
            return
        self.closed = True
        try:
            self.sentinel.on_close(self.ctx)
        finally:
            self.ctx.data.close()
