"""Online cost-model data-plane selection (adaptive shm/inline cutover).

PR 5's shared-memory plane used one fixed rule — payloads at or above
``SHM_MIN_BYTES`` ride the slab — but ``BENCH_shm.json`` shows the real
crossover is workload- and machine-dependent: small synchronous ops are
*slower* through shm (lease + copy + descriptor beats a pipe write only
once the payload spans several pipe capacity units), and the break-even
moves with CRC mode, pipe buffering, and host load.

:class:`PlaneCostModel` replaces the constant with measurement.  One
model lives on each :class:`~repro.core.runner.SentinelHost` and learns,
per **op family** (read-like / write-like) and per **log2 size bucket**,
an EWMA of the measured wall-clock cost of each data plane:

* ``inline``  — payload on the pipe, JSON headers;
* ``binhdr``  — payload on the pipe, struct-packed hot-op headers
  (the inline variant actually in effect when binary headers are on);
* ``shm``     — payload through the host's shared-memory slab.

Selection picks the cheaper plane once both sides of a bucket are warm
(:data:`MIN_SAMPLES` observations each); until then the static
threshold — :data:`repro.core.shm.SHM_MIN_BYTES`, operator-tunable via
``REPRO_SHM_MIN`` — decides.  A deterministic exploration tick (every
:data:`EXPLORE_EVERY`-th decision per family/bucket, phase-offset by the
model's seed) routes one op to the *non*-preferred plane, so both cost
estimates keep fresh samples and the model can notice the crossover
moving.  ``REPRO_NO_ADAPTIVE=1`` pins selection to the static threshold.

Observability: the model is a telemetry collector (family ``plane`` in
:meth:`Telemetry.snapshot`, rendered by ``afctl stats``), publishes the
global ``plane.selected.{inline,binhdr,shm}`` counters and the live
``plane.crossover_bytes`` gauge, and its :meth:`stats` dict is folded
into ``ActiveFile.cache_stats()``.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from repro.core import control
from repro.core import shm as shmplane
from repro.core.telemetry import TELEMETRY

__all__ = ["PlaneCostModel", "inline_plane", "adaptive_enabled",
           "PLANES", "FAMILIES", "MIN_SAMPLES", "EXPLORE_EVERY"]

#: Environment kill-switch: set ``REPRO_NO_ADAPTIVE=1`` to pin plane
#: selection to the static ``SHM_MIN_BYTES`` threshold (read per
#: decision, so tests can flip it with ``monkeypatch``).
ENV_KILL_SWITCH = "REPRO_NO_ADAPTIVE"

#: The data planes whose cost is tracked.
PLANES = ("inline", "binhdr", "shm")

#: Op families: reads and writes cross the transport asymmetrically
#: (a read's bulk rides the reply, a write's the request), so their
#: crossover points differ and are modelled independently.
FAMILIES = ("read", "write")

_FAMILY_OF = {"read": "read", "readv": "read",
              "write": "write", "writev": "write"}

#: Observations of *each* competing plane a bucket needs before the
#: model trusts its EWMAs over the static threshold.
MIN_SAMPLES = 3

#: One decision in this many (per family/bucket) goes to the
#: non-preferred plane, keeping the losing plane's cost estimate fresh.
EXPLORE_EVERY = 16

#: EWMA smoothing factor: ~the last dozen ops dominate the estimate.
ALPHA = 0.25

#: Log2 size buckets: index 0 holds payloads up to 512 B, each next
#: bucket doubles, the last is an overflow (>= 2 MiB).
N_BUCKETS = 14

# Global selection counters, module-cached so the per-op path never
# takes the metrics-registry lock.
_SELECTED = {plane: TELEMETRY.metrics.counter(f"plane.selected.{plane}")
             for plane in PLANES}
_EXPLORED = TELEMETRY.metrics.counter("plane.explore")
_CROSSOVER = TELEMETRY.metrics.gauge("plane.crossover_bytes")


def adaptive_enabled() -> bool:
    """Whether cost-model selection is allowed at all."""
    return not os.environ.get(ENV_KILL_SWITCH)


def inline_plane() -> str:
    """The inline variant currently in effect (``binhdr`` or ``inline``)."""
    if control.BINARY_HEADERS and not os.environ.get("REPRO_NO_BINHDR"):
        return "binhdr"
    return "inline"


def _bucket(nbytes: int) -> int:
    """Log2 bucket index of a payload size (0 covers 0..512 B)."""
    if nbytes <= 512:
        return 0
    return min(N_BUCKETS - 1, (int(nbytes) - 1).bit_length() - 9)


def _bucket_floor(index: int) -> int:
    """Smallest payload size landing in bucket *index*."""
    if index <= 0:
        return 0
    return (1 << (8 + index)) + 1


class PlaneCostModel:
    """Per-host EWMA cost model choosing shm vs inline per operation.

    Thread-safe; every method is O(1).  The *seed* only offsets the
    deterministic exploration phase, so two models with different seeds
    explore on different ticks while each remains reproducible.
    """

    def __init__(self, *, static_min: int | None = None,
                 alpha: float = ALPHA, explore_every: int = EXPLORE_EVERY,
                 min_samples: int = MIN_SAMPLES, seed: int = 0) -> None:
        self.static_min = int(static_min) if static_min is not None \
            else shmplane.SHM_MIN_BYTES
        self.alpha = float(alpha)
        self.explore_every = max(2, int(explore_every))
        self.min_samples = max(1, int(min_samples))
        self.seed = int(seed)
        self._lock = threading.Lock()
        #: (family, plane, bucket) -> EWMA of measured latency (seconds).
        self._cost: dict[tuple[str, str, int], float] = {}
        #: (family, plane, bucket) -> observation count.
        self._samples: dict[tuple[str, str, int], int] = {}
        #: (family, bucket) -> decision count (drives exploration).
        self._decisions: dict[tuple[str, int], int] = {}
        self._selected = dict.fromkeys(PLANES, 0)
        self._explored = 0

    # -- selection -----------------------------------------------------------

    def use_shm(self, cmd: str, nbytes: int) -> bool:
        """Should *cmd* moving *nbytes* ride the shared-memory plane?

        Falls back to the static ``SHM_MIN_BYTES`` threshold while the
        op's bucket is cold or when ``REPRO_NO_ADAPTIVE`` is set.
        """
        if nbytes <= 0:
            return False
        if not adaptive_enabled():
            return nbytes >= self.static_min
        family = _FAMILY_OF.get(cmd, "read")
        bucket = _bucket(nbytes)
        inline = inline_plane()
        with self._lock:
            key = (family, bucket)
            count = self._decisions.get(key, 0) + 1
            self._decisions[key] = count
            shm_cost = self._cost.get((family, "shm", bucket))
            inline_cost = self._cost.get((family, inline, bucket))
            warm = (self._samples.get((family, "shm", bucket), 0)
                    >= self.min_samples
                    and self._samples.get((family, inline, bucket), 0)
                    >= self.min_samples)
            if warm:
                prefer = shm_cost < inline_cost
            else:
                prefer = nbytes >= self.static_min
            if (count + self.seed) % self.explore_every == 0:
                # Deterministic exploration: the losing plane gets one
                # fresh sample so its estimate cannot fossilize.
                self._explored += 1
                _EXPLORED.inc()
                return not prefer
            return prefer

    def record(self, cmd: str, nbytes: int, plane: str,
               elapsed: float) -> None:
        """Feed one successful op's measured round-trip cost."""
        if plane not in _SELECTED or nbytes < 0 or elapsed < 0:
            return
        family = _FAMILY_OF.get(cmd, "read")
        key = (family, plane, _bucket(nbytes))
        with self._lock:
            previous = self._cost.get(key)
            self._cost[key] = elapsed if previous is None \
                else previous + self.alpha * (elapsed - previous)
            self._samples[key] = self._samples.get(key, 0) + 1
            self._selected[plane] += 1
        _SELECTED[plane].inc()

    # -- introspection -------------------------------------------------------

    def crossover(self, family: str) -> int:
        """Smallest payload size at which *family* prefers shm.

        The floor of the first warm bucket where the shm EWMA beats the
        inline EWMA; the static threshold while the model is cold (or
        when shm never wins).
        """
        inline = inline_plane()
        with self._lock:
            for bucket in range(N_BUCKETS):
                shm_key = (family, "shm", bucket)
                inline_key = (family, inline, bucket)
                if (self._samples.get(shm_key, 0) >= self.min_samples
                        and self._samples.get(inline_key, 0)
                        >= self.min_samples
                        and self._cost[shm_key] < self._cost[inline_key]):
                    return max(1, _bucket_floor(bucket))
        return self.static_min

    def stats(self) -> dict[str, Any]:
        """The ``plane.*`` counter family (also the telemetry collector)."""
        crossovers = {family: self.crossover(family) for family in FAMILIES}
        effective = min(crossovers.values())
        _CROSSOVER.set(effective)
        with self._lock:
            out: dict[str, Any] = {
                f"plane.selected.{plane}": self._selected[plane]
                for plane in PLANES
            }
            out["plane.explore"] = self._explored
            out["plane.samples"] = sum(self._samples.values())
        out["plane.adaptive"] = int(adaptive_enabled())
        out["plane.static_min_bytes"] = self.static_min
        out["plane.crossover_bytes"] = effective
        for family, value in crossovers.items():
            out[f"plane.crossover.{family}"] = value
        return out
