"""The shared-memory bulk-data plane (paper §4.3 / Appendix A).

The paper's fastest cross-domain strategy moves bulk data through
"shared memory buffers" and signals completion with events, so payload
bytes never cross a pipe.  This module brings that split to the pooled
sentinel host: the framed channel stays the *control* plane (small
headers, ordering, deadlines), while read/write bodies above a threshold
travel through a per-host shared-memory **slab segment**.

One :class:`ShmPlane` lives on the application side of each
:class:`~repro.core.runner.SentinelHost`.  Its segment is a fixed array
of fixed-size slots preceded by a per-slot *generation* word:

====================  =====================================================
region                contents
====================  =====================================================
header                ``slots`` little-endian u64 generation counters
data                  ``slots`` × ``slot_bytes`` payload slots
====================  =====================================================

A payload leases a contiguous *run* of slots; the frame then carries a
compact descriptor ``[slot, length, generation, crc32]`` instead of the
bytes.  The child validates the generation word (the descriptor must
describe the *current* lease of that slot) and the CRC (the bytes must
be exactly what the producer staged) before acting; any mismatch raises
a typed :class:`~repro.errors.ShmError` and the sender retries the
attempt inline — shm failures degrade throughput, never correctness.

Crash safety:

* The segment is created at host spawn and destroyed at host death, so
  a respawned host starts with a fresh (empty) slab and the write
  journal replays **inline** — a replayed mutation can never reference
  a slot from a previous incarnation.
* A timed-out request's slots are *parked*, not freed: the peer may
  still be serving the withdrawn request.  Because each logical channel
  is served FIFO by one worker, the straggler is provably finished once
  any later request on the same channel settles — at which point the
  parked slots return to the free pool (:meth:`ShmPlane.settle`).
* Generation words bump at lease and at release, so a descriptor held
  across either boundary is detectably stale.
"""

from __future__ import annotations

import os
import secrets
import struct
import threading
import zlib
from typing import Any

from repro.core.telemetry import TELEMETRY
from repro.errors import ShmCorruptError, ShmError, ShmStaleGenerationError

__all__ = [
    "ShmPlane",
    "SlotLease",
    "AttachedSegment",
    "shm_enabled",
    "SHM_MIN_BYTES",
    "SLOT_BYTES",
    "SEGMENT_SLOTS",
]

#: Default static shm cutover when ``REPRO_SHM_MIN`` is unset.
DEFAULT_SHM_MIN_BYTES = 32 * 1024

#: Operator override of the static shm cutover (positive integer bytes).
ENV_SHM_MIN = "REPRO_SHM_MIN"


def _env_min_bytes() -> int:
    """The static shm cutover, honouring ``REPRO_SHM_MIN``.

    Invalid values (non-integer, zero, negative) fall back to the
    default rather than failing import: a bad tuning knob must not make
    every host unspawnable.
    """
    raw = os.environ.get(ENV_SHM_MIN)
    if not raw:
        return DEFAULT_SHM_MIN_BYTES
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_SHM_MIN_BYTES
    return value if value > 0 else DEFAULT_SHM_MIN_BYTES


#: Payloads below this ride inline on the frame: the fixed cost of a
#: lease + descriptor + checksum only pays for itself once the payload
#: would otherwise cross the pipe in several 64 KiB capacity units.
#: This static threshold is the cold-start/fallback rule — the adaptive
#: cost model (:mod:`repro.core.planesel`) overrides it once warm — and
#: is operator-tunable via ``REPRO_SHM_MIN`` (validated positive int,
#: read at import).
SHM_MIN_BYTES = _env_min_bytes()

#: Slot granularity.  One slot holds the common large block; bigger
#: payloads lease a contiguous run of slots.
SLOT_BYTES = 64 * 1024

#: Slots per segment (256 × 64 KiB = 16 MiB of data — matches the frame
#: codec's MAX_FRAME, so anything frameable is also slabbable).
SEGMENT_SLOTS = 256

_GEN = struct.Struct("<Q")

#: Environment kill-switch: set ``REPRO_NO_SHM=1`` to force every
#: payload inline (read per host spawn, so tests can flip it).
ENV_KILL_SWITCH = "REPRO_NO_SHM"

#: Set ``REPRO_SHM_CRC=1`` to checksum every staged payload.  The
#: protocol's correctness envelope is the generation fencing (a slot is
#: only ever read while its producer holds the lease); the checksum is
#: belt-and-braces against a buggy peer — and the detection channel for
#: the ``shm-corrupt`` fault action — so it is opt-in: at slab speeds
#: CRC-ing every byte twice would halve the plane's throughput.
ENV_CHECKSUM = "REPRO_SHM_CRC"

#: Descriptor checksums are self-describing: bit 32 marks "present", the
#: low 32 bits carry the CRC.  A bare 0 means the producer skipped it.
_SUM_PRESENT = 1 << 32

# Counters are module-cached so the hot path never takes the registry
# lock (the registry hands back the same object for the same name).
SLOTS_LEASED = TELEMETRY.metrics.counter("shm.slots_leased")
SHM_BYTES = TELEMETRY.metrics.counter("shm.bytes")
FALLBACK_INLINE = TELEMETRY.metrics.counter("shm.fallback_inline")


def shm_enabled() -> bool:
    """Whether the shared-memory plane may be used at all."""
    return not os.environ.get(ENV_KILL_SWITCH)


def _crc(view: "memoryview | bytes") -> int:
    return zlib.crc32(view) & 0xFFFFFFFF


#: Segment names created by THIS process.  An attach to one of them is
#: an in-process attach (tests, LocalChannel rigs): the resource
#: tracker's registration belongs to the creator and must be left
#: alone, or the eventual unlink would unregister a second time.
_LOCAL_NAMES: set = set()


class SlotLease:
    """One leased contiguous run of slots on the application side."""

    __slots__ = ("plane", "slot", "nslots", "generation", "length")

    def __init__(self, plane: "ShmPlane", slot: int, nslots: int,
                 generation: int) -> None:
        self.plane = plane
        self.slot = slot
        self.nslots = nslots
        self.generation = generation
        self.length = 0

    def _view(self, length: int) -> memoryview:
        return self.plane._slot_view(self.slot, length)

    def stage(self, parts) -> list[int]:
        """Copy payload *parts* into the run; returns the descriptor."""
        length = sum(len(p) for p in parts)
        view = self._view(length)
        cursor = 0
        for part in parts:
            n = len(part)
            view[cursor:cursor + n] = part
            cursor += n
        self.length = length
        SHM_BYTES.inc(length)
        checksum = (_crc(view) | _SUM_PRESENT) if self.plane.checksums else 0
        return [self.slot, length, self.generation, checksum]

    def reply_desc(self) -> list[int]:
        """Descriptor offering this run to the peer as a reply slot."""
        return [self.slot, self.nslots * self.plane.slot_bytes,
                self.generation]

    def take(self, length: int, checksum: int) -> bytes:
        """Copy a peer-filled reply out of the run, validating it."""
        view = self._view(length)
        self._validate(view, checksum)
        SHM_BYTES.inc(length)
        return bytes(view)

    def take_into(self, buffer: memoryview, length: int,
                  checksum: int) -> int:
        """Zero-intermediate copy of a peer-filled reply into *buffer*."""
        view = self._view(length)
        self._validate(view, checksum)
        buffer[:length] = view
        SHM_BYTES.inc(length)
        return length

    def _validate(self, view: memoryview, checksum: int) -> None:
        if self.plane._generation(self.slot) != self.generation:
            raise ShmStaleGenerationError(
                f"slot {self.slot} was re-leased under us")
        if checksum & _SUM_PRESENT and _crc(view) != checksum & 0xFFFFFFFF:
            raise ShmCorruptError(
                f"slot {self.slot} failed its checksum")

    # -- deterministic fault hooks (see repro.core.faults) -------------------

    def scribble(self) -> None:
        """Corrupt one staged byte (the ``shm-corrupt`` fault action)."""
        view = self._view(max(1, self.length))
        view[0] ^= 0xFF

    def invalidate(self) -> None:
        """Bump the generation word (``shm-stale-generation`` action)."""
        self.plane._bump(self.slot)
        # Track the bump so release() leaves a consistent word behind.
        self.generation = self.plane._generation(self.slot)


class ShmPlane:
    """Application-side owner of one host's shared-memory segment."""

    def __init__(self, slots: int = SEGMENT_SLOTS,
                 slot_bytes: int = SLOT_BYTES,
                 checksums: "bool | None" = None) -> None:
        from multiprocessing import shared_memory
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        #: Whether staged payloads carry a CRC (see :data:`ENV_CHECKSUM`).
        self.checksums = bool(os.environ.get(ENV_CHECKSUM)) \
            if checksums is None else bool(checksums)
        self._header_bytes = self.slots * _GEN.size
        size = self._header_bytes + self.slots * self.slot_bytes
        self._shm = shared_memory.SharedMemory(
            name=f"repro-af-{os.getpid()}-{secrets.token_hex(4)}",
            create=True, size=size)
        _LOCAL_NAMES.add(self._shm.name)
        self._buf = self._shm.buf
        self._lock = threading.Lock()
        self._free = bytearray(self.slots)  # 0 = free, 1 = leased/parked
        #: chan -> leases whose rid was withdrawn before a reply; freed
        #: once a later rid on the same chan settles (FIFO guarantee).
        self._parked: dict[int, list[SlotLease]] = {}
        self.destroyed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def handshake_fields(self) -> dict[str, Any]:
        """What the ``open`` request carries so the child can attach."""
        return {"name": self.name, "slots": self.slots,
                "slot_bytes": self.slot_bytes, "crc": self.checksums}

    # -- slot accounting ------------------------------------------------------

    def _slot_view(self, slot: int, length: int) -> memoryview:
        buf = self._buf
        if buf is None:
            raise ShmError("shm plane destroyed (host gone)")
        start = self._header_bytes + slot * self.slot_bytes
        return buf[start:start + length]

    def _generation(self, slot: int) -> int:
        buf = self._buf
        if buf is None:
            raise ShmError("shm plane destroyed (host gone)")
        return _GEN.unpack_from(buf, slot * _GEN.size)[0]

    def _bump(self, slot: int) -> int:
        value = self._generation(slot) + 1
        _GEN.pack_into(self._buf, slot * _GEN.size, value)
        return value

    def lease(self, nbytes: int) -> SlotLease | None:
        """Lease a contiguous run holding *nbytes*; ``None`` when full."""
        if self.destroyed or nbytes <= 0:
            return None
        nslots = -(-nbytes // self.slot_bytes)
        if nslots > self.slots:
            return None
        with self._lock:
            if self.destroyed:
                return None
            free = self._free
            run = 0
            for slot in range(self.slots):
                run = run + 1 if not free[slot] else 0
                if run == nslots:
                    start = slot - nslots + 1
                    for taken in range(start, slot + 1):
                        free[taken] = 1
                    generation = self._bump(start)
                    SLOTS_LEASED.inc(nslots)
                    return SlotLease(self, start, nslots, generation)
        return None

    def release(self, lease: SlotLease | None) -> None:
        """Return a run to the free pool; its descriptors go stale."""
        if lease is None:
            return
        with self._lock:
            if self.destroyed:
                return
            self._bump(lease.slot)
            for slot in range(lease.slot, lease.slot + lease.nslots):
                self._free[slot] = 0

    def park(self, chan: int, *leases: SlotLease | None) -> None:
        """Quarantine runs whose request was withdrawn without a reply.

        The peer's channel worker may still be serving the withdrawn
        request against these slots; re-leasing them now could hand a
        straggler someone else's bytes.  They stay out of the free pool
        until :meth:`settle` proves the worker has moved past them.
        """
        with self._lock:
            if self.destroyed:
                return
            bucket = self._parked.setdefault(int(chan), [])
            for lease in leases:
                if lease is not None:
                    bucket.append(lease)

    def settle(self, chan: int) -> None:
        """A later request on *chan* settled: its stragglers are done."""
        if not self._parked:
            return
        with self._lock:
            parked = self._parked.pop(int(chan), None)
        if parked:
            for lease in parked:
                self.release(lease)

    def free_slots(self) -> int:
        with self._lock:
            return self._free.count(0)

    def destroy(self) -> None:
        """Unlink the segment (idempotent); every lease goes invalid."""
        with self._lock:
            if self.destroyed:
                return
            self.destroyed = True
            self._parked.clear()
        self._buf = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - exported views
            pass
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class AttachedSegment:
    """Child-side attachment to the host plane's segment."""

    def __init__(self, shm, slots: int, slot_bytes: int,
                 checksums: bool = False) -> None:
        self._shm = shm
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self.checksums = bool(checksums)
        self._header_bytes = self.slots * _GEN.size
        self._buf = shm.buf

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int,
               checksums: bool = False) -> "AttachedSegment":
        from multiprocessing import shared_memory
        from multiprocessing import resource_tracker
        shm = shared_memory.SharedMemory(name=name)
        # The application side created (and will unlink) the segment;
        # without this the child's resource tracker would unlink it too
        # on exit and warn about a leak it does not own.  In-process
        # attaches (test rigs) skip it: the tracker entry is the
        # creator's.
        if name not in _LOCAL_NAMES:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        return cls(shm, slots, slot_bytes, checksums)

    @property
    def name(self) -> str:
        return self._shm.name

    def _slot_view(self, slot: int, length: int) -> memoryview:
        if not 0 <= slot < self.slots:
            raise ShmError(f"descriptor names slot {slot} of {self.slots}")
        start = self._header_bytes + slot * self.slot_bytes
        if length < 0 or start + length > len(self._buf):
            raise ShmError(f"descriptor overruns the segment by "
                           f"{start + length - len(self._buf)} bytes")
        return self._buf[start:start + length]

    def _check_generation(self, slot: int, generation: int) -> None:
        current = _GEN.unpack_from(self._buf, slot * _GEN.size)[0]
        if current != int(generation):
            raise ShmStaleGenerationError(
                f"slot {slot} descriptor is stale "
                f"(generation {generation} != current {current})")

    def payload_view(self, desc) -> memoryview:
        """Validate an inbound payload descriptor and open its run.

        The returned view aliases the segment: the consumer copies (or
        writes) from it, then calls :meth:`recheck` — a generation bump
        in between means the producer re-leased the run mid-read (torn
        bytes), which under the lease protocol can only follow a
        protocol violation, so it surfaces as a typed error and the
        sender retries inline.
        """
        try:
            slot, length, generation, checksum = (int(x) for x in desc)
        except (TypeError, ValueError) as exc:
            raise ShmError(f"malformed shm descriptor: {desc!r}") from exc
        view = self._slot_view(slot, length)
        self._check_generation(slot, generation)
        if checksum & _SUM_PRESENT \
                and _crc(view) != checksum & 0xFFFFFFFF:
            raise ShmCorruptError(f"slot {slot} failed its checksum")
        return view

    def recheck(self, desc) -> None:
        """Post-consumption staleness check (see :meth:`payload_view`)."""
        self._check_generation(int(desc[0]), int(desc[2]))

    def read_desc(self, desc) -> bytes:
        """Materialize an inbound payload as private bytes."""
        view = self.payload_view(desc)
        try:
            data = bytes(view)
        finally:
            view.release()
        self.recheck(desc)
        return data

    def fill_view(self, desc) -> "tuple[int, memoryview]":
        """Open a reply slot for direct filling; returns (slot, view)."""
        try:
            slot, capacity, generation = (int(x) for x in desc)
        except (TypeError, ValueError) as exc:
            raise ShmError(f"malformed shm reply descriptor: {desc!r}") from exc
        view = self._slot_view(slot, capacity)
        self._check_generation(slot, generation)
        return slot, view

    def seal(self, desc, filled: memoryview) -> list[int]:
        """Descriptor for a reply just written into a leased run."""
        slot, _, generation = (int(x) for x in desc)
        checksum = (_crc(filled) | _SUM_PRESENT) if self.checksums else 0
        return [slot, len(filled), generation, checksum]

    def close(self) -> None:
        self._buf = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover
            pass
