"""The telemetry plane: cross-process request tracing + unified metrics.

The paper's §6 evaluation hand-walks the critical path of one ``read()``
("a thread in the sentinel process [must] receive the read request, copy
the buffer, send a message, and context switch...").  This module makes
that walk mechanical for the grown-up runtime:

* **Tracing** — a per-open trace context whose trace/span ids ride the
  framed channel envelope as the ``tc`` field, exactly like the ``dl``
  deadline budget: popped by the peer's worker, re-parented there, and
  the spans the peer produced while serving the request ride the reply
  back as the ``tsp`` field.  One span tree therefore covers app call →
  channel frame → dispatch → sentinel op → (for remote files) network
  bridge → origin service, with retry attempts, respawns, journal
  replays, prefetch fills and write-behind flushes as cause-labelled
  children.  Tracing is off by default and costs one branch per frame
  when disabled.

* **Metrics** — a registry of named counters, gauges and fixed
  log-scale-bucket latency histograms with per-container and global
  scopes.  The pre-existing counter families (``ChannelCounters``,
  ``FileStats``, ``NetworkStats``, cache stats, fault summaries) stay
  where they are — their owners register weakly-referenced *collectors*
  here, and :meth:`Telemetry.snapshot` re-homes them under one stable
  dict (see its docstring for the schema).

* **Export** — a bounded in-memory span buffer with JSONL export plus
  the timeline/snapshot renderers behind ``afctl stats`` / ``afctl
  trace`` (same aligned-column style as :mod:`repro.ntos.trace`).

Clocks are injectable (:class:`Telemetry` takes ``clock``), so tests
never depend on wall time.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import threading
import time
import weakref
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "TraceHandle",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "TELEMETRY",
    "NULL_SPAN",
    "enable_tracing",
    "disable_tracing",
    "snapshot",
    "render_timeline",
    "render_snapshot",
    "SPAN_BUFFER_LIMIT",
    "HISTOGRAM_BOUNDS",
    "BUNDLE_SCHEMA",
]

#: Default bound on the in-memory span buffer (oldest spans drop first).
SPAN_BUFFER_LIMIT = 4096

#: Version of the evidence-bundle layout written by
#: :meth:`Telemetry.export_bundle` and consumed by ``afctl doctor``.
BUNDLE_SCHEMA = 1

#: Fixed log-scale histogram bucket upper bounds, in seconds: powers of
#: two from 1 µs to ~134 s, plus an implicit overflow bucket.  Fixed
#: bounds keep snapshots comparable across runs and machines.
HISTOGRAM_BOUNDS: tuple[float, ...] = tuple(1e-6 * (1 << i) for i in range(28))

_ids = itertools.count(1)


def _new_id() -> str:
    """A process-unique id; pid-prefixed so two processes never collide."""
    return f"{os.getpid():x}-{next(_ids):x}"


# ---------------------------------------------------------------------------
# spans


class Span:
    """One timed, named node of a trace tree."""

    __slots__ = ("trace", "sid", "parent", "name", "start_us", "end_us",
                 "status", "attrs", "pid", "sink")

    def __init__(self, trace: str, sid: str, parent: str | None, name: str,
                 start_us: float, attrs: dict[str, Any] | None = None,
                 pid: int | None = None, sink: "_Collector | None" = None
                 ) -> None:
        self.trace = trace
        self.sid = sid
        self.parent = parent
        self.name = name
        self.start_us = start_us
        self.end_us: float | None = None
        self.status: str | None = None
        self.attrs = attrs
        self.pid = pid if pid is not None else os.getpid()
        self.sink = sink

    @property
    def duration_us(self) -> float | None:
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after creation (cause labels etc.)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        """The JSONL export form: absolute local-clock microseconds."""
        return {
            "trace": self.trace,
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "start_us": round(self.start_us, 1),
            "end_us": None if self.end_us is None else round(self.end_us, 1),
            "status": self.status,
            "attrs": self.attrs or {},
            "pid": self.pid,
        }

    def to_wire(self, anchor_us: float) -> dict[str, Any]:
        """The piggyback form: times relative to the shipment's anchor.

        Peer processes run unrelated monotonic clocks; shipping offsets
        lets the receiving side re-anchor the shipment inside the frame
        span that carried it.
        """
        wire: dict[str, Any] = {
            "trace": self.trace,
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "t": round(self.start_us - anchor_us, 1),
            "pid": self.pid,
        }
        if self.end_us is not None:
            wire["e"] = round(self.end_us - anchor_us, 1)
        if self.status not in (None, "ok"):
            wire["status"] = self.status
        if self.attrs:
            wire["attrs"] = self.attrs
        return wire


class _NullSpan:
    """Reusable no-op context manager for disabled-tracing fast paths."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


#: Shared no-op span: callers return this instead of allocating a
#: context manager when tracing is off.
NULL_SPAN = _NullSpan()


class TraceHandle:
    """A live trace: its id plus the (still open) root span."""

    __slots__ = ("id", "root")

    def __init__(self, trace_id: str, root: Span) -> None:
        self.id = trace_id
        self.root = root


class _Collector:
    """A per-request sink capturing spans finished while serving it."""

    __slots__ = ("spans", "closed", "prev")

    def __init__(self, prev: "_Collector | None") -> None:
        self.spans: list[Span] = []
        self.closed = False
        self.prev = prev


# ---------------------------------------------------------------------------
# metrics


class Counter:
    """A monotonically increasing named tally."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snap(self) -> int:
        return self._value


class Gauge:
    """A named point-in-time value (last write wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def snap(self) -> float:
        return self._value


class Histogram:
    """A latency histogram over the fixed log-scale bucket bounds.

    ``observe`` is allocation-light (index arithmetic plus in-place
    increments), safe to call per frame.
    """

    __slots__ = ("name", "_lock", "_counts", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counts = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = bisect_left(HISTOGRAM_BOUNDS, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(HISTOGRAM_BOUNDS) + 1)
            self.count = 0
            self.total = 0.0

    def percentile(self, q: float) -> float:
        """Approximate the *q*-quantile (``0 < q <= 1``) in seconds.

        Resolution is one log-scale bucket: the returned value is the
        upper bound of the bucket holding the q-th observation (the
        last finite bound for overflow observations), 0.0 when empty.
        """
        with self._lock:
            count = self.count
            counts = list(self._counts)
        if count <= 0:
            return 0.0
        rank = max(1, math.ceil(min(max(q, 0.0), 1.0) * count))
        seen = 0
        for index, tally in enumerate(counts):
            seen += tally
            if seen >= rank:
                return HISTOGRAM_BOUNDS[min(index,
                                            len(HISTOGRAM_BOUNDS) - 1)]
        return HISTOGRAM_BOUNDS[-1]

    def snap(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            count = self.count
            total = self.total
        buckets = {}
        for bound, tally in zip(HISTOGRAM_BOUNDS, counts):
            if tally:
                buckets[f"le_{bound:.6g}"] = tally
        if counts[-1]:
            buckets["le_inf"] = counts[-1]
        return {"count": count, "sum": total, "buckets": buckets}


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
_GLOBAL_SCOPE = ""


class MetricsRegistry:
    """Named metrics in a global scope plus arbitrary (per-container) scopes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._scopes: dict[str, dict[str, Any]] = {_GLOBAL_SCOPE: {}}

    def _get(self, kind: str, name: str, scope: str | None):
        cls = _METRIC_TYPES[kind]
        scope_key = scope or _GLOBAL_SCOPE
        with self._lock:
            metrics = self._scopes.setdefault(scope_key, {})
            metric = metrics.get(name)
            if metric is None:
                metric = metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} in scope {scope_key!r} is "
                    f"{type(metric).__name__}, not {cls.__name__}")
            return metric

    def counter(self, name: str, scope: str | None = None) -> Counter:
        return self._get("counter", name, scope)

    def gauge(self, name: str, scope: str | None = None) -> Gauge:
        return self._get("gauge", name, scope)

    def histogram(self, name: str, scope: str | None = None) -> Histogram:
        return self._get("histogram", name, scope)

    def reset(self) -> None:
        """Zero every metric in place (holders keep their references)."""
        with self._lock:
            scopes = [dict(m) for m in self._scopes.values()]
        for metrics in scopes:
            for metric in metrics.values():
                metric.reset()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            scopes = {key: dict(m) for key, m in self._scopes.items()}
        out: dict[str, Any] = {"global": {}, "scopes": {}}
        for key, metrics in scopes.items():
            rendered = {name: metric.snap()
                        for name, metric in sorted(metrics.items())}
            if key == _GLOBAL_SCOPE:
                out["global"] = rendered
            else:
                out["scopes"][key] = rendered
        return out

    @staticmethod
    def _flat(metrics: dict[str, Any]) -> dict[str, float]:
        """One scope's metrics as flat numbers (histograms contribute
        ``<name>.count`` and ``<name>.sum``; non-numeric values drop)."""
        flat: dict[str, float] = {}
        for name, value in metrics.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                flat[name] = value
            elif isinstance(value, dict) and "count" in value \
                    and "sum" in value:
                flat[f"{name}.count"] = value.get("count", 0)
                flat[f"{name}.sum"] = value.get("sum", 0.0)
        return flat

    @staticmethod
    def diff(before: dict[str, Any],
             after: dict[str, Any]) -> dict[str, Any]:
        """Numeric metric movement between two :meth:`snapshot` documents.

        Accepts either full snapshots (``{"global": ..., "scopes":
        ...}``) — returning the same shape, with scopes whose metrics
        did not move omitted — or two flat single-scope dicts,
        returning a flat delta dict.  Histograms contribute
        ``<name>.count`` / ``<name>.sum`` deltas; zero deltas are
        omitted, so an empty result means "nothing moved".
        """
        def one(b: dict[str, Any], a: dict[str, Any]) -> dict[str, float]:
            b_flat = MetricsRegistry._flat(b or {})
            a_flat = MetricsRegistry._flat(a or {})
            out: dict[str, float] = {}
            for key, value in a_flat.items():
                delta = value - b_flat.get(key, 0)
                if delta:
                    out[key] = delta
            return out

        before = before or {}
        after = after or {}
        if isinstance(after.get("global"), dict) \
                or isinstance(before.get("global"), dict):
            before_scopes = before.get("scopes") or {}
            after_scopes = after.get("scopes") or {}
            scopes: dict[str, dict[str, float]] = {}
            for scope in sorted(set(before_scopes) | set(after_scopes)):
                delta = one(before_scopes.get(scope, {}),
                            after_scopes.get(scope, {}))
                if delta:
                    scopes[scope] = delta
            return {"global": one(before.get("global") or {},
                                  after.get("global") or {}),
                    "scopes": scopes}
        return one(before, after)


#: The ChannelCounters keys summed across live connections for
#: ``snapshot()["transport"]["totals"]`` — the cross-connection view.
TRANSPORT_TOTAL_KEYS = (
    "requests_sent", "replies_received", "requests_served",
    "requests_failed", "bytes_sent", "bytes_received", "in_flight",
    "max_in_flight", "close_errors",
)


# ---------------------------------------------------------------------------
# the plane


class Telemetry:
    """One process's telemetry plane (module-global :data:`TELEMETRY`).

    Separate instances (with injected clocks) exist only in tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 buffer_limit: int = SPAN_BUFFER_LIMIT) -> None:
        self.clock = clock
        #: Master tracing switch; hot paths read this one attribute.
        self.tracing = False
        #: True in sentinel child processes: spans produced while serving
        #: a traced request ship back on the reply (``tsp``) instead of
        #: accumulating in a buffer nobody will ever read.
        self.piggyback = False
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._buffer: deque[Span] = deque(maxlen=buffer_limit)
        self._dropped = 0
        self._tls = threading.local()
        self._seq = itertools.count(1)
        #: family -> {key: (weakref-to-owner, fn(owner) -> dict)}
        self._families: dict[str, dict[str, tuple]] = {}

    # -- switches ----------------------------------------------------------------

    def enable_tracing(self) -> None:
        self.tracing = True

    def disable_tracing(self) -> None:
        self.tracing = False

    def reset(self) -> None:
        """Drop buffered spans and zero metrics; collectors stay registered."""
        with self._lock:
            self._buffer.clear()
            self._dropped = 0
        self.metrics.reset()

    # -- span lifecycle ----------------------------------------------------------

    def current(self) -> Span | None:
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def begin(self, name: str, *, trace: str | None = None,
              parent: "Span | str | None" = None,
              attrs: dict[str, Any] | None = None,
              push: bool = False) -> Span:
        """Open a span.  Trace/parent default to the thread's current span.

        ``push=True`` additionally makes it the thread's current span
        until :meth:`finish`.
        """
        if isinstance(parent, Span):
            trace = trace if trace is not None else parent.trace
            parent = parent.sid
        elif trace is None or parent is None:
            cur = self.current()
            if cur is not None:
                if trace is None:
                    trace = cur.trace
                if parent is None:
                    parent = cur.sid
        if trace is None:
            trace = _new_id()
        span = Span(trace, _new_id(), parent, name,
                    self.clock() * 1e6, attrs,
                    sink=getattr(self._tls, "collector", None))
        if push:
            stack = getattr(self._tls, "stack", None)
            if stack is None:
                stack = self._tls.stack = []
            stack.append(span)
        return span

    def finish(self, span: Span, status: str = "ok") -> None:
        """Close a span and record it (buffer, or the bound collector)."""
        if span.end_us is not None:
            return
        span.end_us = self.clock() * 1e6
        if span.status is None:
            span.status = status
        stack = getattr(self._tls, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        sink = span.sink
        if sink is not None and not sink.closed:
            sink.spans.append(span)
        else:
            self._record(span)

    @contextmanager
    def span(self, name: str, *, trace: str | None = None,
             parent: "Span | str | None" = None,
             attrs: dict[str, Any] | None = None):
        """``with tel.span("cache.flush", attrs={...}) as s: ...``"""
        span = self.begin(name, trace=trace, parent=parent, attrs=attrs,
                          push=True)
        try:
            yield span
        except BaseException:
            self.finish(span, status="error")
            raise
        self.finish(span)

    def event(self, name: str, *, attrs: dict[str, Any] | None = None) -> None:
        """A zero-duration marker span under the current span."""
        span = self.begin(name, attrs=attrs)
        self.finish(span)

    def new_trace(self, name: str,
                  attrs: dict[str, Any] | None = None) -> TraceHandle:
        """Start a fresh trace; the returned handle's root span stays
        open until the owner finishes it (e.g. file close)."""
        root = self.begin(name, trace=None, parent=None, attrs=attrs)
        return TraceHandle(root.trace, root)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._buffer) == self._buffer.maxlen:
                self._dropped += 1
            self._buffer.append(span)

    # -- cross-process piggyback -------------------------------------------------

    def start_collect(self) -> _Collector:
        """Capture spans finished by (or bound to) this request's handling."""
        collector = _Collector(getattr(self._tls, "collector", None))
        self._tls.collector = collector
        return collector

    def end_collect(self, collector: _Collector,
                    anchor_us: float) -> list[dict[str, Any]]:
        """Close the collector; returns the wire form of what it caught."""
        collector.closed = True
        self._tls.collector = collector.prev
        return [span.to_wire(anchor_us) for span in collector.spans]

    def ingest(self, shipped: Iterable[dict[str, Any]],
               anchor: "Span | float | None" = None) -> None:
        """Adopt spans shipped from a peer process into the local buffer.

        *anchor* (typically the frame span that carried them) re-bases
        the peer's relative timestamps onto this process's clock.
        """
        if isinstance(anchor, Span):
            anchor_us = anchor.start_us
        elif anchor is not None:
            anchor_us = float(anchor)
        else:
            anchor_us = self.clock() * 1e6
        for wire in shipped:
            try:
                span = Span(wire["trace"], wire["sid"], wire.get("parent"),
                            wire["name"], anchor_us + float(wire["t"]),
                            wire.get("attrs") or None, pid=wire.get("pid"))
                end = wire.get("e")
                span.end_us = None if end is None else anchor_us + float(end)
                span.status = wire.get("status", "ok")
            except (KeyError, TypeError, ValueError):
                continue  # a malformed shipment must never break the reply
            self._record(span)

    # -- buffer / export ---------------------------------------------------------

    def spans(self, trace: str | None = None) -> list[Span]:
        with self._lock:
            out = list(self._buffer)
        if trace is not None:
            out = [s for s in out if s.trace == trace]
        return out

    def drain(self) -> list[Span]:
        with self._lock:
            out = list(self._buffer)
            self._buffer.clear()
        return out

    def export_jsonl(self, path: Any, trace: str | None = None) -> int:
        """Write buffered spans (optionally one trace) as JSONL."""
        spans = self.spans(trace=trace)
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)

    def export_bundle(self, dirname: Any, *,
                      before: dict[str, Any] | None = None,
                      ping: dict[str, Any] | None = None,
                      chaos_report: dict[str, Any] | None = None,
                      meta: dict[str, Any] | None = None) -> dict[str, str]:
        """Write a self-contained evidence bundle into *dirname*.

        The bundle is the file-shaped hand-off between the telemetry
        plane and ``afctl doctor``: a directory of plain JSON/JSONL
        documents (schema :data:`BUNDLE_SCHEMA`, recorded in
        ``meta.json``) that diagnostics consume offline —

        * ``snapshot.json`` — the full :meth:`snapshot` (always);
        * ``snapshot_before.json`` — an earlier snapshot, enabling
          trend checks (optional);
        * ``spans.jsonl`` — the buffered spans, if any (optional);
        * ``ping.json`` — a live host's channel-0 ``ping`` reply
          (``host.*`` gauges + queue-wait/service split) (optional);
        * ``chaos_report.json`` — a chaos scenario report (optional).

        Returns ``{logical name: file path}`` for what was written.
        """
        os.makedirs(dirname, exist_ok=True)
        written: dict[str, str] = {}

        def emit(name: str, doc: dict[str, Any]) -> None:
            path = os.path.join(dirname, name)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, default=str)
                fh.write("\n")
            written[name] = path

        emit("snapshot.json", self.snapshot())
        if before is not None:
            emit("snapshot_before.json", before)
        if len(self._buffer):
            path = os.path.join(dirname, "spans.jsonl")
            self.export_jsonl(path)
            written["spans.jsonl"] = path
        if ping is not None:
            emit("ping.json", ping)
        if chaos_report is not None:
            emit("chaos_report.json", chaos_report)
        emit("meta.json", {"kind": "af-evidence", "schema": BUNDLE_SCHEMA,
                           "files": sorted(written), **(meta or {})})
        return written

    def trace_tree(self, trace: str,
                   extra: Iterable[Span] = ()) -> dict[str, Any] | None:
        """The nested span tree of one trace (children sorted by start).

        *extra* lets callers merge still-open spans (a live root) that
        have not reached the buffer yet.
        """
        spans = self.spans(trace)
        seen = {s.sid for s in spans}
        for span in extra:
            if span.trace == trace and span.sid not in seen:
                spans.append(span)
                seen.add(span.sid)
        if not spans:
            return None
        nodes = {}
        for span in spans:
            node = span.to_dict()
            node["children"] = []
            nodes[span.sid] = node
        roots = []
        for span in sorted(spans, key=lambda s: s.start_us):
            node = nodes[span.sid]
            parent = nodes.get(span.parent) if span.parent else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        if len(roots) == 1:
            return roots[0]
        return {"trace": trace, "sid": None, "parent": None,
                "name": f"<trace {trace}>", "start_us": roots[0]["start_us"],
                "end_us": None, "status": None, "attrs": {}, "pid": None,
                "children": roots}

    # -- collector registry / snapshot -------------------------------------------

    def register_collector(self, family: str, key: str, owner: Any,
                           fn: Callable[[Any], Any]) -> str:
        """Re-home an existing counter object under ``snapshot()``.

        The registry holds only a weak reference to *owner*; entries
        vanish with their owners, so registration never extends a
        counter's lifetime.  Returns the unique key used.
        """
        ref = weakref.ref(owner)
        with self._lock:
            unique = f"{key}#{next(self._seq)}"
            self._families.setdefault(family, {})[unique] = (ref, fn)
        return unique

    def snapshot(self) -> dict[str, Any]:
        """Every counter family under one stable dict.  The schema:

        * ``transport`` — ``{"connections": {key: ChannelCounters
          .snapshot()}, "totals": {...}}`` where totals sums
          :data:`TRANSPORT_TOTAL_KEYS` across connections;
        * ``files`` — per-open :class:`~repro.core.fileobj.FileStats`
          dicts keyed by container path;
        * ``cache`` — in-process :class:`~repro.core.cache.BlockCache`
          ``stats()`` dicts;
        * ``network`` — :class:`~repro.net.network.NetworkStats` dicts;
        * ``faults`` — armed :class:`~repro.core.faults.FaultPlane`
          ``summary()`` dicts;
        * ``host`` — :class:`~repro.core.hostloop.EventLoopServer`
          ``stats()`` dicts (the ``host.*`` gauges);
        * ``plane`` — :class:`~repro.core.planesel.PlaneCostModel`
          ``stats()`` dicts (``plane.selected.*``,
          ``plane.crossover_bytes``);
        * ``close_errors`` — ``{"count", "last"}`` folded from every
          transport connection;
        * ``metrics`` — the :class:`MetricsRegistry` snapshot
          (``{"global": ..., "scopes": ...}``);
        * ``spans`` — ``{"tracing", "buffered", "dropped"}``.
        """
        with self._lock:
            families = {fam: dict(entries)
                        for fam, entries in self._families.items()}
        out: dict[str, Any] = {}
        dead: list[tuple[str, str]] = []
        for family in ("transport", "files", "cache", "network", "faults",
                       "host", "plane"):
            rendered: dict[str, Any] = {}
            for key, (ref, fn) in families.get(family, {}).items():
                owner = ref()
                if owner is None:
                    dead.append((family, key))
                    continue
                try:
                    rendered[key] = fn(owner)
                except Exception:
                    continue  # a broken collector must not break snapshot
            out[family] = rendered
        if dead:
            with self._lock:
                for family, key in dead:
                    self._families.get(family, {}).pop(key, None)
        connections = out["transport"]
        totals = dict.fromkeys(TRANSPORT_TOTAL_KEYS, 0)
        close_count, last_close = 0, ""
        for snap in connections.values():
            for key in TRANSPORT_TOTAL_KEYS:
                totals[key] += snap.get(key, 0)
            close_count += snap.get("close_errors", 0)
            if snap.get("last_close_error"):
                last_close = snap["last_close_error"]
        out["transport"] = {"connections": connections, "totals": totals}
        out["close_errors"] = {"count": close_count, "last": last_close}
        out["metrics"] = self.metrics.snapshot()
        with self._lock:
            out["spans"] = {"tracing": self.tracing,
                            "buffered": len(self._buffer),
                            "dropped": self._dropped}
        return out


#: The process-global telemetry plane every layer hooks into.
TELEMETRY = Telemetry()


def enable_tracing() -> None:
    TELEMETRY.enable_tracing()


def disable_tracing() -> None:
    TELEMETRY.disable_tracing()


def snapshot() -> dict[str, Any]:
    return TELEMETRY.snapshot()


# ---------------------------------------------------------------------------
# rendering (the afctl surfaces; same aligned-column style as ntos/trace.py)


def _attr_text(span_dict: dict[str, Any]) -> str:
    parts = [f"{key}={value}" for key, value in
             (span_dict.get("attrs") or {}).items()]
    status = span_dict.get("status")
    if status not in (None, "ok"):
        parts.append(f"!{status}")
    return " ".join(parts)


def render_timeline(spans: Iterable[Span], limit: int = 60) -> str:
    """An aligned per-operation timeline, tree-indented by span depth."""
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    by_sid = {span.sid: span for span in spans}

    def depth(span: Span) -> int:
        d, cursor, hops = 0, span.parent, 0
        while cursor is not None and hops < 64:
            parent = by_sid.get(cursor)
            if parent is None:
                break
            d += 1
            cursor = parent.parent
            hops += 1
        return d

    anchor = min(span.start_us for span in spans)
    lines = [f"{'t (µs)':>12}  {'dur (µs)':>10}  {'pid':>7}  span"]
    shown = sorted(spans, key=lambda s: (s.start_us, s.sid))
    for span in shown[:limit]:
        dur = span.duration_us
        dur_text = f"{dur:>10.1f}" if dur is not None else f"{'open':>10}"
        detail = _attr_text(span.to_dict())
        name = "  " * depth(span) + span.name
        if detail:
            name = f"{name}  [{detail}]"
        lines.append(f"{span.start_us - anchor:>12.1f}  {dur_text}  "
                     f"{span.pid:>7}  {name}")
    if len(shown) > limit:
        lines.append(f"... {len(shown) - limit} more spans")
    return "\n".join(lines)


def _render_section(title: str, body: dict[str, Any],
                    lines: list[str]) -> None:
    lines.append(f"{title}:")
    if not body:
        lines.append("  (none)")
        return
    for key, value in body.items():
        if isinstance(value, dict):
            brief = " ".join(
                f"{k}={v}" for k, v in value.items()
                if not isinstance(v, dict))
            lines.append(f"  {key}: {brief}")
        else:
            lines.append(f"  {key}: {value}")


def render_snapshot(snap: dict[str, Any]) -> str:
    """A human-readable rendering of :meth:`Telemetry.snapshot`."""
    lines: list[str] = []
    totals = snap.get("transport", {}).get("totals", {})
    lines.append("transport totals:")
    for key in TRANSPORT_TOTAL_KEYS:
        lines.append(f"  {key}: {totals.get(key, 0)}")
    connections = snap.get("transport", {}).get("connections", {})
    lines.append(f"  connections: {len(connections)}")
    _render_section("files", snap.get("files", {}), lines)
    _render_section("cache", snap.get("cache", {}), lines)
    _render_section("network", snap.get("network", {}), lines)
    _render_section("faults", snap.get("faults", {}), lines)
    _render_section("host", snap.get("host", {}), lines)
    _render_section("plane", snap.get("plane", {}), lines)
    close = snap.get("close_errors", {})
    lines.append(f"close errors: {close.get('count', 0)}"
                 + (f" (last: {close.get('last')})" if close.get("last")
                    else ""))
    metrics = snap.get("metrics", {})
    _render_section("metrics (global)", metrics.get("global", {}), lines)
    for scope, values in sorted(metrics.get("scopes", {}).items()):
        _render_section(f"metrics [{scope}]", values, lines)
    spans_info = snap.get("spans", {})
    lines.append(f"spans: tracing={'on' if spans_info.get('tracing') else 'off'}"
                 f" buffered={spans_info.get('buffered', 0)}"
                 f" dropped={spans_info.get('dropped', 0)}")
    return "\n".join(lines)
