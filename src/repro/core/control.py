"""The control-channel protocol.

The process-plus-control strategy sends "all API requests from the
application ... to the sentinel process via the control channel and the
response of the sentinel process is read from the read pipe" (§4.2).
This module defines the wire encoding of those commands and responses —
a 4-byte length-prefixed JSON header followed by an opaque payload — and
the command vocabulary shared by every channel-based strategy (process,
process-plus-control and thread all reuse it; only the transport
differs).

On top of the bare codec sits the *multiplexing envelope*: every message
carried by a :class:`~repro.core.channel.Channel` is tagged with a
request id (``rid``), a logical channel id (``chan``) and a reply flag
(``re``).  The envelope is what lets one framed connection carry many
concurrent opens — each open is a ``chan``, each in-flight operation a
``rid`` — including the network-bridge traffic that rides the same
connection as channel 0 (see :mod:`repro.core.netproxy`).
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import (
    ChannelClosedError,
    FrameError,
    ProtocolError,
    SentinelError,
    wire_error_registry,
)

__all__ = [
    "encode_message",
    "encode_head",
    "decode_message",
    "read_wire_message",
    "command",
    "ok_response",
    "error_response",
    "error_fields",
    "raise_for_response",
    "request_envelope",
    "reply_envelope",
    "split_envelope",
    "COMMANDS",
    "ENVELOPE_KEYS",
]

_JSON_LEN = struct.Struct(">I")

#: The full command vocabulary of the control channel.  ``rstream`` and
#: ``wstream`` are the sequential plane of the simple process strategy
#: (§4.1) expressed as commands over the multiplexed transport.
#: ``readv``/``writev`` are the vectored (scatter-gather) ops: one round
#: trip carries many extents, which is what lets the cache pipeline move
#: whole prefetch windows and coalesced flush batches per exchange.
COMMANDS = ("read", "write", "readv", "writev", "size", "truncate",
            "flush", "control", "close", "rstream", "wstream", "open",
            "ping")

#: Header fields reserved for the multiplexing envelope.
ENVELOPE_KEYS = ("rid", "chan", "re")

#: Exception classes a sentinel failure may round-trip as.  Built from
#: :mod:`repro.errors` so every library exception survives the wire;
#: anything else degrades to :class:`SentinelError`.
_ERROR_TYPES: dict[str, type[Exception]] = wire_error_registry()


def encode_message(fields: dict[str, Any],
                   payload: bytes | memoryview = b"") -> bytes:
    """Encode a header dict + payload into one frame body."""
    head = encode_head(fields)
    if not payload:
        return head
    return b"".join((head, payload))


def encode_head(fields: dict[str, Any]) -> bytes:
    """Encode just the length-prefixed JSON header of a message.

    Senders that keep the payload separate (to write it as its own
    frame part, copy-free) pair this with
    :func:`repro.util.framing.write_frame`'s multi-part body.
    """
    try:
        header = json.dumps(fields, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unencodable message fields: {exc}") from exc
    return _JSON_LEN.pack(len(header)) + header


def read_wire_message(stream: Any) -> tuple[dict[str, Any], bytes]:
    """Read one framed message off *stream* as ``(fields, payload)``.

    Equivalent to ``decode_message(read_frame(stream))`` but reads the
    JSON header and the payload as separate stream reads, so a large
    payload arrives in exactly one buffer — no frame-sized intermediate
    blob, no slice copy.  This is the hot inbound path of
    :class:`~repro.core.channel.StreamChannel`.
    """
    from repro.util.framing import MAX_FRAME, read_exact
    head = stream.read(_JSON_LEN.size)
    if not head:
        raise ChannelClosedError("stream closed at frame boundary")
    if len(head) < _JSON_LEN.size:
        head += read_exact(stream, _JSON_LEN.size - len(head))
    (frame_len,) = _JSON_LEN.unpack(head)
    if frame_len > MAX_FRAME:
        raise FrameError(f"incoming frame of {frame_len} bytes exceeds MAX_FRAME")
    if frame_len < _JSON_LEN.size:
        raise FrameError(f"message of {frame_len} bytes has no header")
    (header_len,) = _JSON_LEN.unpack(read_exact(stream, _JSON_LEN.size))
    if header_len > frame_len - _JSON_LEN.size:
        raise FrameError("message header extends past frame body")
    header = read_exact(stream, header_len)
    try:
        fields = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"message header is not JSON: {exc}") from exc
    if not isinstance(fields, dict):
        raise FrameError(
            f"message header must be an object, got {type(fields).__name__}")
    payload = read_exact(stream, frame_len - _JSON_LEN.size - header_len)
    return fields, payload


def decode_message(blob: bytes) -> tuple[dict[str, Any], bytes]:
    """Decode one frame body into (fields, payload)."""
    if len(blob) < _JSON_LEN.size:
        raise FrameError(f"message of {len(blob)} bytes has no header")
    (header_len,) = _JSON_LEN.unpack_from(blob)
    header_end = _JSON_LEN.size + header_len
    if len(blob) < header_end:
        raise FrameError("message header extends past frame body")
    try:
        fields = json.loads(blob[_JSON_LEN.size:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"message header is not JSON: {exc}") from exc
    if not isinstance(fields, dict):
        raise FrameError(f"message header must be an object, got {type(fields).__name__}")
    return fields, blob[header_end:]


def command(cmd: str, payload: bytes = b"", **fields: Any) -> bytes:
    """Encode an application-to-sentinel command message."""
    if cmd not in COMMANDS:
        raise ProtocolError(f"unknown command {cmd!r}")
    return encode_message({"cmd": cmd, **fields}, payload)


def ok_response(payload: bytes = b"", **fields: Any) -> bytes:
    """Encode a success response."""
    return encode_message({"ok": True, **fields}, payload)


def error_fields(exc: BaseException) -> dict[str, Any]:
    """The header dict describing *exc* as a failure response."""
    return {
        "ok": False,
        "error": str(exc),
        "error_type": type(exc).__name__,
    }


def error_response(exc: BaseException) -> bytes:
    """Encode an exception as a failure response."""
    return encode_message(error_fields(exc))


def raise_for_response(fields: dict[str, Any]) -> None:
    """If *fields* is a failure response, raise the matching exception."""
    if fields.get("ok", False):
        return
    error_type = fields.get("error_type", "")
    message = fields.get("error", "sentinel reported failure")
    exc_class = _ERROR_TYPES.get(error_type, SentinelError)
    raise exc_class(message)


# ---------------------------------------------------------------------------
# Multiplexing envelope
# ---------------------------------------------------------------------------

def request_envelope(rid: int, chan: int, fields: dict[str, Any],
                     payload: bytes = b"") -> bytes:
    """Encode a request message tagged with its ``rid``/``chan``."""
    return encode_message({**fields, "rid": int(rid), "chan": int(chan)},
                          payload)


def reply_envelope(rid: int, chan: int, fields: dict[str, Any],
                   payload: bytes = b"") -> bytes:
    """Encode a reply to request ``rid`` on channel ``chan``."""
    return encode_message({**fields, "rid": int(rid), "chan": int(chan),
                           "re": True}, payload)


def split_envelope(fields: dict[str, Any]) -> tuple[int, int, bool,
                                                    dict[str, Any]]:
    """Pop the multiplexing envelope off a decoded header.

    Returns ``(rid, chan, is_reply, rest)``; raises :class:`FrameError`
    if the header carries no valid envelope.
    """
    rest = dict(fields)
    try:
        rid = int(rest.pop("rid"))
        chan = int(rest.pop("chan"))
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"message lacks a valid rid/chan envelope: {exc}") from exc
    return rid, chan, bool(rest.pop("re", False)), rest
