"""The control-channel protocol.

The process-plus-control strategy sends "all API requests from the
application ... to the sentinel process via the control channel and the
response of the sentinel process is read from the read pipe" (§4.2).
This module defines the wire encoding of those commands and responses —
a 4-byte length-prefixed JSON header followed by an opaque payload — and
the command vocabulary shared by every channel-based strategy (process,
process-plus-control and thread all reuse it; only the transport
differs).

The same encoding carries the network-proxy frames that let a sentinel
child process reach the simulated network living in the application
process (see :mod:`repro.core.netproxy`).
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import (
    FrameError,
    ProtocolError,
    SandboxViolation,
    SentinelError,
    UnsupportedOperationError,
)

__all__ = [
    "encode_message",
    "decode_message",
    "command",
    "ok_response",
    "error_response",
    "raise_for_response",
    "COMMANDS",
]

_JSON_LEN = struct.Struct(">I")

#: The full command vocabulary of the control channel.
COMMANDS = ("read", "write", "size", "truncate", "flush", "control", "close")

#: Exception classes a sentinel failure may round-trip as.
_ERROR_TYPES: dict[str, type[Exception]] = {
    "UnsupportedOperationError": UnsupportedOperationError,
    "SentinelError": SentinelError,
    "ProtocolError": ProtocolError,
    "SandboxViolation": SandboxViolation,
}


def encode_message(fields: dict[str, Any], payload: bytes = b"") -> bytes:
    """Encode a header dict + payload into one frame body."""
    try:
        header = json.dumps(fields, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unencodable message fields: {exc}") from exc
    return _JSON_LEN.pack(len(header)) + header + payload


def decode_message(blob: bytes) -> tuple[dict[str, Any], bytes]:
    """Decode one frame body into (fields, payload)."""
    if len(blob) < _JSON_LEN.size:
        raise FrameError(f"message of {len(blob)} bytes has no header")
    (header_len,) = _JSON_LEN.unpack_from(blob)
    header_end = _JSON_LEN.size + header_len
    if len(blob) < header_end:
        raise FrameError("message header extends past frame body")
    try:
        fields = json.loads(blob[_JSON_LEN.size:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"message header is not JSON: {exc}") from exc
    if not isinstance(fields, dict):
        raise FrameError(f"message header must be an object, got {type(fields).__name__}")
    return fields, blob[header_end:]


def command(cmd: str, payload: bytes = b"", **fields: Any) -> bytes:
    """Encode an application-to-sentinel command message."""
    if cmd not in COMMANDS:
        raise ProtocolError(f"unknown command {cmd!r}")
    return encode_message({"cmd": cmd, **fields}, payload)


def ok_response(payload: bytes = b"", **fields: Any) -> bytes:
    """Encode a success response."""
    return encode_message({"ok": True, **fields}, payload)


def error_response(exc: BaseException) -> bytes:
    """Encode an exception as a failure response."""
    return encode_message({
        "ok": False,
        "error": str(exc),
        "error_type": type(exc).__name__,
    })


def raise_for_response(fields: dict[str, Any]) -> None:
    """If *fields* is a failure response, raise the matching exception."""
    if fields.get("ok", False):
        return
    error_type = fields.get("error_type", "")
    message = fields.get("error", "sentinel reported failure")
    exc_class = _ERROR_TYPES.get(error_type, SentinelError)
    raise exc_class(message)
