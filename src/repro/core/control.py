"""The control-channel protocol.

The process-plus-control strategy sends "all API requests from the
application ... to the sentinel process via the control channel and the
response of the sentinel process is read from the read pipe" (§4.2).
This module defines the wire encoding of those commands and responses —
a 4-byte length-prefixed JSON header followed by an opaque payload — and
the command vocabulary shared by every channel-based strategy (process,
process-plus-control and thread all reuse it; only the transport
differs).

On top of the bare codec sits the *multiplexing envelope*: every message
carried by a :class:`~repro.core.channel.Channel` is tagged with a
request id (``rid``), a logical channel id (``chan``) and a reply flag
(``re``).  The envelope is what lets one framed connection carry many
concurrent opens — each open is a ``chan``, each in-flight operation a
``rid`` — including the network-bridge traffic that rides the same
connection as channel 0 (see :mod:`repro.core.netproxy`).
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any

from repro.errors import (
    ChannelClosedError,
    FrameError,
    ProtocolError,
    SentinelError,
    wire_error_registry,
)

__all__ = [
    "encode_message",
    "encode_head",
    "encode_head_wire",
    "decode_message",
    "decode_binary_head",
    "read_wire_message",
    "command",
    "ok_response",
    "error_response",
    "error_fields",
    "raise_for_response",
    "request_envelope",
    "reply_envelope",
    "split_envelope",
    "COMMANDS",
    "ENVELOPE_KEYS",
    "BINARY_HEADERS",
]

_JSON_LEN = struct.Struct(">I")

#: The full command vocabulary of the control channel.  ``rstream`` and
#: ``wstream`` are the sequential plane of the simple process strategy
#: (§4.1) expressed as commands over the multiplexed transport.
#: ``readv``/``writev`` are the vectored (scatter-gather) ops: one round
#: trip carries many extents, which is what lets the cache pipeline move
#: whole prefetch windows and coalesced flush batches per exchange.
COMMANDS = ("read", "write", "readv", "writev", "size", "truncate",
            "flush", "control", "close", "rstream", "wstream", "open",
            "ping")

#: Header fields reserved for the multiplexing envelope.
ENVELOPE_KEYS = ("rid", "chan", "re")

#: Exception classes a sentinel failure may round-trip as.  Built from
#: :mod:`repro.errors` so every library exception survives the wire;
#: anything else degrades to :class:`SentinelError`.
_ERROR_TYPES: dict[str, type[Exception]] = wire_error_registry()


def encode_message(fields: dict[str, Any],
                   payload: bytes | memoryview = b"") -> bytes:
    """Encode a header dict + payload into one frame body."""
    head = encode_head(fields)
    if not payload:
        return head
    return b"".join((head, payload))


def encode_head(fields: dict[str, Any]) -> bytes:
    """Encode just the length-prefixed JSON header of a message.

    Senders that keep the payload separate (to write it as its own
    frame part, copy-free) pair this with
    :func:`repro.util.framing.write_frame`'s multi-part body.
    """
    try:
        header = json.dumps(fields, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unencodable message fields: {exc}") from exc
    return _JSON_LEN.pack(len(header)) + header


def read_wire_message(stream: Any) -> tuple[dict[str, Any], bytes]:
    """Read one framed message off *stream* as ``(fields, payload)``.

    Equivalent to ``decode_message(read_frame(stream))`` but reads the
    header and the payload as separate stream reads, so a large payload
    arrives in exactly one buffer — no frame-sized intermediate blob, no
    slice copy.  This is the hot inbound path of
    :class:`~repro.core.channel.StreamChannel`.  The header-length word
    carries the binary-header tag in its high bit (see
    :func:`encode_head_wire`).
    """
    from repro.util.framing import MAX_FRAME, read_exact
    head = stream.read(_JSON_LEN.size)
    if not head:
        raise ChannelClosedError("stream closed at frame boundary")
    if len(head) < _JSON_LEN.size:
        head += read_exact(stream, _JSON_LEN.size - len(head))
    (frame_len,) = _JSON_LEN.unpack(head)
    if frame_len > MAX_FRAME:
        raise FrameError(f"incoming frame of {frame_len} bytes exceeds MAX_FRAME")
    if frame_len < _JSON_LEN.size:
        raise FrameError(f"message of {frame_len} bytes has no header")
    (word,) = _JSON_LEN.unpack(read_exact(stream, _JSON_LEN.size))
    header_len = word & ~_BINARY_TAG
    if header_len > frame_len - _JSON_LEN.size:
        raise FrameError("message header extends past frame body")
    header = read_exact(stream, header_len)
    if word & _BINARY_TAG:
        fields = decode_binary_head(header)
    else:
        fields = _decode_json_head(header)
    payload = read_exact(stream, frame_len - _JSON_LEN.size - header_len)
    return fields, payload


def _decode_json_head(header: bytes) -> dict[str, Any]:
    try:
        fields = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"message header is not JSON: {exc}") from exc
    if not isinstance(fields, dict):
        raise FrameError(
            f"message header must be an object, got {type(fields).__name__}")
    return fields


def decode_message(blob: bytes) -> tuple[dict[str, Any], bytes]:
    """Decode one frame body into (fields, payload)."""
    if len(blob) < _JSON_LEN.size:
        raise FrameError(f"message of {len(blob)} bytes has no header")
    (word,) = _JSON_LEN.unpack_from(blob)
    header_len = word & ~_BINARY_TAG
    header_end = _JSON_LEN.size + header_len
    if len(blob) < header_end:
        raise FrameError("message header extends past frame body")
    if word & _BINARY_TAG:
        fields = decode_binary_head(bytes(blob[_JSON_LEN.size:header_end]))
    else:
        fields = _decode_json_head(blob[_JSON_LEN.size:header_end])
    return fields, blob[header_end:]


# ---------------------------------------------------------------------------
# Binary hot-op headers
# ---------------------------------------------------------------------------
#
# The four data-plane commands (read/write/readv/writev) and their
# replies dominate the frame stream, and for a cached 4 KiB read the
# ``json.dumps``/``json.loads`` round trip of the header costs more than
# the payload copy.  Those — and only those — headers therefore have a
# struct-packed encoding, tagged by the high bit of the in-body
# header-length word (legal because MAX_FRAME < 2**31 keeps that bit
# clear for JSON headers).  Everything else — errors, opens, control
# ops, traced frames (``tc``), piggybacked spans (``tsp``) — stays JSON,
# and the decoder accepts both forms forever, so the two encodings can
# coexist on one connection.

#: Marks a binary header in the header-length word's high bit.
_BINARY_TAG = 0x80000000

#: Module kill-switch (also honours the ``REPRO_NO_BINHDR`` env var):
#: when ``False`` every header is JSON, as before this encoding existed.
BINARY_HEADERS = not os.environ.get("REPRO_NO_BINHDR")

_B_BASE = struct.Struct(">BBIQ")    # kind, flags, chan, rid
_B_U32 = struct.Struct(">I")
_B_U64 = struct.Struct(">Q")
_B_U64x2 = struct.Struct(">QQ")
_B_F64 = struct.Struct(">d")
_B_SHM = struct.Struct(">QQQQ")     # slot, length, generation, crc32
_B_SHMR = struct.Struct(">QQQ")     # slot, capacity, generation

# Header kinds.
_K_READ, _K_WRITE, _K_READV, _K_WRITEV = 1, 2, 3, 4
_K_OK, _K_WRITTEN, _K_SIZES, _K_WRITTENV = 5, 6, 7, 8

# Optional-field flag bits.
_F_DL, _F_SHM, _F_SHMR, _F_SL = 1, 2, 4, 8


def _is_uints(value: Any, count: int | None = None) -> bool:
    if not isinstance(value, (list, tuple)):
        return False
    if count is not None and len(value) != count:
        return False
    return all(isinstance(x, int) and x >= 0 for x in value)


def _pack_u64s(values) -> bytes:
    return _B_U32.pack(len(values)) + b"".join(
        _B_U64.pack(v) for v in values)


def encode_head_wire(fields: dict[str, Any]) -> bytes | None:
    """Binary-encode a hot-op header, length word included.

    Returns ``None`` whenever *fields* is not exactly one of the known
    hot shapes — unknown keys, trace contexts, errors — telling the
    caller to fall back to :func:`encode_head`.  The fallback is what
    keeps this codec simple: it never needs to express the general case.
    """
    if not BINARY_HEADERS:
        return None
    try:
        head = _encode_binary(fields)
    except (struct.error, TypeError, ValueError, OverflowError):
        return None
    if head is None:
        return None
    return _JSON_LEN.pack(len(head) | _BINARY_TAG) + head


def _encode_binary(fields: dict[str, Any]) -> bytes | None:
    rest = dict(fields)
    rid = rest.pop("rid", None)
    chan = rest.pop("chan", None)
    if not isinstance(rid, int) or not isinstance(chan, int) \
            or rid < 0 or chan < 0:
        return None
    is_reply = bool(rest.pop("re", False))
    flags = 0
    opt: list[bytes] = []
    dl = rest.pop("dl", None)
    if dl is not None:
        if not isinstance(dl, (int, float)):
            return None
        flags |= _F_DL
        opt.append(_B_F64.pack(float(dl)))
    shm = rest.pop("shm", None)
    if shm is not None:
        if not _is_uints(shm, 4):
            return None
        flags |= _F_SHM
        opt.append(_B_SHM.pack(*shm))
    shm_r = rest.pop("shm_r", None)
    if shm_r is not None:
        if not _is_uints(shm_r, 3):
            return None
        flags |= _F_SHMR
        opt.append(_B_SHMR.pack(*shm_r))
    sl = rest.pop("sl", None)
    if sl is not None:
        if not isinstance(sl, int) or sl < 0:
            return None
        flags |= _F_SL
        opt.append(_B_U32.pack(sl))
    if is_reply:
        if rest.pop("ok", None) is not True:
            return None  # failure replies carry error text: JSON
        if not rest:
            kind, tail = _K_OK, b""
        elif set(rest) == {"written"}:
            written = rest["written"]
            if isinstance(written, int) and written >= 0:
                kind, tail = _K_WRITTEN, _B_U64.pack(written)
            elif _is_uints(written):
                kind, tail = _K_WRITTENV, _pack_u64s(written)
            else:
                return None
        elif set(rest) == {"sizes"} and _is_uints(rest["sizes"]):
            kind, tail = _K_SIZES, _pack_u64s(rest["sizes"])
        else:
            return None
    else:
        cmd = rest.pop("cmd", None)
        if cmd == "read" and set(rest) == {"offset", "size"}:
            kind, tail = _K_READ, _B_U64x2.pack(rest["offset"], rest["size"])
        elif cmd == "write" and set(rest) == {"offset"}:
            kind, tail = _K_WRITE, _B_U64.pack(rest["offset"])
        elif cmd in ("readv", "writev") and set(rest) == {"extents"}:
            parts = [_B_U32.pack(len(rest["extents"]))]
            for extent in rest["extents"]:
                if not _is_uints(extent, 2):
                    return None
                parts.append(_B_U64x2.pack(extent[0], extent[1]))
            kind, tail = (_K_READV if cmd == "readv" else _K_WRITEV), \
                b"".join(parts)
        else:
            return None
    return _B_BASE.pack(kind, flags, chan, rid) + b"".join(opt) + tail


def decode_binary_head(header: bytes) -> dict[str, Any]:
    """Decode a binary header back into the exact dict that produced it.

    Downstream code (envelope split, dispatch, fault matching) is
    encoding-blind: it sees the same field dicts either way.  Garbage
    raises :class:`FrameError`, like a malformed JSON header would.
    """
    try:
        kind, flags, chan, rid = _B_BASE.unpack_from(header, 0)
        pos = _B_BASE.size
        fields: dict[str, Any] = {}
        if kind >= _K_OK:
            fields["ok"] = True
        if flags & _F_DL:
            (fields["dl"],) = _B_F64.unpack_from(header, pos)
            pos += _B_F64.size
        if flags & _F_SHM:
            fields["shm"] = list(_B_SHM.unpack_from(header, pos))
            pos += _B_SHM.size
        if flags & _F_SHMR:
            fields["shm_r"] = list(_B_SHMR.unpack_from(header, pos))
            pos += _B_SHMR.size
        if flags & _F_SL:
            (fields["sl"],) = _B_U32.unpack_from(header, pos)
            pos += _B_U32.size
        if kind == _K_READ:
            fields["cmd"] = "read"
            fields["offset"], fields["size"] = _B_U64x2.unpack_from(
                header, pos)
            pos += _B_U64x2.size
        elif kind == _K_WRITE:
            fields["cmd"] = "write"
            (fields["offset"],) = _B_U64.unpack_from(header, pos)
            pos += _B_U64.size
        elif kind in (_K_READV, _K_WRITEV):
            fields["cmd"] = "readv" if kind == _K_READV else "writev"
            (count,) = _B_U32.unpack_from(header, pos)
            pos += _B_U32.size
            if pos + count * _B_U64x2.size > len(header):
                raise FrameError("binary header extent list is truncated")
            extents = []
            for _ in range(count):
                pair = _B_U64x2.unpack_from(header, pos)
                pos += _B_U64x2.size
                extents.append([pair[0], pair[1]])
            fields["extents"] = extents
        elif kind == _K_OK:
            pass
        elif kind == _K_WRITTEN:
            (fields["written"],) = _B_U64.unpack_from(header, pos)
            pos += _B_U64.size
        elif kind in (_K_SIZES, _K_WRITTENV):
            key = "sizes" if kind == _K_SIZES else "written"
            (count,) = _B_U32.unpack_from(header, pos)
            pos += _B_U32.size
            if pos + count * _B_U64.size > len(header):
                raise FrameError("binary header size list is truncated")
            values = []
            for _ in range(count):
                (value,) = _B_U64.unpack_from(header, pos)
                pos += _B_U64.size
                values.append(value)
            fields[key] = values
        else:
            raise FrameError(f"unknown binary header kind {kind}")
        if pos != len(header):
            raise FrameError(
                f"binary header carries {len(header) - pos} trailing bytes")
        if kind >= _K_OK:
            fields["re"] = True
        fields["rid"] = rid
        fields["chan"] = chan
        return fields
    except struct.error as exc:
        raise FrameError(f"binary header is malformed: {exc}") from exc


def command(cmd: str, payload: bytes = b"", **fields: Any) -> bytes:
    """Encode an application-to-sentinel command message."""
    if cmd not in COMMANDS:
        raise ProtocolError(f"unknown command {cmd!r}")
    return encode_message({"cmd": cmd, **fields}, payload)


def ok_response(payload: bytes = b"", **fields: Any) -> bytes:
    """Encode a success response."""
    return encode_message({"ok": True, **fields}, payload)


def error_fields(exc: BaseException) -> dict[str, Any]:
    """The header dict describing *exc* as a failure response."""
    return {
        "ok": False,
        "error": str(exc),
        "error_type": type(exc).__name__,
    }


def error_response(exc: BaseException) -> bytes:
    """Encode an exception as a failure response."""
    return encode_message(error_fields(exc))


def raise_for_response(fields: dict[str, Any]) -> None:
    """If *fields* is a failure response, raise the matching exception."""
    if fields.get("ok", False):
        return
    error_type = fields.get("error_type", "")
    message = fields.get("error", "sentinel reported failure")
    exc_class = _ERROR_TYPES.get(error_type, SentinelError)
    raise exc_class(message)


# ---------------------------------------------------------------------------
# Multiplexing envelope
# ---------------------------------------------------------------------------

def request_envelope(rid: int, chan: int, fields: dict[str, Any],
                     payload: bytes = b"") -> bytes:
    """Encode a request message tagged with its ``rid``/``chan``."""
    return encode_message({**fields, "rid": int(rid), "chan": int(chan)},
                          payload)


def reply_envelope(rid: int, chan: int, fields: dict[str, Any],
                   payload: bytes = b"") -> bytes:
    """Encode a reply to request ``rid`` on channel ``chan``."""
    return encode_message({**fields, "rid": int(rid), "chan": int(chan),
                           "re": True}, payload)


def split_envelope(fields: dict[str, Any]) -> tuple[int, int, bool,
                                                    dict[str, Any]]:
    """Pop the multiplexing envelope off a decoded header.

    Returns ``(rid, chan, is_reply, rest)``; raises :class:`FrameError`
    if the header carries no valid envelope.
    """
    rest = dict(fields)
    try:
        rid = int(rest.pop("rid"))
        chan = int(rest.pop("chan"))
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"message lacks a valid rid/chan envelope: {exc}") from exc
    return rid, chan, bool(rest.pop("re", False)), rest
