"""Sentinel specifications — the "active part" of an active file.

In the paper the active part is a Win32 executable or DLL stored as an
NTFS stream of the file.  Here the active part is a *spec*: a reference
to an importable factory (``"package.module:factory"``) plus a parameter
dictionary.  Storing a reference rather than code keeps containers
copyable and diffable while preserving the property that opening the
file is what instantiates the sentinel.

The factory may be either a :class:`~repro.core.sentinel.Sentinel`
subclass (instantiated as ``cls(params)``) or a callable returning a
sentinel (called as ``factory(params)``).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import SpecError

__all__ = ["SentinelSpec"]


@dataclass(frozen=True)
class SentinelSpec:
    """An importable sentinel factory reference plus its parameters."""

    target: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if ":" not in self.target:
            raise SpecError(
                f"spec target must be 'module:attribute', got {self.target!r}"
            )
        module, _, attribute = self.target.partition(":")
        if not module or not attribute:
            raise SpecError(f"malformed spec target: {self.target!r}")

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SentinelSpec":
        try:
            target = data["target"]
        except (KeyError, TypeError) as exc:
            raise SpecError(f"spec payload missing 'target': {data!r}") from exc
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise SpecError(f"spec params must be a dict, got {type(params).__name__}")
        return cls(target=target, params=params)

    # -- resolution -----------------------------------------------------------

    def resolve(self):
        """Import and return the factory object (class or callable)."""
        module_name, _, attribute = self.target.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise SpecError(f"cannot import {module_name!r}: {exc}") from exc
        factory = module
        for part in attribute.split("."):
            try:
                factory = getattr(factory, part)
            except AttributeError as exc:
                raise SpecError(
                    f"module {module_name!r} has no attribute {attribute!r}"
                ) from exc
        return factory

    def instantiate(self):
        """Build the sentinel instance this spec describes."""
        factory = self.resolve()
        if not callable(factory):
            raise SpecError(f"spec target {self.target!r} is not callable")
        try:
            sentinel = factory(dict(self.params))
        except Exception as exc:
            raise SpecError(
                f"sentinel factory {self.target!r} failed: {exc}"
            ) from exc
        from repro.core.sentinel import Sentinel  # local import: avoid cycle

        if not isinstance(sentinel, Sentinel):
            raise SpecError(
                f"spec target {self.target!r} did not produce a Sentinel "
                f"(got {type(sentinel).__name__})"
            )
        return sentinel

    def __str__(self) -> str:
        return self.target
