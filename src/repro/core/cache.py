"""Sentinel-side caching — the three critical paths of Figure 5, pipelined.

The paper's evaluation distinguishes three sentinel configurations:

* **path 1, no cache** — every application operation becomes a remote
  exchange;
* **path 2, on-disk cache** — "the sentinel interacts with its local
  file rather than contacting the remote service", i.e. the data part
  holds the cached bytes;
* **path 3, in-memory cache** — "the cache resides in the sentinel's
  memory rather than on disk".

:class:`BlockCache` implements paths 2 and 3 over any
:class:`~repro.core.datapart.DataPart` store (container-backed = disk,
:class:`MemoryDataPart` = memory); path 1 is simply the absence of a
cache.  Reads fault missing fixed-size blocks in from the origin ("
caching only the most frequently accessed contents" — an LRU bound is
supported); :meth:`invalidate` supports the paper's consistency story:
"the cache can be kept consistent with any updates performed to its
contents at any of the remote sources."

On top of the paper-faithful synchronous core sit two pipelined tiers
that exploit a multiplexed transport (:mod:`repro.core.channel`):

* **adaptive sequential read-ahead** — when reads run sequentially, the
  cache issues prefetch *windows* (contiguous multi-block spans) as
  in-flight fetches via ``fetch_window``; the window doubles on
  confirmed sequentiality up to ``readahead`` blocks and collapses on a
  seek.  Every in-flight span is registered per block (single-flight),
  so concurrent readers never fetch the same block twice, and each
  fetch is stamped with the cache generation so an
  :meth:`invalidate` racing a pending fetch can never reinstall stale
  bytes.
* **write-behind with coalescing** — with ``writeback=True``, writes
  land in the store and accumulate as merged dirty byte extents; the
  buffer flushes as batched contiguous extents (via ``push_extents``
  when the origin supports a vectored push) once ``writeback_bytes``
  of data is dirty, on :meth:`flush`, and before a dirty block may be
  evicted.  The default remains write-through — the paper-faithful
  Figure 5 behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.core.datapart import DataPart
from repro.core.telemetry import TELEMETRY
from repro.errors import CacheError

__all__ = ["BlockCache", "CACHE_PATHS"]

#: The paper's cache-path names, as accepted by the remote-file sentinel.
CACHE_PATHS = ("none", "disk", "memory")

#: First window issued once sequentiality is confirmed (blocks).
MIN_WINDOW = 2


class _WindowFetch:
    """One in-flight contiguous fetch covering one or more blocks.

    The resolver is run by the *first* consumer that needs a covered
    block; later consumers wait for that result (single-flight).  The
    fetch remembers the cache generation it was issued under, so stale
    results are discarded rather than installed (see
    :meth:`BlockCache.invalidate`).
    """

    __slots__ = ("start", "nblocks", "generation", "epoch", "resolver",
                 "_event", "_claim", "_data", "_error")

    def __init__(self, start: int, nblocks: int, generation: int,
                 epoch: int, resolver: Callable[[], bytes]) -> None:
        self.start = start
        self.nblocks = nblocks
        self.generation = generation
        self.epoch = epoch
        self.resolver = resolver
        self._event = threading.Event()
        self._claim = threading.Lock()
        self._data = b""
        self._error: BaseException | None = None

    @property
    def blocks(self) -> range:
        return range(self.start, self.start + self.nblocks)

    def result(self) -> bytes:
        """Run the resolver once; everyone gets the same outcome."""
        claimed = self._claim.acquire(blocking=False)
        if claimed and not self._event.is_set():
            try:
                self._data = self.resolver()
            except BaseException as exc:
                self._error = exc
            finally:
                self._event.set()
        else:
            self._event.wait()
        if self._error is not None:
            raise self._error
        return self._data


class BlockCache:
    """A block cache in front of a remote origin.

    Required plumbing: ``fetch(offset, size) -> bytes`` and
    ``push(offset, data) -> int`` against the origin, plus the local
    *store*.  Optional pipelining plumbing:

    * ``fetch_window(offset, size) -> resolver`` — start one contiguous
      fetch and return a zero-argument callable producing its bytes.
      When the transport underneath can pipeline (a multiplexed
      channel), the fetch is genuinely in flight while the application
      keeps issuing operations; when it cannot, the resolver simply
      batches many blocks into one origin round trip.
    * ``push_extents(extents) -> None`` — write a batch of
      ``(offset, bytes)`` extents in one origin exchange.

    ``readahead`` is the maximum prefetch window in blocks (0 disables
    read-ahead); ``writeback=True`` buffers writes and flushes them as
    coalesced extents (write-through otherwise).
    """

    def __init__(self, fetch: Callable[[int, int], bytes],
                 push: Callable[[int, bytes], int],
                 store: DataPart, block_size: int = 4096,
                 max_blocks: int | None = None, *,
                 readahead: int = 0,
                 writeback: bool = False,
                 writeback_bytes: int = 256 * 1024,
                 fetch_window: Callable[[int, int],
                                        Callable[[], bytes]] | None = None,
                 push_extents: Callable[[list[tuple[int, bytes]]],
                                        Any] | None = None,
                 coherence: Any = None) -> None:
        if block_size <= 0:
            raise CacheError(f"block size must be positive, got {block_size}")
        if max_blocks is not None and max_blocks <= 0:
            raise CacheError(f"max_blocks must be positive, got {max_blocks}")
        if readahead < 0:
            raise CacheError(f"readahead must be >= 0, got {readahead}")
        if writeback and writeback_bytes <= 0:
            raise CacheError(
                f"writeback_bytes must be positive, got {writeback_bytes}")
        self._fetch = fetch
        self._push = push
        self._store = store
        self.block_size = block_size
        self.max_blocks = max_blocks
        self.readahead = readahead
        self.writeback = writeback
        self.writeback_bytes = writeback_bytes
        self._fetch_window = fetch_window
        self._push_extents = push_extents
        #: Optional :class:`~repro.core.fanout.CoherenceDomain`: origin
        #: fills route through its single-flight table, so concurrent
        #: misses for one window from different opens of the same
        #: container collapse onto one origin fetch.
        self._coherence = coherence
        #: LRU of valid block indices (most recently used last).
        self._valid: OrderedDict[int, None] = OrderedDict()
        #: Origin size discovered from a short block fetch, if any.
        self._known_end: int | None = None
        #: block -> in-flight fetch covering it (single-flight registry).
        self._inflight: dict[int, _WindowFetch] = {}
        #: Demand fetches issued ahead of their resolve by _fault_range
        #: (pipelining, not prefetch): counted as misses, and a failure
        #: surfaces to the faulting reader instead of being swallowed.
        self._demand_issued: "set[_WindowFetch]" = set()
        #: Bumped by invalidate(); in-flight fetches from older
        #: generations must never install their bytes.
        self._generation = 0
        #: Bumped by every write; a fetch issued before a write may
        #: still install clean bytes, but its (possibly pre-extension)
        #: short reads must not tighten the known origin end.
        self._write_epoch = 0
        #: Merged, sorted dirty byte intervals [start, end) (write-behind).
        self._dirty: list[list[int]] = []
        #: Sequential-read detector state.
        self._seq_end: int | None = None
        self._window = 0
        self._prefetch_end = 0
        self._lock = threading.RLock()
        # counters
        self.hits = 0
        self.misses = 0
        self.prefetch_issued = 0
        self.prefetch_used = 0
        self.coalesced_flushes = 0
        self.dirty_high_water = 0
        self.flush_failures = 0
        # Re-home the counters under telemetry.snapshot() (weakly —
        # the entry disappears with this cache).
        TELEMETRY.register_collector("cache", "cache", self, BlockCache.stats)

    # -- block bookkeeping ----------------------------------------------------------

    def _touch(self, block: int) -> None:
        self._valid.move_to_end(block)

    def _admit(self, block: int) -> None:
        self._valid[block] = None
        self._valid.move_to_end(block)
        if self.max_blocks is not None:
            while len(self._valid) > self.max_blocks:
                victim = next(iter(self._valid))
                if self._block_dirty(victim):
                    # Never drop buffered writes: a dirty block leaves
                    # the cache only after its bytes reached the origin.
                    self._flush_locked(cause="evict")
                self._valid.popitem(last=False)

    def _block_dirty(self, block: int) -> bool:
        start = block * self.block_size
        end = start + self.block_size
        return any(s < end and e > start for s, e in self._dirty)

    def _note_end(self, offset: int, requested: int, received: int) -> None:
        """A short fetch bounds the origin size from above; keep the
        tightest bound seen (fetches past EOF return nothing and would
        otherwise overestimate)."""
        if received < requested:
            end = offset + received
            if self._known_end is None or end < self._known_end:
                self._known_end = end

    def _effective_end(self) -> int | None:
        """The readable end: origin bound extended by buffered writes."""
        if self._known_end is None:
            return None
        if self._dirty:
            return max(self._known_end, self._dirty[-1][1])
        return self._known_end

    # -- dirty-extent bookkeeping (write-behind) -----------------------------------

    def _mark_dirty(self, start: int, end: int) -> None:
        merged: list[list[int]] = []
        placed = False
        for s, e in self._dirty:
            if e < start or s > end:
                if s > end and not placed:
                    merged.append([start, end])
                    placed = True
                merged.append([s, e])
            else:
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append([start, end])
            merged.sort()
        self._dirty = merged
        high = self.dirty_bytes
        if high > self.dirty_high_water:
            self.dirty_high_water = high

    def _clean_subranges(self, start: int, end: int) -> list[tuple[int, int]]:
        """The parts of [start, end) NOT covered by dirty extents."""
        spans: list[tuple[int, int]] = []
        cursor = start
        for s, e in self._dirty:
            if e <= cursor:
                continue
            if s >= end:
                break
            if s > cursor:
                spans.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            if cursor >= end:
                break
        if cursor < end:
            spans.append((cursor, end))
        return spans

    @property
    def dirty_bytes(self) -> int:
        return sum(e - s for s, e in self._dirty)

    @property
    def dirty_end(self) -> int:
        """One past the last buffered-dirty byte (0 when clean)."""
        return self._dirty[-1][1] if self._dirty else 0

    # -- fetch planning --------------------------------------------------------------

    def _install(self, fetched: _WindowFetch, data: bytes) -> None:
        """Install one resolved fetch, skipping stale or dirty spans."""
        size = self.block_size
        for index, block in enumerate(fetched.blocks):
            if self._inflight.get(block) is not fetched:
                continue  # superseded: invalidated, re-fetched, written
            del self._inflight[block]
            if fetched.generation != self._generation:
                continue  # stale: an invalidate raced this fetch
            chunk = data[index * size:(index + 1) * size]
            offset = block * size
            if chunk:
                # Buffered writes are newer than anything the origin
                # returned; install only the clean sub-ranges.
                for start, end in self._clean_subranges(offset,
                                                        offset + len(chunk)):
                    self._store.write_at(
                        start, chunk[start - offset:end - offset])
                self._admit(block)
            if fetched.epoch == self._write_epoch:
                # A fetch that predates a write may have seen the file
                # before the write extended it; only a current-epoch
                # short read is evidence about the origin's end.
                self._note_end(offset, size, len(chunk))

    def _resolve(self, fetched: _WindowFetch, *, used: bool) -> None:
        """Wait for an in-flight fetch and install it.

        Pipelining comes from issue time (``fetch_window`` starts the
        transfer when the window is issued), not from resolution — so
        holding the cache lock here costs nothing.  A failed *prefetch*
        is silently dropped (the blocks simply stay missing and a later
        demand read retries), so a prefetch that died with the link
        cannot poison reads issued after the origin healed.
        """
        if TELEMETRY.tracing and TELEMETRY.current() is not None:
            # The cause label tells the trace why these blocks filled:
            # a demand miss, or a read-ahead window being consumed.
            with TELEMETRY.span("cache.fill", attrs={
                    "cause": "prefetch" if used else "demand",
                    "blocks": fetched.nblocks}):
                self._resolve_fetch(fetched, used=used)
            return
        self._resolve_fetch(fetched, used=used)

    def _resolve_fetch(self, fetched: _WindowFetch, *, used: bool) -> None:
        try:
            data = fetched.result()
        except Exception:
            for block in fetched.blocks:
                if self._inflight.get(block) is fetched:
                    del self._inflight[block]
            if used:
                return  # caller re-examines and demand-fetches afresh
            raise
        if used:
            self.prefetch_used += 1
        self._install(fetched, data)

    def _issue(self, start_block: int, nblocks: int) -> _WindowFetch:
        """Register one in-flight window fetch (caller holds the lock)."""
        offset = start_block * self.block_size
        size = nblocks * self.block_size
        if self._fetch_window is not None:
            start = lambda: self._fetch_window(offset, size)  # noqa: E731
        else:
            fetch = self._fetch

            def start(fetch=fetch, offset=offset, size=size):
                return lambda: fetch(offset, size)
        if self._coherence is not None:
            # Single-flight across opens: only the first member to miss
            # this window actually issues the origin request; peers get
            # a joining resolver from the domain's fill table.
            resolver = self._coherence.fill((offset, size), start)
        else:
            resolver = start()
        fetched = _WindowFetch(start_block, nblocks, self._generation,
                               self._write_epoch, resolver)
        for block in fetched.blocks:
            self._inflight[block] = fetched
        return fetched

    def _missing_runs(self, first: int, last: int) -> list[tuple[int, int]]:
        """Contiguous runs of blocks in [first, last] that are neither
        valid nor in flight (caller holds the lock)."""
        runs: list[tuple[int, int]] = []
        block = first
        while block <= last:
            if block in self._valid or block in self._inflight:
                block += 1
                continue
            start = block
            while (block <= last and block not in self._valid
                   and block not in self._inflight):
                block += 1
            runs.append((start, block - start))
        return runs

    def _note_access(self, offset: int) -> bool:
        """Update the sequential detector; returns True when sequential."""
        sequential = (self._seq_end is not None
                      and abs(offset - self._seq_end) <= self.block_size)
        if sequential:
            if self._window == 0:
                self._window = min(MIN_WINDOW, self.readahead)
        else:
            self._window = 0
            self._prefetch_end = 0
        return sequential

    def _issue_readahead(self, last_block: int) -> None:
        """Prefetch the next window past *last_block* (lock held).

        A fresh window is issued once the reader is within half a window
        of the last prefetch horizon, so a steady sequential scan keeps
        one window in flight ahead of the demand point instead of
        re-issuing per read.
        """
        window = self._window
        if window <= 0 or self.readahead <= 0:
            return
        target = last_block + 1 + window
        start = max(self._prefetch_end, last_block + 1)
        if start > last_block + 1 and target - start < max(1, window // 2):
            return  # enough already in flight
        known = self._known_end
        for run_start, run_len in self._missing_runs(start, target - 1):
            if known is not None and run_start * self.block_size >= known:
                break
            try:
                self._issue(run_start, run_len)
            except Exception:
                return  # issue-time transport failure: skip this round
            self.prefetch_issued += run_len
        self._prefetch_end = target
        self._window = min(window * 2, self.readahead)

    # -- data plane -------------------------------------------------------------------

    def _fault_range(self, offset: int, size: int) -> None:
        """Make every block covering ``[offset, offset+size)`` resident.

        Lock held.  Sequential access triggers window read-ahead;
        blocks already in flight are awaited rather than re-fetched.
        """
        bs = self.block_size
        first = offset // bs
        last = (offset + size - 1) // bs
        sequential = self._note_access(offset)
        self._seq_end = offset + size
        # Issue every missing run of the range up-front, before
        # resolving any of them: a range with several holes (blocks
        # made resident by scattered writes between them) then has all
        # its fetches in flight at once — over the batching transport
        # they coalesce into one multi-op frame and one host wakeup
        # instead of paying one synchronous round trip per hole.
        end = self._effective_end()
        for run_start, run_len in self._missing_runs(first, last):
            run_end_byte = (run_start + run_len) * bs
            if end is not None and (run_start * bs >= end
                                    or run_end_byte > end):
                # Leave end-straddling runs to the walk below, which
                # re-checks the (possibly shrinking) origin end per
                # block — pre-issuing past it would fetch dead bytes.
                break
            try:
                self._demand_issued.add(self._issue(run_start, run_len))
            except Exception:
                break  # transport hiccup: the walk retries synchronously
        block = first
        while block <= last:
            end = self._effective_end()
            if end is not None and block * bs >= end:
                break  # past the origin's known end; nothing to fetch
            if block in self._valid:
                self.hits += 1
                self._touch(block)
                block += 1
                continue
            pending = self._inflight.get(block)
            if pending is not None:
                # A pre-issued demand fetch is still a miss (and its
                # failure must surface here); only true read-ahead
                # counts as prefetch.
                demand = pending in self._demand_issued
                if demand:
                    self._demand_issued.discard(pending)
                    self.misses += pending.nblocks
                    self._resolve(pending, used=False)
                    # Advance past the run, exactly like the demand
                    # fetch below — these blocks are misses, not hits.
                    block = pending.start + pending.nblocks
                    continue
                self._resolve(pending, used=True)
                continue  # re-examine: installed, or now missing
            run = block
            while (run <= last and run not in self._valid
                   and run not in self._inflight):
                run += 1
            nblocks = run - block
            self.misses += nblocks
            self._resolve(self._issue(block, nblocks), used=False)
            block = run
        if sequential:
            self._issue_readahead(last)

    def read(self, offset: int, size: int) -> bytes:
        """Read through the cache, faulting in whole blocks as needed."""
        if size <= 0 or offset < 0:
            return b""
        with self._lock:
            self._fault_range(offset, size)
            data = self._store.read_at(offset, size)
            end = self._effective_end()
            if end is not None and offset + len(data) > end:
                data = data[:max(0, end - offset)]
            return data

    def read_into(self, offset: int, buffer: memoryview) -> int:
        """Read through the cache straight into *buffer*.

        The shared-memory data plane's sibling of :meth:`read`: once the
        covering blocks are resident, the store copies directly into the
        caller's buffer (typically an shm slot) with no intermediate
        ``bytes``.  Returns the byte count.
        """
        size = len(buffer)
        if size <= 0 or offset < 0:
            return 0
        with self._lock:
            self._fault_range(offset, size)
            count = self._store.read_at_into(offset, buffer)
            end = self._effective_end()
            if end is not None and offset + count > end:
                count = max(0, end - offset)
            return count

    def write(self, offset: int, data: bytes) -> int:
        """Write through (default) or buffer for write-behind."""
        if self.writeback and data:
            return self._write_behind(offset, data)
        written = self._push(offset, data)
        with self._lock:
            self._write_local(offset, data)
        return written

    def _write_local(self, offset: int, data: bytes) -> None:
        """Update cached state for newly written bytes (lock held)."""
        end = offset + len(data)
        if self._known_end is not None and end > self._known_end:
            self._known_end = end
        bs = self.block_size
        first = offset // bs
        last = max(first, (end - 1) // bs) if data else first
        for block in range(first, last + 1):
            if block in self._valid:
                self._touch(block)
        if not data:
            return
        self._write_epoch += 1
        self._store.write_at(offset, data)
        for block in range(first, last + 1):
            # Any overlapped in-flight fetch now carries bytes older
            # than what we hold for this block; disarm its install.
            self._inflight.pop(block, None)
            # Blocks fully covered by this write become valid even if
            # they were never fetched.
            if block not in self._valid and offset <= block * bs \
                    and end >= (block + 1) * bs:
                self._admit(block)

    def _write_behind(self, offset: int, data: bytes) -> int:
        with self._lock:
            self._write_local(offset, data)
            self._mark_dirty(offset, offset + len(data))
            needs_flush = self.dirty_bytes >= self.writeback_bytes
        if needs_flush:
            with self._lock:
                self._flush_locked(cause="threshold")
        return len(data)

    def flush(self) -> None:
        """Push all buffered dirty extents to the origin (coalesced)."""
        with self._lock:
            self._flush_locked(cause="explicit")

    def _flush_locked(self, cause: str = "explicit") -> None:
        if not self._dirty:
            return
        if TELEMETRY.tracing and TELEMETRY.current() is not None:
            # cause labels why the buffer drained: an explicit flush,
            # the write-behind threshold, or a dirty-block eviction.
            with TELEMETRY.span("cache.flush", attrs={
                    "cause": cause, "bytes": self.dirty_bytes}):
                self._flush_extents()
            return
        self._flush_extents()

    def _flush_extents(self) -> None:
        extents = [(s, self._store.read_at(s, e - s)) for s, e in self._dirty]
        staged, self._dirty = self._dirty, []
        bs = self.block_size
        for s, e in staged:
            # Clearing the dirty intervals widens what an in-flight
            # fetch may install; a fetch issued before this flush could
            # then overwrite the just-flushed bytes with its pre-flush
            # snapshot.  Disarm any fetch overlapping the flushed range.
            for block in range(s // bs, (e - 1) // bs + 1):
                self._inflight.pop(block, None)
        try:
            if self._push_extents is not None:
                self._push_extents(extents)
            else:
                for extent_offset, extent_data in extents:
                    self._push(extent_offset, extent_data)
        except BaseException:
            # The origin may hold a prefix; keep everything buffered so
            # a later flush (or close) retries — no silent loss.  The
            # registry counter outlives this cache object, so evidence
            # bundles exported after close still carry the failure.
            self.flush_failures += 1
            TELEMETRY.metrics.counter("cache.flush_failures").inc()
            for s, e in staged:
                self._mark_dirty(s, e)
            raise
        # Buffered writes past the origin's end were extending
        # _effective_end() via the dirty list; now that they are origin
        # content, the extension must survive the dirty list clearing.
        if self._known_end is not None and staged[-1][1] > self._known_end:
            self._known_end = staged[-1][1]
        self.coalesced_flushes += 1

    # -- consistency -------------------------------------------------------------------

    def invalidate(self, offset: int | None = None,
                   size: int | None = None) -> None:
        """Drop cached blocks (all, or those overlapping a byte range).

        In-flight fetches covering the range are disarmed: the
        generation stamp guarantees their (possibly stale) bytes are
        discarded on arrival instead of reinstalled.  Buffered
        write-behind data is *not* dropped — it is newer than anything
        the origin holds; call :meth:`flush` first to push it out.
        """
        with self._lock:
            self._generation += 1
            if offset is None:
                self._valid.clear()
                self._inflight.clear()
                self._demand_issued.clear()
                self._known_end = None
                self._prefetch_end = 0
                return
            span = self.block_size if size is None else max(size, 1)
            first = offset // self.block_size
            last = (offset + span - 1) // self.block_size
            for block in range(first, last + 1):
                self._valid.pop(block, None)
                self._inflight.pop(block, None)
            self._known_end = None

    def install_published(self, offset: int, data: bytes,
                          total_size: int | None = None) -> None:
        """Push-install bytes published by a peer open of this container.

        The fan-out alternative to :meth:`invalidate`: instead of
        dropping the covered blocks and re-fetching from origin, the
        publisher's bytes land directly in the store, so this cache's
        read lease can stay valid across the remote write.  Buffered
        local write-behind data is newer than any publication and is
        never overwritten; in-flight fetches overlapping the range are
        disarmed (their bytes predate the publish).  *total_size*, when
        given, is the authoritative post-publish file size.
        """
        with self._lock:
            bs = self.block_size
            end = offset + len(data)
            if data:
                self._write_epoch += 1
                first = offset // bs
                last = (end - 1) // bs
                for block in range(first, last + 1):
                    self._inflight.pop(block, None)
                for start, stop in self._clean_subranges(offset, end):
                    self._store.write_at(start, data[start - offset:
                                                    stop - offset])
                for block in range(first, last + 1):
                    if offset <= block * bs and end >= (block + 1) * bs:
                        self._admit(block)
                if self._known_end is not None and end > self._known_end:
                    self._known_end = end
            if total_size is not None:
                # Authoritative post-publish size (dirty write-behind
                # extents still extend the effective end past it).
                total_size = int(total_size)
                self._known_end = total_size
                for block in [b for b in self._valid
                              if b * bs >= total_size]:
                    self._valid.pop(block)
                for block in [b for b in self._inflight
                              if b * bs >= total_size]:
                    self._inflight.pop(block, None)

    def stats(self) -> dict[str, Any]:
        """A plain-data snapshot of every cache counter."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "prefetch_issued": self.prefetch_issued,
                "prefetch_used": self.prefetch_used,
                "coalesced_flushes": self.coalesced_flushes,
                "dirty_high_water": self.dirty_high_water,
                "flush_failures": self.flush_failures,
                "dirty_bytes": self.dirty_bytes,
                "blocks": len(self._valid),
                "inflight_blocks": len(self._inflight),
                "window": self._window,
                "writeback": self.writeback,
            }

    @property
    def cached_blocks(self) -> int:
        return len(self._valid)
