"""Sentinel-side caching — the three critical paths of Figure 5.

The paper's evaluation distinguishes three sentinel configurations:

* **path 1, no cache** — every application operation becomes a remote
  exchange;
* **path 2, on-disk cache** — "the sentinel interacts with its local
  file rather than contacting the remote service", i.e. the data part
  holds the cached bytes;
* **path 3, in-memory cache** — "the cache resides in the sentinel's
  memory rather than on disk".

:class:`BlockCache` implements paths 2 and 3 over any
:class:`~repro.core.datapart.DataPart` store (container-backed = disk,
:class:`MemoryDataPart` = memory); path 1 is simply the absence of a
cache.  Reads fault missing fixed-size blocks in from the origin ("
caching only the most frequently accessed contents" — an LRU bound is
supported); writes are pushed through to the origin and update any
cached block they overlap.  :meth:`invalidate` supports the paper's
consistency story: "the cache can be kept consistent with any updates
performed to its contents at any of the remote sources."
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.core.datapart import DataPart
from repro.errors import CacheError

__all__ = ["BlockCache", "CACHE_PATHS"]

#: The paper's cache-path names, as accepted by the remote-file sentinel.
CACHE_PATHS = ("none", "disk", "memory")


class BlockCache:
    """A write-through block cache in front of a remote origin."""

    def __init__(self, fetch: Callable[[int, int], bytes],
                 push: Callable[[int, bytes], int],
                 store: DataPart, block_size: int = 4096,
                 max_blocks: int | None = None) -> None:
        if block_size <= 0:
            raise CacheError(f"block size must be positive, got {block_size}")
        if max_blocks is not None and max_blocks <= 0:
            raise CacheError(f"max_blocks must be positive, got {max_blocks}")
        self._fetch = fetch
        self._push = push
        self._store = store
        self.block_size = block_size
        self.max_blocks = max_blocks
        #: LRU of valid block indices (most recently used last).
        self._valid: OrderedDict[int, None] = OrderedDict()
        #: Origin size discovered from a short block fetch, if any.
        self._known_end: int | None = None
        self.hits = 0
        self.misses = 0

    # -- block bookkeeping ----------------------------------------------------------

    def _touch(self, block: int) -> None:
        self._valid.move_to_end(block)

    def _admit(self, block: int) -> None:
        self._valid[block] = None
        self._valid.move_to_end(block)
        if self.max_blocks is not None:
            while len(self._valid) > self.max_blocks:
                self._valid.popitem(last=False)

    def _ensure_block(self, block: int) -> None:
        if block in self._valid:
            self.hits += 1
            self._touch(block)
            return
        self.misses += 1
        offset = block * self.block_size
        data = self._fetch(offset, self.block_size)
        if data:
            self._store.write_at(offset, data)
        if len(data) < self.block_size:
            # A short fetch bounds the origin size from above; keep the
            # tightest bound seen (fetches past EOF return nothing and
            # would otherwise overestimate).
            end = offset + len(data)
            if self._known_end is None or end < self._known_end:
                self._known_end = end
        self._admit(block)

    # -- data plane -------------------------------------------------------------------

    def read(self, offset: int, size: int) -> bytes:
        """Read through the cache, faulting in whole blocks as needed."""
        if size <= 0 or offset < 0:
            return b""
        first = offset // self.block_size
        last = (offset + size - 1) // self.block_size
        for block in range(first, last + 1):
            block_start = block * self.block_size
            if self._known_end is not None and block_start >= self._known_end:
                break  # past the origin's known end; nothing to fetch
            self._ensure_block(block)
        data = self._store.read_at(offset, size)
        if self._known_end is not None and offset + len(data) > self._known_end:
            data = data[:max(0, self._known_end - offset)]
        return data

    def write(self, offset: int, data: bytes) -> int:
        """Write through to the origin, updating overlapped cached blocks."""
        written = self._push(offset, data)
        end = offset + len(data)
        if self._known_end is not None and end > self._known_end:
            self._known_end = end
        first = offset // self.block_size
        last = max(first, (end - 1) // self.block_size) if data else first
        for block in range(first, last + 1):
            if block in self._valid:
                self._touch(block)
        if data:
            self._store.write_at(offset, data)
            # Blocks fully covered by this write become valid even if
            # they were never fetched.
            for block in range(first, last + 1):
                block_start = block * self.block_size
                block_end = block_start + self.block_size
                if block not in self._valid and \
                        offset <= block_start and end >= block_end:
                    self._admit(block)
        return written

    # -- consistency -------------------------------------------------------------------

    def invalidate(self, offset: int | None = None,
                   size: int | None = None) -> None:
        """Drop cached blocks (all, or those overlapping a byte range)."""
        if offset is None:
            self._valid.clear()
            self._known_end = None
            return
        span = self.block_size if size is None else max(size, 1)
        first = offset // self.block_size
        last = (offset + span - 1) // self.block_size
        for block in range(first, last + 1):
            self._valid.pop(block, None)
        self._known_end = None

    @property
    def cached_blocks(self) -> int:
        return len(self._valid)
