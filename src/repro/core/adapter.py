"""Automatic translation of stream sentinels to random-access strategies.

The paper's §5 closes with: "We are currently exploring automatic
translation strategies for taking an active file written for a
process-based implementation and producing the DLLs necessary in the
DLL-based strategies."  This module is that translation, implemented:

:class:`StreamAdapterSentinel` wraps any
:class:`~repro.core.sentinel.StreamSentinel` — a sentinel written purely
in terms of the §4.1 sequential model (``generate``/``consume``) — and
presents the full offset-addressed interface the control-channel,
thread and inproc strategies require:

* **reads**: the wrapped generator is pulled lazily and spooled into a
  buffer, so random reads at any offset are served once the stream has
  produced that far (exactly what a pipe reader could never do);
* **writes**: offset writes are accepted when they continue the current
  sequential frontier (the only order a stream sentinel can absorb) and
  rejected otherwise with a clear error;
* **size**: the number of bytes generated so far, or the full stream
  length if it has ended.

Usage — either wrap programmatically::

    spec = SentinelSpec("repro.core.adapter:StreamAdapterSentinel",
                        {"target": "mypkg:MyStreamSentinel",
                         "params": {...}})

or call :func:`adapt_spec` to translate an existing spec.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.sentinel import Sentinel, SentinelContext, StreamSentinel
from repro.core.spec import SentinelSpec
from repro.errors import SpecError, UnsupportedOperationError
from repro.util.bytesbuf import ByteBuffer

__all__ = ["StreamAdapterSentinel", "adapt_spec"]


def adapt_spec(spec: SentinelSpec) -> SentinelSpec:
    """Translate a stream-sentinel spec into an adapted spec.

    The returned spec instantiates the original sentinel inside a
    :class:`StreamAdapterSentinel`, making it usable under every
    strategy.
    """
    return SentinelSpec(
        target="repro.core.adapter:StreamAdapterSentinel",
        params={"target": spec.target, "params": dict(spec.params)},
    )


class StreamAdapterSentinel(Sentinel):
    """Offset-addressed facade over a sequential stream sentinel.

    Params: ``target`` (the wrapped sentinel's ``module:factory``),
    ``params`` (its parameters), ``spool_limit`` (optional cap on how
    many bytes of generated stream may be buffered; reads beyond raise
    instead of exhausting memory on endless generators).
    """

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        target = self.params.get("target")
        if not target:
            raise SpecError("stream adapter requires a 'target' param")
        inner_spec = SentinelSpec(target=target,
                                  params=self.params.get("params") or {})
        self.inner = inner_spec.instantiate()
        if not isinstance(self.inner, StreamSentinel):
            raise SpecError(
                f"{target!r} is not a StreamSentinel; the adapter is only "
                "needed for stream-only sentinels"
            )
        self.spool_limit = int(self.params.get("spool_limit", 64 * 1024 * 1024))
        self._spool = ByteBuffer()
        self._generator: Iterator[bytes] | None = None
        self._stream_ended = False
        self._write_frontier = 0

    # -- lifecycle ---------------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self.inner.on_open(ctx)
        self._generator = iter(self.inner.generate(ctx))

    def on_close(self, ctx: SentinelContext) -> None:
        self.inner.on_close(ctx)

    # -- the translation ------------------------------------------------------------

    def _spool_until(self, target: int) -> None:
        """Pull the wrapped generator until the spool covers *target*."""
        if target > self.spool_limit:
            raise UnsupportedOperationError(
                f"read at {target} exceeds the adapter's spool limit "
                f"({self.spool_limit} bytes); raise 'spool_limit' if the "
                "stream really is that long"
            )
        while not self._stream_ended and self._spool.size < target:
            try:
                chunk = next(self._generator)
            except StopIteration:
                self._stream_ended = True
                return
            self._spool.append(chunk)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        self._spool_until(offset + size)
        return self._spool.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        if offset != self._write_frontier:
            raise UnsupportedOperationError(
                f"stream sentinels absorb writes sequentially; got offset "
                f"{offset}, expected {self._write_frontier}"
            )
        written = self.inner.consume(ctx, data, offset)
        self._write_frontier += written
        return written

    def on_size(self, ctx: SentinelContext) -> int:
        if self._stream_ended:
            return self._spool.size
        if self.inner.endless:
            from repro.sentinels.generate import UNBOUNDED_SIZE

            return UNBOUNDED_SIZE
        # finite but not yet exhausted: spool to the end to answer
        self._spool_until(self.spool_limit)
        if not self._stream_ended:
            raise UnsupportedOperationError(
                "stream longer than the spool limit; size unknowable"
            )
        return self._spool.size

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        raise UnsupportedOperationError(
            "stream sentinels cannot truncate; reopen the file instead"
        )

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes) -> tuple[dict[str, Any], bytes]:
        if op == "adapter_stats":
            return {"spooled": self._spool.size,
                    "stream_ended": self._stream_ended,
                    "write_frontier": self._write_frontier}, b""
        return self.inner.on_control(ctx, op, args, payload)
