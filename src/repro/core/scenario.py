"""Declarative chaos scenarios: timed injections + asserted invariants.

PR 3 made transport faults *schedulable*; this module makes whole chaos
experiments *declarative*.  A scenario file describes, without code:

* a **workload** — one of the registered drivers below (sequential
  reads, seeded writes, a read swarm on a pooled host, local writes);
* a **timeline** — seeded injections, each ``{at, point, action,
  target, params}``, covering both the transport fault plane
  (:mod:`repro.core.faults`) and the resource faults
  (:mod:`repro.core.resourcefaults`) delivered to live hosts over the
  ``chaos`` control op;
* **invariants** — ``data-identical``, ``no-hung-futures``,
  ``recovers-within``, and counter-threshold expressions evaluated
  against the telemetry snapshot delta (e.g.
  ``"faults.injected.send.kill >= 1"``).

Scenario files are a small YAML subset parsed by the dependency-free
:mod:`repro.util.yamlite` loader (shared with the doctor's declarative
checks); JSON documents are accepted as-is.  The subset: two-space
indentation, ``key: value`` mappings, ``- item`` sequences (including
sequences of mappings), scalars (int/float/bool/null/quoted strings),
and ``#`` comments.

Safety rails are built into the runner, not bolted on:

* **dry-run** takes a structurally different path — it lints and
  resolves the timeline but never constructs a workload, a fault
  plane, or a host, so zero injections is a property of the code
  shape, not of flag checks sprinkled through it;
* the **linter** refuses destructive actions (kill, eof, corrupt,
  partition, every resource fault) with unbounded ``times`` or
  probabilistic ``p`` unless the caller is an in-repo test
  (``allow_unbounded=True`` — the CLI never passes it), and caps the
  total scheduled injection duration at
  :data:`~repro.core.policy.CHAOS_MAX_TOTAL_INJECTION_S`;
* pid-touching is delegated to
  :func:`repro.core.resourcefaults.guarded_kill`, which refuses any
  pid not owned by a live :class:`~repro.core.runner.SentinelHost`.

The report's ``fingerprint`` is the deterministic core — resolved
plan, invariant verdicts, pass/fail — with wall-clock measurements
segregated under ``timing``, so "same seed, same report" is a
comparison of fingerprints.
"""

from __future__ import annotations

import os
import random
import re
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import policy
from repro.core.faults import FaultPlane, _POINTS
from repro.core.telemetry import TELEMETRY, MetricsRegistry
from repro.errors import DiskFullError, ScenarioError
from repro.util import yamlite

__all__ = [
    "Injection",
    "Invariant",
    "Scenario",
    "load_scenario",
    "load_scenario_file",
    "parse_scenario",
    "lint_scenario",
    "ScenarioRunner",
    "render_report",
    "WORKLOADS",
    "DESTRUCTIVE_ACTIONS",
]

#: Valid values for an injection's ``point`` — the transport plane's
#: points plus ``resource`` (delivered via the ``chaos`` control op).
SCENARIO_POINTS = dict(_POINTS)
SCENARIO_POINTS["resource"] = ("cpu-hog", "memory-pressure",
                               "fd-exhaustion", "disk-full")

#: Actions the linter treats as destructive: these may not carry an
#: unbounded ``times`` or a probabilistic ``p`` outside of tests.
DESTRUCTIVE_ACTIONS = frozenset(
    ("kill", "eof", "corrupt", "partition") + SCENARIO_POINTS["resource"])

_TARGETS = ("host", "network", "pool")

_COUNTER_EXPR = re.compile(
    r"^(?P<name>[\w.\-]+)\s*(?P<op>>=|<=|==|!=|>|<)\s*"
    r"(?P<num>-?\d+(?:\.\d+)?)$")

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


# ---------------------------------------------------------------------------
# Loading (the YAML-subset parser itself lives in repro.util.yamlite)
# ---------------------------------------------------------------------------

def load_scenario(text: str) -> dict[str, Any]:
    """Parse scenario *text* (YAML subset, or JSON if it starts ``{``)."""
    try:
        doc = yamlite.loads(text)
    except yamlite.YamliteError as exc:
        raise ScenarioError(str(exc)) from None
    if not isinstance(doc, dict):
        raise ScenarioError("scenario document must be a mapping")
    return doc


def load_scenario_file(path: str) -> "Scenario":
    with open(path, "r", encoding="utf-8") as handle:
        doc = load_scenario(handle.read())
    doc.setdefault("name", os.path.splitext(os.path.basename(path))[0])
    return parse_scenario(doc)


# ---------------------------------------------------------------------------
# Scenario model
# ---------------------------------------------------------------------------

@dataclass
class Injection:
    """One timeline entry: what to inject, where, and when."""

    at: float
    point: str
    action: str
    target: str = "host"
    params: dict[str, Any] = field(default_factory=dict)

    def plan_entry(self) -> dict[str, Any]:
        """The deterministic, fingerprint-stable view of this entry."""
        return {"at": self.at, "point": self.point, "action": self.action,
                "target": self.target,
                "params": {k: self.params[k] for k in sorted(self.params)}}


@dataclass
class Invariant:
    """One asserted property: a named check or a counter expression."""

    name: str
    value: Any = None

    @property
    def label(self) -> str:
        if self.name == "recovers-within":
            return f"recovers-within {self.value}s"
        return self.name


@dataclass
class Scenario:
    """A parsed scenario: workload + timeline + invariants."""

    name: str
    seed: int
    workload: dict[str, Any]
    timeline: list[Injection]
    invariants: list[Invariant]
    description: str = ""


def parse_scenario(doc: dict[str, Any]) -> Scenario:
    """Validate the *shape* of a scenario document (lint checks values)."""
    unknown = set(doc) - {"name", "description", "seed", "workload",
                          "timeline", "invariants"}
    if unknown:
        raise ScenarioError(f"unknown scenario keys: {sorted(unknown)}")
    name = str(doc.get("name") or "unnamed")
    seed = int(doc.get("seed") or 0)
    workload = doc.get("workload")
    if not isinstance(workload, dict) or "kind" not in workload:
        raise ScenarioError("scenario needs a workload mapping with 'kind'")
    timeline_doc = doc.get("timeline") or []
    if not isinstance(timeline_doc, list):
        raise ScenarioError("'timeline' must be a sequence")
    timeline: list[Injection] = []
    for i, entry in enumerate(timeline_doc):
        if not isinstance(entry, dict):
            raise ScenarioError(f"timeline[{i}] must be a mapping")
        missing = {"point", "action"} - set(entry)
        if missing:
            raise ScenarioError(f"timeline[{i}] missing {sorted(missing)}")
        params = entry.get("params") or {}
        if not isinstance(params, dict):
            raise ScenarioError(f"timeline[{i}].params must be a mapping")
        timeline.append(Injection(
            at=float(entry.get("at") or 0.0), point=str(entry["point"]),
            action=str(entry["action"]),
            target=str(entry.get("target") or "host"), params=dict(params)))
    invariants_doc = doc.get("invariants") or []
    if not isinstance(invariants_doc, list):
        raise ScenarioError("'invariants' must be a sequence")
    invariants: list[Invariant] = []
    for i, entry in enumerate(invariants_doc):
        if isinstance(entry, str):
            if entry == "recovers-within":
                invariants.append(Invariant(
                    "recovers-within", policy.CHAOS_RECOVERS_DEFAULT_S))
            elif _COUNTER_EXPR.match(entry):
                invariants.append(Invariant("counter", entry))
            else:
                invariants.append(Invariant(entry))
        elif isinstance(entry, dict) and len(entry) == 1:
            ((key, value),) = entry.items()
            invariants.append(Invariant(str(key), value))
        else:
            raise ScenarioError(
                f"invariants[{i}] must be a string or a one-key mapping")
    return Scenario(name=name, seed=seed, workload=dict(workload),
                    timeline=timeline, invariants=invariants,
                    description=str(doc.get("description") or ""))


# ---------------------------------------------------------------------------
# Linter (the blast-radius gate: run/dry-run refuse scenarios that fail)
# ---------------------------------------------------------------------------

def lint_scenario(scenario: Scenario, *,
                  allow_unbounded: bool = False) -> list[str]:
    """Every problem found, as human-readable strings (empty = clean).

    ``allow_unbounded`` relaxes only the bounded-``times``/``p == 1``
    requirement on destructive actions; it exists for in-repo tests
    that explore probabilistic schedules and is never set by the CLI.
    """
    problems: list[str] = []
    kind = str(scenario.workload.get("kind", ""))
    if kind not in WORKLOADS:
        problems.append(f"workload: unknown kind {kind!r} "
                        f"(expected one of {sorted(WORKLOADS)})")
    total_seconds = 0.0
    for i, inj in enumerate(scenario.timeline):
        where = f"timeline[{i}] ({inj.point}:{inj.action})"
        actions = SCENARIO_POINTS.get(inj.point)
        if actions is None:
            problems.append(f"{where}: unknown point {inj.point!r}")
            continue
        if inj.action not in actions:
            problems.append(f"{where}: action {inj.action!r} is not valid "
                            f"at point {inj.point!r}")
            continue
        if inj.at < 0:
            problems.append(f"{where}: 'at' must be >= 0")
        if inj.target not in _TARGETS:
            problems.append(f"{where}: unknown target {inj.target!r} "
                            f"(expected one of {_TARGETS})")
        seconds = float(inj.params.get("seconds") or 0.0)
        if inj.point == "resource":
            if seconds > policy.CHAOS_MAX_FAULT_S:
                problems.append(
                    f"{where}: seconds={seconds} exceeds the per-fault "
                    f"cap CHAOS_MAX_FAULT_S={policy.CHAOS_MAX_FAULT_S}")
            total_seconds += seconds or 1.0  # resource default duration
        else:
            times = inj.params.get("times", 1)
            p = float(inj.params.get("p", 1.0))
            if inj.action in DESTRUCTIVE_ACTIONS and not allow_unbounded:
                if times is None or int(times) <= 0:
                    problems.append(
                        f"{where}: destructive action needs a bounded "
                        "'times' (unbounded rules are test-only)")
                if p != 1.0:
                    problems.append(
                        f"{where}: destructive action needs p == 1.0 "
                        "(probabilistic rules are test-only)")
            bound = int(times) if times else 1
            total_seconds += seconds * max(1, bound)
    if total_seconds > policy.CHAOS_MAX_TOTAL_INJECTION_S:
        problems.append(
            f"timeline: total scheduled injection duration "
            f"{total_seconds:.1f}s exceeds CHAOS_MAX_TOTAL_INJECTION_S="
            f"{policy.CHAOS_MAX_TOTAL_INJECTION_S}")
    for i, inv in enumerate(scenario.invariants):
        if inv.name == "counter":
            if not _COUNTER_EXPR.match(str(inv.value or "")):
                problems.append(f"invariants[{i}]: unparseable counter "
                                f"expression {inv.value!r}")
        elif inv.name == "recovers-within":
            if not isinstance(inv.value, (int, float)) or inv.value <= 0:
                problems.append(f"invariants[{i}]: recovers-within needs "
                                "a positive number of seconds")
        elif inv.name not in ("data-identical", "no-hung-futures"):
            problems.append(f"invariants[{i}]: unknown invariant "
                            f"{inv.name!r}")
    return problems


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def _content(seed: int, size: int) -> bytes:
    """Position-dependent bytes: misplaced blocks show as corruption."""
    return bytes((7 * i + 13 * seed + (i >> 8)) % 256 for i in range(size))


class Workload:
    """One scenario workload: rig it, drive it, verify it, tear it down.

    Subclasses populate ``self.streams`` (open active files, used for
    the hung-futures check and host targeting) and ``self.network``
    (if the rig has one, used for network-point arming).
    """

    kind = ""

    def __init__(self, params: dict[str, Any], seed: int,
                 dirname: str) -> None:
        self.params = params
        self.seed = seed
        self.dirname = dirname
        self.streams: list[Any] = []
        self.network: Any = None

    def setup(self) -> None:
        raise NotImplementedError

    def drive(self) -> None:
        raise NotImplementedError

    def verify(self) -> tuple[bool, str]:
        raise NotImplementedError

    def hosts(self) -> list[Any]:
        """The live sentinel hosts this workload's sessions run on."""
        out: list[Any] = []
        seen: set[int] = set()
        for stream in self.streams:
            host = getattr(getattr(stream, "session", None), "host", None)
            if host is not None and id(host) not in seen \
                    and getattr(host, "alive", False):
                seen.add(id(host))
                out.append(host)
        return out

    def hung_futures(self) -> int:
        total = 0
        for stream in self.streams:
            session = getattr(stream, "session", None)
            channel = getattr(session, "channel", None)
            if channel is not None and not channel.dead:
                total += int(channel.counters.snapshot()["in_flight"])
        return total

    def teardown(self) -> None:
        for stream in self.streams:
            try:
                stream.close()
            except Exception:
                pass  # best-effort: the rig is being torn down anyway
        self.streams = []

    # -- shared rig helpers --------------------------------------------------

    def _remote_rig(self, content: bytes, **sentinel_params):
        """One simulated origin + one remote active file, per workload."""
        from repro.core import create_active
        from repro.net import Address, FileServer, Network

        self.network = Network()
        server = self.network.bind(Address("files.chaos", 7000), FileServer())
        server.put_file("data/blob.bin", content)
        path = os.path.join(self.dirname, "blob.af")
        create_active(path, "repro.sentinels.remotefile:RemoteFileSentinel",
                      params={"address": "files.chaos:7000",
                              "path": "data/blob.bin",
                              "retry_seed": self.seed, **sentinel_params},
                      meta={"data": "memory"})
        return server, path

    def _read_all(self, stream, chunk: int) -> bytes:
        out = bytearray()
        while True:
            piece = stream.read(chunk)
            if not piece:
                return bytes(out)
            out += piece


class SequentialReadWorkload(Workload):
    """Read a remote file end to end; the bytes must match the origin."""

    kind = "sequential-read"

    def setup(self) -> None:
        from repro.core import open_active
        size = int(self.params.get("bytes", 64 * 1024))
        self.content = _content(self.seed, size)
        _, path = self._remote_rig(
            self.content, cache="memory",
            block_size=int(self.params.get("block_size", 4096)),
            retries=int(self.params.get("retries", 8)))
        self.streams = [open_active(path, "rb", strategy="process-control",
                                    network=self.network)]

    def drive(self) -> None:
        self.result = self._read_all(self.streams[0],
                                     int(self.params.get("chunk", 4096)))

    def verify(self) -> tuple[bool, str]:
        if self.result == self.content:
            return True, f"{len(self.result)} bytes byte-identical"
        return False, (f"read {len(self.result)} bytes, "
                       f"expected {len(self.content)}")


class SeededWriteWorkload(Workload):
    """Seeded random writes to a remote file; the origin must converge."""

    kind = "seeded-write"

    def setup(self) -> None:
        from repro.core import open_active
        size = int(self.params.get("bytes", 8 * 1024))
        blank = bytes(size)
        self.expected = bytearray(blank)
        sentinel: dict[str, Any] = {
            "cache": "none", "retries": int(self.params.get("retries", 6))}
        if self.params.get("writeback"):
            sentinel.update(cache="memory", queue_writes=True,
                            writeback=True)
        self.server, path = self._remote_rig(blank, **sentinel)
        self.streams = [open_active(path, "r+b", strategy="process-control",
                                    network=self.network)]

    def drive(self) -> None:
        stream = self.streams[0]
        rng = random.Random(self.seed)
        chunk = int(self.params.get("chunk", 128))
        size = len(self.expected)
        for _ in range(int(self.params.get("writes", 16))):
            offset = rng.randrange(0, max(1, size - chunk))
            data = bytes(rng.randrange(256) for _ in range(chunk))
            stream.seek(offset)
            stream.write(data)
            self.expected[offset:offset + chunk] = data
        stream.flush()

    def verify(self) -> tuple[bool, str]:
        got = self.server.get_file("data/blob.bin")
        if got == bytes(self.expected):
            return True, f"origin converged on {len(got)} bytes"
        return False, "origin bytes diverged from the application's writes"


class SwarmReadWorkload(Workload):
    """N concurrent opens of one local container on the pooled host."""

    kind = "swarm-read"

    def setup(self) -> None:
        from repro.core import create_active, open_active
        size = int(self.params.get("bytes", 16 * 1024))
        self.content = _content(self.seed, size)
        path = os.path.join(self.dirname, "swarm.af")
        create_active(path, "repro.sentinels.null:NullFilterSentinel",
                      data=self.content)
        self.streams = [
            open_active(path, "rb", strategy="process-control")
            for _ in range(int(self.params.get("sessions", 4)))]

    def drive(self) -> None:
        chunk = int(self.params.get("chunk", 4096))
        results: list[bytes | None] = [None] * len(self.streams)
        errors: list[BaseException] = []

        def reader(i: int, stream) -> None:
            try:
                results[i] = self._read_all(stream, chunk)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i, stream),
                                    name=f"af-swarm-{i}", daemon=True)
                   for i, stream in enumerate(self.streams)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(policy.CHAOS_WORKLOAD_TIMEOUT)
        if errors:
            raise errors[0]
        self.results = results

    def verify(self) -> tuple[bool, str]:
        bad = sum(1 for r in self.results if r != self.content)
        if bad:
            return False, f"{bad}/{len(self.results)} sessions diverged"
        return True, (f"{len(self.results)} concurrent sessions all "
                      "byte-identical")


class LocalWriteWorkload(Workload):
    """Seeded writes to a persistent local data part, flushed to disk.

    The flush is what the ``disk-full`` fault targets: an ENOSPC'd
    flush leaves the buffer dirty, and this workload retries it (with
    :data:`~repro.core.policy.CHAOS_RETRY_S` backoff) until the quota
    reverts — the application-visible contract of a real full disk.
    """

    kind = "local-write"

    def setup(self) -> None:
        from repro.core import create_active, open_active
        size = int(self.params.get("bytes", 4 * 1024))
        self.path = os.path.join(self.dirname, "journal.af")
        create_active(self.path, "repro.sentinels.null:NullFilterSentinel",
                      data=bytes(size))
        self.expected = bytearray(size)
        self.streams = [open_active(self.path, "r+b",
                                    strategy="process-control")]

    def drive(self) -> None:
        stream = self.streams[0]
        rng = random.Random(self.seed)
        chunk = int(self.params.get("chunk", 256))
        size = len(self.expected)
        for _ in range(int(self.params.get("writes", 8))):
            offset = rng.randrange(0, max(1, size - chunk))
            data = bytes(rng.randrange(256) for _ in range(chunk))
            stream.seek(offset)
            stream.write(data)
            self.expected[offset:offset + chunk] = data
        deadline = policy.Deadline.after(policy.CHAOS_WORKLOAD_TIMEOUT)
        while True:
            try:
                stream.flush()
                return
            except DiskFullError:
                deadline.check("flush under injected disk-full")
                time.sleep(policy.CHAOS_RETRY_S)

    def verify(self) -> tuple[bool, str]:
        from repro.core.container import Container
        self.teardown()  # close persists; verify the on-disk data part
        got = Container.load(self.path).data
        if got == bytes(self.expected):
            return True, f"on-disk data part converged on {len(got)} bytes"
        return False, "on-disk data part diverged from the writes"


class FanoutReadWorkload(Workload):
    """One coherent writer + N subscribed coherent readers of one remote
    file, all on the pooled host's coherence domain.

    Every write through the writer is push-installed into each reader's
    cache and lands one record in each subscriber queue; after the
    drive, every reader (and the origin) must be byte-identical to the
    writer's view and every subscriber must have seen every update.
    """

    kind = "fanout-read"

    def setup(self) -> None:
        from repro.core import open_active
        size = int(self.params.get("bytes", 16 * 1024))
        self.content = _content(self.seed, size)
        self.expected = bytearray(self.content)
        self.server, path = self._remote_rig(
            self.content, cache="memory", coherent=True,
            block_size=int(self.params.get("block_size", 4096)),
            retries=int(self.params.get("retries", 8)))
        readers = int(self.params.get("readers", 3))
        self.streams = [open_active(path, "r+b", strategy="process-control",
                                    network=self.network)]
        self.streams += [open_active(path, "rb", strategy="process-control",
                                     network=self.network)
                         for _ in range(readers)]
        self.subs: list[int] = []
        for stream in self.streams[1:]:
            stream.read(1024)  # warm the cache; the open granted a lease
            self.subs.append(stream.subscribe())

    def drive(self) -> None:
        writer = self.streams[0]
        rng = random.Random(self.seed)
        chunk = int(self.params.get("chunk", 512))
        size = len(self.expected)
        for _ in range(int(self.params.get("writes", 6))):
            offset = rng.randrange(0, max(1, size - chunk))
            data = bytes(rng.randrange(256) for _ in range(chunk))
            writer.seek(offset)
            writer.write(data)
            self.expected[offset:offset + chunk] = data
        self.records = 0
        for stream, sub in zip(self.streams[1:], self.subs):
            self.records += len(stream.poll(sub, max_items=256))

    def verify(self) -> tuple[bool, str]:
        expected = bytes(self.expected)
        diverged = 0
        for stream in self.streams[1:]:
            stream.seek(0)
            if self._read_all(stream, 4096) != expected:
                diverged += 1
        if diverged:
            return False, (f"{diverged}/{len(self.subs)} subscribed "
                           "reader(s) diverged after heal")
        if self.server.get_file("data/blob.bin") != expected:
            return False, "origin bytes diverged from the writer's updates"
        want = int(self.params.get("writes", 6)) * len(self.subs)
        if self.records != want:
            return False, (f"subscribers saw {self.records} update "
                           f"records, expected {want}")
        return True, (f"{len(self.subs)} subscribed readers byte-identical "
                      f"after {want // max(len(self.subs), 1)} fanned-out "
                      f"writes ({self.records} update records)")


WORKLOADS: dict[str, type[Workload]] = {
    w.kind: w for w in (SequentialReadWorkload, SeededWriteWorkload,
                        SwarmReadWorkload, LocalWriteWorkload,
                        FanoutReadWorkload)
}


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

class ScenarioRunner:
    """Arm, drive, and judge one scenario; emit a structured report.

    ``dry_run=True`` takes a separate code path that never builds a
    workload or a fault plane — the "zero injections" guarantee is the
    absence of the machinery, not a flag threaded through it.
    """

    def __init__(self, scenario: Scenario, *, seed: int | None = None,
                 dry_run: bool = False,
                 allow_unbounded: bool = False) -> None:
        self.scenario = scenario
        self.seed = scenario.seed if seed is None else int(seed)
        self.dry_run = dry_run
        self.allow_unbounded = allow_unbounded

    # -- shared pieces -------------------------------------------------------

    def _plan(self) -> list[dict[str, Any]]:
        """The resolved timeline, ordered by (at, declaration order)."""
        ordered = sorted(enumerate(self.scenario.timeline),
                         key=lambda pair: (pair[1].at, pair[0]))
        plan = []
        for _, inj in ordered:
            entry = inj.plan_entry()
            entry["resolved_target"] = {
                "host": "all-session-hosts",
                "pool": "host-pool",
                "network": "workload-network",
            }[inj.target] if inj.target in _TARGETS else "?"
            plan.append(entry)
        return plan

    def _fingerprint(self, plan, invariants, passed) -> dict[str, Any]:
        return {
            "scenario": self.scenario.name,
            "seed": self.seed,
            "dry_run": self.dry_run,
            "plan": plan,
            "invariants": [[inv["name"], inv["ok"]] for inv in invariants],
            "passed": passed,
        }

    # -- dry run -------------------------------------------------------------

    def _dry_run(self, problems: list[str]) -> dict[str, Any]:
        plan = self._plan()
        invariants = [{"name": inv.label, "ok": None,
                       "detail": "not evaluated (dry run)"}
                      for inv in self.scenario.invariants]
        passed = not problems
        report = {
            "scenario": self.scenario.name,
            "seed": self.seed,
            "dry_run": True,
            "workload": dict(self.scenario.workload),
            "plan": plan,
            "lint": problems,
            "invariants": invariants,
            "passed": passed,
            "injections_performed": 0,
        }
        report["fingerprint"] = self._fingerprint(
            plan, [{"name": inv["name"], "ok": inv["ok"]}
                   for inv in invariants], passed)
        return report

    # -- live run ------------------------------------------------------------

    def run(self) -> dict[str, Any]:
        problems = lint_scenario(self.scenario,
                                 allow_unbounded=self.allow_unbounded)
        if self.dry_run:
            return self._dry_run(problems)
        if problems:
            raise ScenarioError(
                "scenario failed lint:\n  " + "\n  ".join(problems))

        from repro.core.runner import HOST_POOL

        workload_class = WORKLOADS[str(self.scenario.workload["kind"])]
        dirname = tempfile.mkdtemp(prefix="af-chaos-")
        workload = workload_class(
            {k: v for k, v in self.scenario.workload.items() if k != "kind"},
            self.seed, dirname)
        plane = FaultPlane(self.seed)
        plan = self._plan()
        deliveries: list[dict[str, Any]] = []
        baseline = TELEMETRY.metrics.snapshot()

        ordered = sorted(enumerate(self.scenario.timeline),
                         key=lambda pair: (pair[1].at, pair[0]))
        immediate = [inj for _, inj in ordered
                     if inj.at == 0 and inj.point != "resource"]
        timed = [inj for _, inj in ordered
                 if inj.at > 0 or inj.point == "resource"]

        # Rules firing "at 0" are armed before the first frame moves, so
        # their position in the op sequence comes from `after`/`times`,
        # not from a race with the workload — the deterministic path.
        for inj in immediate:
            self._arm_rule(plane, inj)
            deliveries.append({"at": inj.at, "point": inj.point,
                               "action": inj.action, "mode": "pre-armed"})

        prior_pool_faults = HOST_POOL.faults
        HOST_POOL.faults = plane
        last_delivery = [0.0]
        try:
            workload.setup()
            if workload.network is not None:
                plane.arm_network(workload.network)
            for host in workload.hosts():
                plane.arm_host(host)

            t0 = time.monotonic()
            injector = threading.Thread(
                target=self._inject_timed,
                args=(timed, t0, plane, workload, deliveries, last_delivery),
                name="af-chaos-injector", daemon=True)
            injector.start()

            workload_error: list[BaseException] = []

            def drive() -> None:
                try:
                    workload.drive()
                except BaseException as exc:
                    workload_error.append(exc)

            driver = threading.Thread(target=drive, name="af-chaos-drive",
                                      daemon=True)
            driver.start()
            driver.join(policy.CHAOS_WORKLOAD_TIMEOUT)
            hung = driver.is_alive()
            end = time.monotonic()
            injector.join(policy.CHAOS_OP_TIMEOUT)

            invariants = self._judge(
                workload, baseline, hung=hung,
                workload_error=workload_error[0] if workload_error else None,
                recovery_gap=end - max(t0, last_delivery[0]))
            passed = all(inv["ok"] for inv in invariants)
            report = {
                "scenario": self.scenario.name,
                "seed": self.seed,
                "dry_run": False,
                "workload": dict(self.scenario.workload),
                "plan": plan,
                "lint": [],
                "invariants": invariants,
                "passed": passed,
                "injections_performed": len(deliveries),
                "timing": {
                    "workload_s": round(end - t0, 4),
                    "deliveries": deliveries,
                    "fired": plane.summary(),
                    "counters": MetricsRegistry.diff(
                        baseline, TELEMETRY.metrics.snapshot())["global"],
                },
            }
            report["fingerprint"] = self._fingerprint(
                plan, invariants, passed)
            return report
        finally:
            HOST_POOL.faults = prior_pool_faults
            for host in workload.hosts():
                try:
                    host.inject_chaos("revert-all")
                except Exception:
                    pass  # host may be gone; its watchdogs revert anyway
            workload.teardown()
            shutil.rmtree(dirname, ignore_errors=True)

    def _arm_rule(self, plane: FaultPlane, inj: Injection) -> None:
        params = inj.params
        plane.rule(inj.point, inj.action,
                   op=params.get("op"),
                   address=params.get("address"),
                   p=float(params.get("p", 1.0)),
                   after=int(params.get("after", 0)),
                   times=int(params.get("times", 1) or 1),
                   seconds=float(params.get("seconds", 0.0)))

    def _inject_timed(self, timed: list[Injection], t0: float,
                      plane: FaultPlane, workload: Workload,
                      deliveries: list[dict[str, Any]],
                      last_delivery: list[float]) -> None:
        for inj in timed:
            delay = t0 + inj.at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            record = {"at": inj.at, "point": inj.point,
                      "action": inj.action, "mode": "scheduled"}
            try:
                if inj.point == "resource":
                    # Hosts are resolved at delivery time, so a host
                    # respawned since arming still receives its fault.
                    hosts = workload.hosts()
                    for host in hosts:
                        host.inject_chaos(inj.action, inj.params)
                    record["hosts"] = len(hosts)
                else:
                    self._arm_rule(plane, inj)
            except Exception as exc:
                record["error"] = f"{type(exc).__name__}: {exc}"
            deliveries.append(record)
            last_delivery[0] = time.monotonic()

    def _judge(self, workload: Workload, baseline: dict[str, Any], *,
               hung: bool, workload_error: BaseException | None,
               recovery_gap: float) -> list[dict[str, Any]]:
        deltas = MetricsRegistry.diff(
            baseline, TELEMETRY.metrics.snapshot())["global"]
        out: list[dict[str, Any]] = []
        for inv in self.scenario.invariants:
            if inv.name == "data-identical":
                if hung or workload_error is not None:
                    ok, detail = False, self._failure(hung, workload_error)
                else:
                    ok, detail = workload.verify()
            elif inv.name == "no-hung-futures":
                if hung:
                    ok, detail = False, "workload still running at timeout"
                else:
                    pending = workload.hung_futures()
                    ok = pending == 0
                    detail = f"{pending} operations in flight after drive"
            elif inv.name == "recovers-within":
                bound = float(inv.value)
                ok = not hung and recovery_gap <= bound
                detail = (f"finished {recovery_gap:.2f}s after the last "
                          f"injection (bound {bound}s)")
            else:  # counter expression
                match = _COUNTER_EXPR.match(str(inv.value))
                name, op, num = match.group("name", "op", "num")
                observed = float(deltas.get(name, 0))
                ok = _COMPARATORS[op](observed, float(num))
                detail = f"{name} = {observed:g} (want {op} {num})"
            out.append({"name": inv.label, "ok": bool(ok), "detail": detail})
        if not self.scenario.invariants and \
                (hung or workload_error is not None):
            out.append({"name": "workload-completed", "ok": False,
                        "detail": self._failure(hung, workload_error)})
        return out

    @staticmethod
    def _failure(hung: bool, error: BaseException | None) -> str:
        if hung:
            return "workload still running at timeout"
        return f"workload raised {type(error).__name__}: {error}"


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_report(report: dict[str, Any]) -> str:
    """Human-readable report (the CLI's default; ``--json`` bypasses)."""
    lines: list[str] = []
    verdict = "DRY-RUN" if report.get("dry_run") else (
        "PASS" if report.get("passed") else "FAIL")
    lines.append(f"scenario {report['scenario']} (seed {report['seed']}) "
                 f"... {verdict}")
    workload = report.get("workload") or {}
    if workload:
        lines.append(f"  workload: {workload.get('kind')}")
    lines.append("  timeline:")
    for entry in report.get("plan", []):
        params = entry.get("params") or {}
        detail = " ".join(f"{k}={v}" for k, v in params.items())
        lines.append(f"    t+{entry['at']:g}s  {entry['point']}:"
                     f"{entry['action']}  -> {entry['resolved_target']}"
                     + (f"  [{detail}]" if detail else ""))
    for problem in report.get("lint", []):
        lines.append(f"  lint: {problem}")
    if report.get("invariants"):
        lines.append("  invariants:")
        for inv in report["invariants"]:
            mark = "·" if inv["ok"] is None else ("ok" if inv["ok"]
                                                  else "FAIL")
            lines.append(f"    [{mark}] {inv['name']} — {inv['detail']}")
    timing = report.get("timing")
    if timing:
        lines.append(f"  injections: {report.get('injections_performed', 0)}"
                     f"  fired: {timing.get('fired') or {}}"
                     f"  workload: {timing.get('workload_s')}s")
    else:
        lines.append(f"  injections: {report.get('injections_performed', 0)}")
    return "\n".join(lines)
