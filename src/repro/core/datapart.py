"""Access to an active file's data part.

"The data file associated with an active file acts as a local cache"
(paper §2.2).  Sentinels see the data part through this small interface
regardless of strategy:

* :class:`MemoryDataPart` — an in-memory buffer, used when the container
  declares an ephemeral data part ("an active file can have an empty
  data part") or when a sentinel wants a private scratch cache;
* :class:`ContainerDataPart` — backed by the ``.af`` container's data
  segment, loaded at open and flushed (atomically, under a cross-process
  lock) on ``flush``/``close``.
"""

from __future__ import annotations

from repro.core.container import Container
from repro.core.resourcefaults import charge_disk_write
from repro.core.sync import FileLock
from repro.util.bytesbuf import ByteBuffer

__all__ = ["DataPart", "MemoryDataPart", "ContainerDataPart"]


class DataPart:
    """Interface every data-part implementation satisfies."""

    def read_at(self, offset: int, size: int) -> bytes:
        raise NotImplementedError

    def read_at_into(self, offset: int, buffer: memoryview) -> int:
        """Read up to ``len(buffer)`` bytes at *offset* into *buffer*.

        The default routes through :meth:`read_at`; buffer-backed parts
        override it to copy exactly once.
        """
        data = self.read_at(offset, len(buffer))
        buffer[:len(data)] = data
        return len(data)

    def write_at(self, offset: int, data: bytes) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def truncate(self, size: int = 0) -> None:
        raise NotImplementedError

    def getvalue(self) -> bytes:
        raise NotImplementedError

    def setvalue(self, data: bytes) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Persist buffered changes (no-op for memory parts)."""

    def close(self) -> None:
        self.flush()


class MemoryDataPart(DataPart):
    """A purely in-memory data part."""

    def __init__(self, initial: bytes = b"") -> None:
        self._buffer = ByteBuffer(initial)

    def read_at(self, offset: int, size: int) -> bytes:
        return self._buffer.read_at(offset, size)

    def read_at_into(self, offset: int, buffer: memoryview) -> int:
        return self._buffer.read_at_into(offset, buffer)

    def write_at(self, offset: int, data: bytes) -> int:
        return self._buffer.write_at(offset, data)

    @property
    def size(self) -> int:
        return self._buffer.size

    def truncate(self, size: int = 0) -> None:
        self._buffer.truncate(size)

    def getvalue(self) -> bytes:
        return self._buffer.getvalue()

    def setvalue(self, data: bytes) -> None:
        self._buffer.setvalue(data)


class ContainerDataPart(DataPart):
    """Data part backed by the container's data segment.

    The segment is loaded into memory at construction; mutations set a
    dirty flag and :meth:`flush` rewrites the container atomically while
    holding the container's file lock, so concurrent openers (possibly
    in other OS processes) never observe a torn data part.
    """

    def __init__(self, container: Container) -> None:
        self._container = container
        self._lock = FileLock(container.path)
        self._buffer = ByteBuffer(container.data)
        self._dirty = False

    def read_at(self, offset: int, size: int) -> bytes:
        return self._buffer.read_at(offset, size)

    def read_at_into(self, offset: int, buffer: memoryview) -> int:
        return self._buffer.read_at_into(offset, buffer)

    def write_at(self, offset: int, data: bytes) -> int:
        written = self._buffer.write_at(offset, data)
        self._dirty = True
        return written

    @property
    def size(self) -> int:
        return self._buffer.size

    def truncate(self, size: int = 0) -> None:
        self._buffer.truncate(size)
        self._dirty = True

    def getvalue(self) -> bytes:
        return self._buffer.getvalue()

    def setvalue(self, data: bytes) -> None:
        self._buffer.setvalue(data)
        self._dirty = True

    def reload(self) -> None:
        """Discard the buffer and re-read the on-disk data part."""
        with self._lock:
            self._buffer.setvalue(self._container.read_data())
        self._dirty = False

    def flush(self) -> None:
        if not self._dirty:
            return
        data = self._buffer.getvalue()
        # The disk-full chaos hook: an armed quota (resourcefaults's
        # ``disk-full`` fault) raises typed ENOSPC *before* any bytes
        # hit the disk — the buffer stays dirty, so a retry after the
        # fault reverts persists everything, like a real full disk.
        charge_disk_write(len(data))
        with self._lock:
            self._container.write_data(data)
        self._dirty = False

    def close(self) -> None:
        self.flush()
        self._lock.close()
