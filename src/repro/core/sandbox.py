"""Sandboxing untrusted sentinels (paper §2.3).

"Opening an active file ... launches a program under the user-id of the
application that opened the file.  This program can, of course have any
side effect, including malicious ones ... In applications with
additional security requirements, orthogonal techniques such as
certificates, code signing, and sandboxing can be used."

:class:`SandboxedSentinel` is that orthogonal technique for this
runtime: it wraps any sentinel behind a :class:`SandboxPolicy` that the
*opener* (not the sentinel author) controls:

* cap per-operation and total I/O volume;
* deny writes / control ops / truncation outright;
* restrict which network hosts the sentinel may contact (the context's
  ``connect`` is interposed);
* bound how many operations the sentinel may serve per open.

Violations raise :class:`~repro.errors.SandboxViolation`, which the
strategies surface to the application like any sentinel failure — one
bad operation cannot take the session down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.sentinel import Sentinel, SentinelContext
from repro.core.spec import SentinelSpec
from repro.errors import SandboxViolation, SpecError
from repro.net.address import Address

__all__ = ["SandboxPolicy", "SandboxViolation", "SandboxedSentinel",
           "sandbox_spec"]


@dataclass(frozen=True)
class SandboxPolicy:
    """Resource-centric limits applied around one sentinel."""

    #: Largest single read/write the sandbox will pass through.
    max_op_bytes: int = 1 << 20
    #: Total bytes (reads + writes) allowed per open; None = unlimited.
    max_total_bytes: int | None = None
    #: Total operations allowed per open; None = unlimited.
    max_operations: int | None = None
    allow_writes: bool = True
    allow_truncate: bool = True
    #: Control ops the application may invoke; None = all, () = none.
    allowed_control_ops: tuple[str, ...] | None = None
    #: Network hosts the sentinel may connect to; None = all, () = none.
    allowed_hosts: tuple[str, ...] | None = None

    def to_params(self) -> dict[str, Any]:
        return {
            "max_op_bytes": self.max_op_bytes,
            "max_total_bytes": self.max_total_bytes,
            "max_operations": self.max_operations,
            "allow_writes": self.allow_writes,
            "allow_truncate": self.allow_truncate,
            "allowed_control_ops": (None if self.allowed_control_ops is None
                                    else list(self.allowed_control_ops)),
            "allowed_hosts": (None if self.allowed_hosts is None
                              else list(self.allowed_hosts)),
        }

    @classmethod
    def from_params(cls, params: dict[str, Any]) -> "SandboxPolicy":
        ops = params.get("allowed_control_ops")
        hosts = params.get("allowed_hosts")
        return cls(
            max_op_bytes=int(params.get("max_op_bytes", 1 << 20)),
            max_total_bytes=params.get("max_total_bytes"),
            max_operations=params.get("max_operations"),
            allow_writes=bool(params.get("allow_writes", True)),
            allow_truncate=bool(params.get("allow_truncate", True)),
            allowed_control_ops=None if ops is None else tuple(ops),
            allowed_hosts=None if hosts is None else tuple(hosts),
        )


def sandbox_spec(spec: SentinelSpec, policy: SandboxPolicy) -> SentinelSpec:
    """Wrap *spec* so it always runs under *policy*."""
    return SentinelSpec(
        target="repro.core.sandbox:SandboxedSentinel",
        params={"target": spec.target, "params": dict(spec.params),
                "policy": policy.to_params()},
    )


class _GuardedNetwork:
    """Network facade that enforces the host allowlist."""

    def __init__(self, network, policy: SandboxPolicy) -> None:
        self._network = network
        self._policy = policy

    def connect(self, address: Address):
        allowed = self._policy.allowed_hosts
        if allowed is not None and address.host not in allowed:
            raise SandboxViolation(
                f"sentinel tried to contact {address.host!r}, which the "
                f"sandbox policy does not allow"
            )
        return self._network.connect(address)

    def call(self, address: Address, request):  # Network-compatible surface
        allowed = self._policy.allowed_hosts
        if allowed is not None and address.host not in allowed:
            raise SandboxViolation(
                f"sentinel tried to contact {address.host!r}, which the "
                f"sandbox policy does not allow"
            )
        return self._network.call(address, request)


class SandboxedSentinel(Sentinel):
    """Policy-enforcing wrapper around another sentinel.

    Params: ``target``/``params`` (the wrapped sentinel) and ``policy``
    (a :meth:`SandboxPolicy.to_params` dict).
    """

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        target = self.params.get("target")
        if not target:
            raise SpecError("sandbox requires a 'target' param")
        self.inner = SentinelSpec(
            target=target, params=self.params.get("params") or {}
        ).instantiate()
        self.policy = SandboxPolicy.from_params(self.params.get("policy") or {})
        self.operations = 0
        self.total_bytes = 0

    # -- accounting ----------------------------------------------------------------

    def _account(self, nbytes: int, kind: str) -> None:
        self.operations += 1
        if self.policy.max_operations is not None \
                and self.operations > self.policy.max_operations:
            raise SandboxViolation(
                f"operation budget exhausted "
                f"({self.policy.max_operations} per open)"
            )
        if nbytes > self.policy.max_op_bytes:
            raise SandboxViolation(
                f"{kind} of {nbytes} bytes exceeds the per-op limit "
                f"({self.policy.max_op_bytes})"
            )
        self.total_bytes += nbytes
        if self.policy.max_total_bytes is not None \
                and self.total_bytes > self.policy.max_total_bytes:
            raise SandboxViolation(
                f"I/O budget exhausted ({self.policy.max_total_bytes} bytes "
                "per open)"
            )

    def _guarded(self, ctx: SentinelContext) -> SentinelContext:
        if ctx.network is None or isinstance(ctx.network, _GuardedNetwork):
            return ctx
        ctx.network = _GuardedNetwork(ctx.network, self.policy)
        return ctx

    # -- sentinel interface -----------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        self.inner.on_open(self._guarded(ctx))

    def on_close(self, ctx: SentinelContext) -> None:
        self.inner.on_close(ctx)

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        self._account(size, "read")
        return self.inner.on_read(ctx, offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        if not self.policy.allow_writes:
            raise SandboxViolation("writes denied by sandbox policy")
        self._account(len(data), "write")
        return self.inner.on_write(ctx, offset, data)

    def on_size(self, ctx: SentinelContext) -> int:
        return self.inner.on_size(ctx)

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        if not self.policy.allow_truncate or not self.policy.allow_writes:
            raise SandboxViolation("truncate denied by sandbox policy")
        self.inner.on_truncate(ctx, size)

    def on_flush(self, ctx: SentinelContext) -> None:
        self.inner.on_flush(ctx)

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes) -> tuple[dict[str, Any], bytes]:
        if op == "sandbox_stats":
            return {"operations": self.operations,
                    "total_bytes": self.total_bytes,
                    "policy": self.policy.to_params()}, b""
        allowed = self.policy.allowed_control_ops
        if allowed is not None and op not in allowed:
            raise SandboxViolation(
                f"control op {op!r} denied by sandbox policy"
            )
        return self.inner.on_control(ctx, op, args, payload)
