"""Creating and opening active files.

:func:`create_active` writes a new ``.af`` container;
:func:`open_active` is the library's front door — it loads the
container, launches the sentinel under the requested strategy, applies
the open-mode semantics, and hands back an
:class:`~repro.core.fileobj.ActiveFile`.

Opening is what starts the sentinel ("the sentinel process is started
and terminated when a user process opens and closes the active file"),
and each concurrent open gets its own sentinel, matching §2.2.
"""

from __future__ import annotations

import os
from typing import Any

from repro.core.container import Container
from repro.core.fileobj import ActiveFile
from repro.core.spec import SentinelSpec
from repro.core.strategies import resolve_strategy
from repro.errors import StrategyError, UnsupportedOperationError

__all__ = ["create_active", "open_active", "parse_mode", "DEFAULT_STRATEGY"]

DEFAULT_STRATEGY = "thread"

_VALID_MODES = {"r", "r+", "w", "w+", "a", "a+"}


def parse_mode(mode: str) -> dict[str, bool]:
    """Parse a binary open mode into capability flags.

    Only binary modes are accepted here; text wrapping is the
    interception layer's job, so the ``b`` flag is required ("rb",
    "w+b", ...) and text modes like ``"r"`` are rejected.
    """
    base = mode.replace("b", "")
    if base not in _VALID_MODES or mode.count("b") != 1:
        raise ValueError(f"unsupported active-file mode: {mode!r}")
    plus = "+" in base
    kind = base[0]
    return {
        "readable": kind == "r" or plus,
        "writable": kind in "wa" or plus,
        "truncate": kind == "w",
        "append": kind == "a",
    }


def create_active(path: str | os.PathLike, target: str | SentinelSpec,
                  params: dict[str, Any] | None = None, data: bytes = b"",
                  meta: dict[str, Any] | None = None,
                  exist_ok: bool = False) -> Container:
    """Create an active file on disk.

    *target* is either a ready :class:`SentinelSpec` or a
    ``"module:factory"`` string combined with *params*.
    """
    if isinstance(target, SentinelSpec):
        if params:
            raise ValueError("pass params inside the SentinelSpec, not both")
        spec = target
    else:
        spec = SentinelSpec(target=target, params=params or {})
    return Container.create(path, spec, data=data, meta=meta, exist_ok=exist_ok)


def open_active(path: str | os.PathLike, mode: str = "r+b", *,
                strategy: str = DEFAULT_STRATEGY, network=None) -> ActiveFile:
    """Open the active file at *path* and return a binary file object.

    ``strategy`` selects the implementation approach (§4): ``"process"``,
    ``"process-control"``, ``"thread"`` (default), or ``"inproc"``
    (paper aliases like ``"dll-only"`` work too).  ``network`` attaches a
    :class:`repro.net.Network` whose services the sentinel may contact —
    including from inside sentinel child processes, via the bridge.
    """
    flags = parse_mode(mode)
    canonical, module = resolve_strategy(strategy)
    container = Container.load(path)
    session = module.open_session(container, network=network)

    if flags["truncate"]:
        if not session.supports_random_access:
            session.close()
            raise StrategyError(
                f"mode {mode!r} needs truncation, which the {canonical!r} "
                "strategy cannot express (no control channel)"
            )
        session.truncate(0)
    if flags["append"] and not session.supports_random_access:
        # Fail at open time, before the application writes anything in
        # the belief it is appending — ActiveFile would raise too, but
        # the session must be released either way.
        session.close()
        raise UnsupportedOperationError(
            f"mode {mode!r} needs the end-of-file position, which the "
            f"{canonical!r} strategy cannot provide (no control channel)"
        )
    return ActiveFile(
        session, name=str(path),
        readable=flags["readable"], writable=flags["writable"],
        append=flags["append"],
    )
