"""Deadlines and retry policies for the fault-tolerant transport.

Failures are routine in the environment the paper targets — sentinels
wrap *remote* information sources, and the sentinel process itself can
die under the application.  This module centralizes the two primitives
every layer of the stack uses to survive that:

* :class:`Deadline` — an absolute point on the monotonic clock by which
  an operation must finish.  Every blocking wait in the transport takes
  one; the remaining budget travels across process boundaries as a
  millisecond field (``dl``) in the message envelope, so a sentinel
  child and the network bridge inherit the caller's budget instead of
  inventing their own.
* :class:`RetryPolicy` — bounded exponential backoff with seeded jitter.
  Retries are *idempotency-aware*: callers declare which failures are
  retryable, and the policy never sleeps past the deadline.

Every timeout constant of the transport lives here — the single place
to tune, and the single place a grep for hardcoded timeout literals
should point at.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterator

from repro.errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "RetryPolicy",
    "DEFAULT_OP_TIMEOUT",
    "ATTEMPT_TIMEOUT",
    "OPEN_TIMEOUT",
    "CLOSE_TIMEOUT",
    "JOIN_TIMEOUT",
    "SHUTDOWN_TIMEOUT",
    "HEARTBEAT_IDLE_S",
    "HEARTBEAT_TIMEOUT",
    "BRIDGE_TIMEOUT",
    "REMOTE_OP_TIMEOUT",
    "HOST_LINGER_S",
    "JOURNAL_LIMIT_BYTES",
    "SCHED_TICK_S",
    "HOST_EXECUTOR_THREADS",
    "HOST_MAX_INFLIGHT",
    "HOST_QUEUE_DEPTH",
    "HOST_INTAKE_HIGH",
    "HOST_INTAKE_LOW",
    "OVERLOAD_RETRY_S",
    "CHAOS_MAX_FAULT_S",
    "CHAOS_MAX_TOTAL_INJECTION_S",
    "CHAOS_OP_TIMEOUT",
    "CHAOS_RETRY_S",
    "CHAOS_RECOVERS_DEFAULT_S",
    "CHAOS_WORKLOAD_TIMEOUT",
]

# ---------------------------------------------------------------------------
# Timeout constants (the only place in the library timeouts are spelled)
# ---------------------------------------------------------------------------

#: Default overall budget for one session operation (app <-> sentinel).
DEFAULT_OP_TIMEOUT = 30.0

#: Per-wire-attempt cap inside an operation's budget: a lost frame is
#: detected after this long and the request is re-sent (idempotent ops).
ATTEMPT_TIMEOUT = 5.0

#: Budget for opening a session on a sentinel host (includes spawn).
OPEN_TIMEOUT = 30.0

#: Budget for the close handshake before teardown proceeds anyway.
CLOSE_TIMEOUT = 5.0

#: Bound on joining a channel worker thread during teardown.
JOIN_TIMEOUT = 5.0

#: Bound on waiting for a host child to exit after its channel closed.
SHUTDOWN_TIMEOUT = 5.0

#: A host connection idle this long gets a liveness probe.
HEARTBEAT_IDLE_S = 5.0

#: Budget for one heartbeat ping before the host is declared dead.
HEARTBEAT_TIMEOUT = 5.0

#: Default budget for one network-bridge exchange (child -> app -> net).
BRIDGE_TIMEOUT = 30.0

#: Default budget for one remote-origin exchange of a caching sentinel.
REMOTE_OP_TIMEOUT = 30.0

#: How long an idle pooled host survives after its last lease closes.
HOST_LINGER_S = 0.5

#: Write-journal size bound; a session whose mutation history exceeds
#: this cannot be transparently respawned (see strategies/common.py).
JOURNAL_LIMIT_BYTES = 4 * 1024 * 1024

#: Granularity of the event-loop scheduler's bounded waits (throttled
#: readers and fault-injection ticks re-check at this cadence).
SCHED_TICK_S = 0.005

#: Executor threads of one :class:`~repro.core.hostloop.EventLoopServer`
#: (override per process with ``REPRO_HOST_EXECUTORS``).
HOST_EXECUTOR_THREADS = 4

#: Admission high-water mark: total admitted-but-unfinished operations
#: one host serves before fast-rejecting session requests
#: (``REPRO_HOST_MAX_INFLIGHT`` overrides).
HOST_MAX_INFLIGHT = 1024

#: Per-channel FIFO bound; a channel this far behind is fast-rejected
#: rather than buffered deeper (``REPRO_HOST_QUEUE_DEPTH`` overrides).
HOST_QUEUE_DEPTH = 128

#: Reader backpressure: stop decoding frames past this admitted
#: backlog ...
HOST_INTAKE_HIGH = 768

#: ... and resume once it drains below this (hysteresis, so the reader
#: does not flap at the boundary).
HOST_INTAKE_LOW = 256

#: Session-layer backoff between retries of an admission-rejected op.
OVERLOAD_RETRY_S = 0.02

#: Hard wall-clock bound on any single resource fault: a resource
#: injection (cpu-hog, memory-pressure, fd-exhaustion, disk-full) whose
#: requested duration exceeds this is clamped, and every fault carries
#: its own in-host watchdog so it reverts by this bound even if the
#: injecting process died mid-injection.
CHAOS_MAX_FAULT_S = 30.0

#: Blast-radius cap on one scenario's *total* scheduled injection
#: duration (the sum of every timed fault's ``seconds``); the linter
#: refuses scenarios over this.
CHAOS_MAX_TOTAL_INJECTION_S = 120.0

#: Budget for one ``chaos`` control-op exchange with a sentinel host.
CHAOS_OP_TIMEOUT = 10.0

#: Workload-side backoff between retries of an operation refused by an
#: active resource fault (e.g. an ENOSPC flush under ``disk-full``).
CHAOS_RETRY_S = 0.05

#: Default bound for the ``recovers-within`` scenario invariant when a
#: scenario names the invariant without a value.
CHAOS_RECOVERS_DEFAULT_S = 30.0

#: Overall budget for one scenario workload; a workload still running
#: past this is declared hung (the runner fails the scenario rather
#: than waiting forever).
CHAOS_WORKLOAD_TIMEOUT = 120.0


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------

class Deadline:
    """An absolute monotonic-clock expiry; ``None`` expiry = unbounded.

    Deadlines are *values*: derive capped/remaining views rather than
    mutating.  Serialization for the wire is a remaining-milliseconds
    integer (:meth:`to_ms`/:meth:`from_ms`), re-anchored on the receiving
    side — absolute monotonic times do not travel between processes.
    """

    __slots__ = ("_expiry",)

    def __init__(self, expiry: float | None) -> None:
        self._expiry = expiry

    # -- constructors ------------------------------------------------------

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """A deadline *seconds* from now (``None`` = never)."""
        if seconds is None:
            return _NEVER
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def never(cls) -> "Deadline":
        return _NEVER

    @classmethod
    def coerce(cls, value: "float | Deadline | None",
               default: float | None = None) -> "Deadline":
        """Accept what callers historically passed as ``timeout``.

        A :class:`Deadline` passes through; a number becomes a deadline
        that far in the future; ``None`` becomes ``after(default)``.
        """
        if isinstance(value, Deadline):
            return value
        if value is None:
            return cls.after(default)
        return cls.after(float(value))

    @classmethod
    def from_ms(cls, ms: Any) -> "Deadline":
        """Re-anchor a wire budget (remaining milliseconds) locally."""
        if ms is None:
            return _NEVER
        return cls.after(float(ms) / 1000.0)

    # -- queries -----------------------------------------------------------

    @property
    def bounded(self) -> bool:
        return self._expiry is not None

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` if unbounded."""
        if self._expiry is None:
            return None
        return max(0.0, self._expiry - time.monotonic())

    def timeout(self) -> float | None:
        """The remaining budget in the shape ``Event.wait`` expects."""
        return self.remaining()

    def expired(self) -> bool:
        return self._expiry is not None and time.monotonic() >= self._expiry

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        if self.expired():
            raise DeadlineExceededError(f"deadline exceeded: {what}")

    def to_ms(self) -> int | None:
        """The remaining budget as integer milliseconds (wire form)."""
        remaining = self.remaining()
        if remaining is None:
            return None
        return int(remaining * 1000)

    # -- derivation --------------------------------------------------------

    def capped(self, seconds: float) -> "Deadline":
        """The sooner of this deadline and ``after(seconds)``."""
        cap = time.monotonic() + float(seconds)
        if self._expiry is None or cap < self._expiry:
            return Deadline(cap)
        return self

    def sleep(self, seconds: float) -> None:
        """Sleep *seconds*, clipped to the remaining budget."""
        remaining = self.remaining()
        if remaining is not None:
            seconds = min(seconds, remaining)
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expiry is None:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


_NEVER = Deadline(None)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``attempts`` counts total tries (so ``attempts=3`` means the first
    try plus two retries).  ``jitter`` is the fraction of each delay
    randomized symmetrically around its nominal value; the jitter stream
    is drawn from ``random.Random(seed)``, so a seeded policy produces
    the same delay schedule every run — the property the deterministic
    fault plane and the chaos suite rely on.
    """

    __slots__ = ("attempts", "base_delay", "multiplier", "max_delay",
                 "jitter", "seed")

    def __init__(self, attempts: int = 3, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 1.0,
                 jitter: float = 0.5, seed: int | None = None) -> None:
        self.attempts = max(1, int(attempts))
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = seed

    def delays(self) -> Iterator[float]:
        """The backoff schedule: one delay per retry (attempts - 1)."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            nominal = min(delay, self.max_delay)
            if self.jitter:
                nominal *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, nominal)
            delay *= self.multiplier

    def run(self, fn: Callable[[], Any], *,
            retryable: "type | tuple | Callable[[BaseException], bool]",
            deadline: "Deadline | float | None" = None,
            idempotent: bool = True,
            on_retry: Callable[[BaseException, float], None] | None = None,
            ) -> Any:
        """Call *fn*, retrying retryable failures within the deadline.

        *retryable* is an exception class/tuple or a predicate; a
        non-idempotent call never retries (its first failure may have
        taken effect).  Sleeps are clipped to the deadline; when the
        budget runs out the last failure is re-raised.
        """
        deadline = Deadline.coerce(deadline)
        if callable(retryable) and not isinstance(retryable, type):
            is_retryable = retryable
        else:
            is_retryable = lambda exc: isinstance(exc, retryable)  # noqa: E731
        schedule = self.delays() if idempotent else iter(())
        while True:
            try:
                return fn()
            except BaseException as exc:
                if not is_retryable(exc):
                    raise
                delay = next(schedule, None)
                if delay is None or deadline.expired():
                    raise
                if on_retry is not None:
                    on_retry(exc, delay)
                deadline.sleep(delay)
