"""Resource-exhaustion faults for live sentinel hosts.

:mod:`repro.core.faults` makes *transport* failures schedulable; this
module adds the other half of production chaos — **resource** failures
inside the sentinel host process itself:

======================= ====================================================
action                  effect inside the host
======================= ====================================================
``cpu-hog``             spin ``threads`` busy threads for ``seconds``
``memory-pressure``     allocate and hold ``bytes`` of heap for ``seconds``
``fd-exhaustion``       consume up to ``count`` descriptors for ``seconds``,
                        always leaving :data:`FD_RESERVE` descriptors free
``disk-full``           charge container data-part flushes against a
                        ``bytes`` quota; an exhausted quota raises a typed
                        :class:`~repro.errors.DiskFullError` (``ENOSPC``)
======================= ====================================================

Faults are delivered to a live host via the ``chaos`` control op on
channel 0 (:class:`~repro.core.runner.HostAgent`) and executed here by
the process-global :data:`CONTROLLER`.

**Safety rails are structural, not advisory.**  Every fault is clamped
to :data:`~repro.core.policy.CHAOS_MAX_FAULT_S` and carries its own
in-process watchdog thread, so it reverts within its bound even if the
injecting scenario runner was killed mid-injection.  ``fd-exhaustion``
never consumes past the process's soft descriptor limit minus
:data:`FD_RESERVE`.  ``memory-pressure`` is capped at
:data:`MEMORY_PRESSURE_CAP`.  :func:`guarded_kill` is the only signal
path the scenario runner owns, and it refuses any pid that is not a
live :class:`~repro.core.runner.SentinelHost` child.

Every injection increments ``faults.injected.resource.<action>`` in the
telemetry registry, mirroring the ``faults.injected.<point>.<action>``
counters the transport fault plane records — a firing that leaves no
counter behind did not happen.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Any

from repro.core import policy
from repro.core.telemetry import TELEMETRY
from repro.errors import ChaosError, ChaosSafetyError, DiskFullError

__all__ = [
    "RESOURCE_ACTIONS",
    "ResourceFaultController",
    "CONTROLLER",
    "charge_disk_write",
    "guarded_kill",
    "assert_sentinel_pid",
    "FD_RESERVE",
    "MEMORY_PRESSURE_CAP",
    "CPU_HOG_MAX_THREADS",
]

#: The resource fault actions a host's ``chaos`` control op accepts.
RESOURCE_ACTIONS = ("cpu-hog", "memory-pressure", "fd-exhaustion",
                    "disk-full")

#: Descriptors ``fd-exhaustion`` always leaves free below the soft
#: RLIMIT_NOFILE, so the host keeps serving (pipes, containers, shm)
#: while starved.
FD_RESERVE = 64

#: Hard cap on one ``memory-pressure`` allocation (bytes).
MEMORY_PRESSURE_CAP = 256 * 1024 * 1024

#: Hard cap on ``cpu-hog`` spinner threads.
CPU_HOG_MAX_THREADS = 8


def _counter(action: str):
    return TELEMETRY.metrics.counter(f"faults.injected.resource.{action}")


class _ActiveFault:
    """One live resource fault: identity, bound, and its revert hook."""

    __slots__ = ("fault_id", "action", "params", "started", "until",
                 "_revert", "_lock", "reverted")

    def __init__(self, fault_id: int, action: str, params: dict[str, Any],
                 until: float, revert) -> None:
        self.fault_id = fault_id
        self.action = action
        self.params = params
        self.started = time.monotonic()
        self.until = until
        self._revert = revert
        self._lock = threading.Lock()
        self.reverted = False

    def revert(self) -> bool:
        """Undo the fault exactly once; True if this call did the undo."""
        with self._lock:
            if self.reverted:
                return False
            self.reverted = True
        self._revert()
        return True

    def describe(self) -> dict[str, Any]:
        return {
            "fault_id": self.fault_id,
            "action": self.action,
            "params": dict(self.params),
            "remaining_s": max(0.0, self.until - time.monotonic()),
        }


class ResourceFaultController:
    """Execute bounded resource faults inside this process.

    One controller per process (:data:`CONTROLLER`); sentinel hosts
    route their ``chaos`` control ops here.  Tests may instantiate
    private controllers — faults are tracked per instance, except the
    disk-full quota, which is process-global by design (the data-part
    flush hook must stay a module function).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active: dict[int, _ActiveFault] = {}
        self._seq = 0

    # -- injection -----------------------------------------------------------

    def inject(self, action: str, params: dict[str, Any] | None = None
               ) -> dict[str, Any]:
        """Apply *action* with *params*; returns the (clamped) receipt.

        The receipt carries ``fault_id`` (for early revert), the applied
        ``seconds`` after clamping, and action-specific fields.  Raises
        :class:`ChaosError` for unknown actions and
        :class:`ChaosSafetyError` when a guard refuses the request.
        """
        params = dict(params or {})
        if action not in RESOURCE_ACTIONS:
            raise ChaosError(f"unknown resource fault {action!r} "
                             f"(expected one of {RESOURCE_ACTIONS})")
        seconds = float(params.get("seconds", 1.0))
        if seconds <= 0:
            raise ChaosSafetyError(
                f"{action}: seconds must be positive, got {seconds}")
        seconds = min(seconds, policy.CHAOS_MAX_FAULT_S)
        params["seconds"] = seconds
        with self._lock:
            self._seq += 1
            fault_id = self._seq
        if action == "cpu-hog":
            extra, revert, arm = self._cpu_hog(params)
        elif action == "memory-pressure":
            extra, revert, arm = self._memory_pressure(params)
        elif action == "fd-exhaustion":
            extra, revert, arm = self._fd_exhaustion(params)
        else:  # disk-full
            extra, revert, arm = self._disk_full(params)
        # The clock starts when the fault is *applied* — a slow apply
        # (a big allocation on a loaded box) must not eat the duration,
        # or the fault could be reverted before it ever existed.
        until = time.monotonic() + seconds
        arm(until)
        fault = _ActiveFault(fault_id, action, params, until, revert)
        with self._lock:
            self._active[fault_id] = fault
        self._watchdog(fault)
        _counter(action).inc()
        return {"fault_id": fault_id, "action": action,
                "seconds": seconds, **extra}

    def _watchdog(self, fault: _ActiveFault) -> None:
        """The automatic-revert guarantee: one daemon timer per fault.

        Runs in *this* process, so the fault reverts at its bound even
        when the injecting peer (the scenario runner, an operator's
        afctl) died mid-injection and never sends the revert op.
        """
        def expire() -> None:
            delay = fault.until - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            fault.revert()
            with self._lock:
                self._active.pop(fault.fault_id, None)

        threading.Thread(target=expire, name=f"af-chaos-{fault.fault_id}",
                         daemon=True).start()

    # -- the four fault bodies -----------------------------------------------

    def _cpu_hog(self, params: dict[str, Any]):
        threads = max(1, min(int(params.get("threads", 2)),
                             CPU_HOG_MAX_THREADS))
        stop = threading.Event()
        deadline = [float("inf")]  # armed once the clock starts

        def spin() -> None:
            x = 0
            while not stop.is_set() and time.monotonic() < deadline[0]:
                # Pure arithmetic: burns the GIL-holding slices the host's
                # executors compete for, which is exactly the contention
                # being modelled.
                x = (x * 1103515245 + 12345) & 0x7FFFFFFF

        for i in range(threads):
            threading.Thread(target=spin, name=f"af-cpu-hog-{i}",
                             daemon=True).start()
        return ({"threads": threads}, stop.set,
                lambda until: deadline.__setitem__(0, until))

    def _memory_pressure(self, params: dict[str, Any]):
        nbytes = max(1, min(int(params.get("bytes", 64 * 1024 * 1024)),
                            MEMORY_PRESSURE_CAP))
        holder: dict[str, Any] = {"buf": bytearray(nbytes)}
        # Touch every page so the pressure is resident, not just virtual.
        page = b"\xa5"
        holder["buf"][::4096] = page * len(range(0, nbytes, 4096))
        return ({"bytes": nbytes}, lambda: holder.pop("buf", None),
                lambda until: None)

    def _fd_exhaustion(self, params: dict[str, Any]):
        requested = max(1, int(params.get("count", 128)))
        ceiling = self._fd_ceiling()
        held: list[int] = []
        try:
            while len(held) < min(requested, ceiling):
                r, w = os.pipe()
                held.extend((r, w))
        except OSError:
            # The real limit arrived early; give two pairs back so the
            # reserve promise holds even under a mis-reported rlimit.
            for _ in range(2):
                for _ in range(2):
                    if held:
                        os.close(held.pop())

        def release() -> None:
            while held:
                try:
                    os.close(held.pop())
                except OSError:
                    pass

        return {"count": len(held)}, release, lambda until: None

    @staticmethod
    def _fd_ceiling() -> int:
        """Most descriptors a fault may consume: soft limit - reserve."""
        try:
            import resource
            soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
        except Exception:  # pragma: no cover - non-POSIX fallback
            soft = 1024
        return max(0, int(soft) - FD_RESERVE)

    def _disk_full(self, params: dict[str, Any]):
        quota = max(0, int(params.get("bytes", 0)))
        return ({"bytes": quota}, _clear_disk_quota,
                lambda until: _set_disk_quota(quota, until))

    # -- revert / introspection ----------------------------------------------

    def revert(self, fault_id: int) -> bool:
        with self._lock:
            fault = self._active.pop(int(fault_id), None)
        return fault.revert() if fault is not None else False

    def revert_all(self) -> int:
        with self._lock:
            faults = list(self._active.values())
            self._active.clear()
        return sum(1 for fault in faults if fault.revert())

    def active(self) -> list[dict[str, Any]]:
        with self._lock:
            return [fault.describe() for fault in self._active.values()]


#: The process-global controller sentinel hosts route ``chaos`` ops to.
CONTROLLER = ResourceFaultController()


# ---------------------------------------------------------------------------
# disk-full quota (module-global: the data-part flush hook lives here)
# ---------------------------------------------------------------------------

_disk_lock = threading.Lock()
#: ``None`` when no quota is armed (the fast path), else
#: ``{"remaining": int, "until": float}``.
_disk_quota: dict[str, Any] | None = None


def _set_disk_quota(nbytes: int, until: float) -> None:
    global _disk_quota
    with _disk_lock:
        _disk_quota = {"remaining": int(nbytes), "until": until}


def _clear_disk_quota() -> None:
    global _disk_quota
    with _disk_lock:
        _disk_quota = None


def charge_disk_write(nbytes: int) -> None:
    """Charge a data-part flush against the armed quota (if any).

    Called by :class:`~repro.core.datapart.ContainerDataPart` before its
    container rewrite.  With no quota armed this is one global read.  An
    exhausted quota raises :class:`~repro.errors.DiskFullError`
    (``errno == ENOSPC``) *before* any bytes hit the disk, exactly like
    a full filesystem refusing the write — and like the real thing, the
    data stays buffered so a retry after the fault reverts succeeds.
    """
    global _disk_quota
    if _disk_quota is None:
        return
    with _disk_lock:
        quota = _disk_quota
        if quota is None:
            return
        if time.monotonic() >= quota["until"]:
            _disk_quota = None  # the watchdog races us; either clear wins
            return
        if nbytes > quota["remaining"]:
            raise DiskFullError(
                f"injected disk-full: {nbytes} bytes over the remaining "
                f"{quota['remaining']}-byte quota")
        quota["remaining"] -= nbytes


# ---------------------------------------------------------------------------
# blast-radius guard: the only signal path the chaos engine owns
# ---------------------------------------------------------------------------

def assert_sentinel_pid(pid: int, hosts) -> None:
    """Refuse *pid* unless a live :class:`SentinelHost` in *hosts* owns it.

    Raises :class:`ChaosSafetyError` otherwise.  The guard is the
    scenario runner's no-stray-signals rail: no matter what a scenario
    file says, nothing outside the rig's own sentinel children can be
    signalled through the chaos engine.
    """
    pid = int(pid)
    owned = set()
    for host in hosts:
        proc = getattr(host, "proc", None)
        if proc is not None and proc.poll() is None:
            owned.add(proc.pid)
    if pid not in owned:
        raise ChaosSafetyError(
            f"refusing to signal pid {pid}: not a live sentinel host "
            f"(owned pids: {sorted(owned) or 'none'})")


def guarded_kill(pid: int, hosts) -> None:
    """SIGKILL *pid* after :func:`assert_sentinel_pid` clears it."""
    assert_sentinel_pid(pid, hosts)
    os.kill(int(pid), signal.SIGKILL)
