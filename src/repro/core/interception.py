"""The mediating-connectors analogue: transparent ``open()`` interception.

The paper integrates legacy applications *without modification* by
binary-intercepting their Win32 file API calls (the USC/ISI "Mediating
Connectors" toolkit rewrites the import address table).  The Python
equivalent of an IAT rebind is replacing ``builtins.open``: legacy
Python code that calls plain ``open()`` then transparently receives an
active file whenever the path names one, and an ordinary file otherwise.

    with MediatingConnector(network=net):
        legacy_application("report.af")     # unmodified code

Active files opened this way come back properly wrapped for the
requested mode — text modes get an ``io.TextIOWrapper``, binary modes a
buffered reader/writer — so the legacy code's ``readline()``,
iteration, and ``str`` expectations all hold.
"""

from __future__ import annotations

import builtins
import io
import os
import threading

from repro.core.container import is_active_path, sniff
from repro.core.opener import DEFAULT_STRATEGY, open_active
from repro.errors import InterceptionError
from repro.util.finalize import defer_close

__all__ = ["MediatingConnector", "wrap_for_mode"]

_install_lock = threading.Lock()


class _LeakSafeMixin:
    """Leaked wrappers must not flush/close inside the garbage collector.

    The stdlib wrapper finalizers close (and therefore flush into the
    active file's transport) from GC context, which can deadlock against
    a transport or pool lock held by the interrupted thread; hand the
    wrapper to the reaper thread instead (see :mod:`repro.util.finalize`).
    """

    def __del__(self):
        try:
            leaked = not self.closed
        except Exception:
            leaked = False
        if leaked:
            defer_close(self)


class _LeakSafeBufferedRandom(_LeakSafeMixin, io.BufferedRandom):
    pass


class _LeakSafeBufferedWriter(_LeakSafeMixin, io.BufferedWriter):
    pass


class _LeakSafeBufferedReader(_LeakSafeMixin, io.BufferedReader):
    pass


class _LeakSafeTextIOWrapper(_LeakSafeMixin, io.TextIOWrapper):
    pass


def wrap_for_mode(raw, mode: str, encoding: str | None = None,
                  errors: str | None = None, newline: str | None = None):
    """Wrap a raw :class:`ActiveFile` the way ``open(mode=...)`` would."""
    binary = "b" in mode
    if binary and encoding is not None:
        raise ValueError("binary mode doesn't take an encoding argument")
    if raw.readable() and raw.writable() and raw.seekable():
        buffered = _LeakSafeBufferedRandom(raw)
    elif raw.writable() and not raw.readable():
        buffered = _LeakSafeBufferedWriter(raw)
    else:
        buffered = _LeakSafeBufferedReader(raw)
    if binary:
        return buffered
    return _LeakSafeTextIOWrapper(buffered, encoding=encoding or "utf-8",
                                  errors=errors, newline=newline,
                                  write_through=True)


class MediatingConnector:
    """Scoped replacement of ``builtins.open``.

    "interception can be done in a secure fashion such that the
    application cannot undo it" — here installation is explicit and
    reference-counted instead, which is the honest user-space Python
    equivalent; the point under test is transparency, not tamper
    resistance.
    """

    def __init__(self, network=None, strategy: str = DEFAULT_STRATEGY,
                 sniff_content: bool = False) -> None:
        self.network = network
        self.strategy = strategy
        self.sniff_content = sniff_content
        self._original = None
        self._hook = None
        #: Count of active-file opens served while installed (telemetry
        #: for tests and demos).
        self.intercepted_opens = 0

    # -- the replacement open ----------------------------------------------------------

    def _is_active(self, file) -> bool:
        if not isinstance(file, (str, os.PathLike)):
            return False  # file descriptors etc. are never active files
        path = os.fspath(file)
        if is_active_path(path):
            return os.path.exists(path)
        return self.sniff_content and sniff(path)

    def _open(self, file, mode="r", buffering=-1, encoding=None, errors=None,
              newline=None, closefd=True, opener=None):
        if not self._is_active(file):
            return self._original(file, mode, buffering, encoding, errors,
                                  newline, closefd, opener)
        self.intercepted_opens += 1
        base = mode.replace("b", "").replace("t", "") or "r"
        raw = open_active(os.fspath(file), base + "b",
                          strategy=self.strategy, network=self.network)
        try:
            return wrap_for_mode(raw, mode, encoding, errors, newline)
        except Exception:
            raw.close()
            raise

    # -- install / uninstall --------------------------------------------------------------

    def install(self) -> "MediatingConnector":
        with _install_lock:
            if self._original is not None:
                raise InterceptionError("connector is already installed")
            self._original = builtins.open
            # bind once: method access creates a fresh object each time,
            # and uninstall compares by identity
            self._hook = self._open
            builtins.open = self._hook
        return self

    def uninstall(self) -> None:
        with _install_lock:
            if self._original is None:
                raise InterceptionError("connector is not installed")
            if builtins.open is not self._hook:
                raise InterceptionError(
                    "builtins.open was replaced behind our back; refusing to "
                    "clobber the newer hook"
                )
            builtins.open = self._original
            self._original = None
            self._hook = None

    def __enter__(self) -> "MediatingConnector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
