"""The sentinel programming model.

"An active file is a regular file that is associated with an executable
program.  When an active file is opened, the associated executable is
run as a sentinel process" (paper §2).  In this reproduction a sentinel
is a Python object with overridable handlers; the four implementation
strategies differ only in *where* the object runs (child process,
injected thread, or inline) and *how* operations reach it (pipes,
control channel, shared memory, or direct calls) — the programming model
is uniform, which is the portability the paper's Section 5 works
towards.

Two base classes are provided:

* :class:`Sentinel` — offset-addressed handlers (`on_read`/`on_write`
  with explicit offsets, plus size/truncate/flush/control).  The default
  implementations pass through to the data part, i.e. a bare ``Sentinel``
  is exactly the paper's *null filter*: "the active file has the
  semantics of a passive file".
* :class:`StreamSentinel` — for purely sequential producers/consumers
  (the paper's Figure 2 two-thread model).  These also work under the
  simple process strategy, which has no control channel and therefore no
  way to express offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import UnsupportedOperationError
from repro.core.datapart import DataPart, MemoryDataPart
from repro.core.sync import SharedState
from repro.net.address import Address

__all__ = ["Sentinel", "StreamSentinel", "SentinelContext"]


@dataclass
class SentinelContext:
    """Everything a sentinel can see while serving one open.

    One context is created per open; ``shared`` (when available) is the
    cross-open coordination state the paper's Section 2.2 calls for.
    """

    #: Path of the ``.af`` container, or ``""`` for anonymous opens.
    path: str = ""
    #: Parameters from the sentinel spec.
    params: dict[str, Any] = field(default_factory=dict)
    #: The local data part ("acts as a local cache").
    data: DataPart = field(default_factory=MemoryDataPart)
    #: Object exposing ``connect(Address)``; ``None`` if no network wired.
    network: Any = None
    #: Cross-open shared state (thread/inproc strategies of one process).
    shared: SharedState | None = None
    #: The per-container :class:`~repro.core.fanout.CoherenceDomain`
    #: joining every open served by this process (leases, write fences,
    #: single-flight fills, pub/sub fan-out); ``None`` when the serving
    #: strategy provides no cross-open coherence.
    coherence: Any = None
    #: Container metadata (free-form).
    meta: dict[str, Any] = field(default_factory=dict)
    #: Strategy name serving this open ("process", "thread", ...).
    strategy: str = ""
    #: Remaining :class:`~repro.core.policy.Deadline` budget of the
    #: command currently being served (set per-command by the
    #: dispatcher; ``None`` when the caller imposed no bound).
    deadline: Any = None

    def connect(self, address: "Address | str"):
        """Open a connection to a remote service by Address or URL string."""
        if self.network is None:
            raise UnsupportedOperationError(
                "this open has no network attached; pass network= to open_active()"
            )
        if isinstance(address, str):
            address, _ = Address.parse(address)
        return self.network.connect(address)


class Sentinel:
    """Base class for offset-addressed sentinels (default: null filter)."""

    #: Chunk size used when this sentinel is driven in stream mode.
    stream_chunk = 4096

    #: Endless sentinels (e.g. random generators) never signal EOF in
    #: stream mode and report an unbounded size.
    endless = False

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        self.params = dict(params or {})

    # -- lifecycle -------------------------------------------------------------

    def on_open(self, ctx: SentinelContext) -> None:
        """Called once, after the strategy wired the context, before I/O."""

    def on_close(self, ctx: SentinelContext) -> None:
        """Called once when the application closes the file."""

    # -- data plane --------------------------------------------------------------

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        """Serve a read; default passes through to the data part."""
        return ctx.data.read_at(offset, size)

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        """Serve a write; default passes through to the data part."""
        return ctx.data.write_at(offset, data)

    def on_read_into(self, ctx: SentinelContext, offset: int, size: int,
                     buffer: memoryview) -> int:
        """Serve a read directly into *buffer*; returns bytes filled.

        The shared-memory fast path offers the reply slot here so the
        bytes land in it without an intermediate ``bytes`` object.  A
        null filter (no ``on_read`` override) fills straight from the
        data part; filtering sentinels route through their ``on_read``
        so overriding one method keeps both planes consistent.
        """
        if type(self).on_read is Sentinel.on_read:
            return ctx.data.read_at_into(offset, buffer[:size])
        data = self.on_read(ctx, offset, size)
        filled = len(data)
        buffer[:filled] = data
        return filled

    def on_size(self, ctx: SentinelContext) -> int:
        """Serve GetFileSize; default reports the data part's size."""
        return ctx.data.size

    def on_truncate(self, ctx: SentinelContext, size: int) -> None:
        ctx.data.truncate(size)

    def on_flush(self, ctx: SentinelContext) -> None:
        ctx.data.flush()

    # -- control plane ------------------------------------------------------------

    def on_control(self, ctx: SentinelContext, op: str, args: dict[str, Any],
                   payload: bytes) -> tuple[dict[str, Any], bytes]:
        """Serve a custom control operation.

        The control channel is what lets active files support "even ...
        calls that do not have corresponding pipe operations" (§A.2).
        Unknown operations raise, mirroring the paper's "dropped with an
        appropriate return code".
        """
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not implement control op {op!r}"
        )

    # -- fan-out plane (coherence domain) ------------------------------------------

    def _fanout_domain(self, ctx: SentinelContext):
        domain = ctx.coherence
        if domain is None:
            raise UnsupportedOperationError(
                f"{type(self).__name__}: this open has no coherence domain "
                "(the serving strategy provides no cross-open fan-out)")
        return domain

    def _fanout_member(self, ctx: SentinelContext) -> int:
        """This open's domain member id, registered lazily.

        Sentinels that join the domain with cache callbacks (e.g. the
        remote-file sentinel) set ``_fanout_member_id`` themselves in
        ``on_open``; the base class registers a callback-free member.
        """
        member = getattr(self, "_fanout_member_id", None)
        if member is None:
            member = self._fanout_domain(ctx).register()
            self._fanout_member_id = member
        return member

    def _fanout_release(self, ctx: SentinelContext) -> None:
        """Leave the domain at close (called by the dispatchers)."""
        domain = ctx.coherence
        if domain is None:
            return
        member = getattr(self, "_fanout_member_id", None)
        if member is not None:
            domain.unregister(member)
            self._fanout_member_id = None

    def on_publish(self, ctx: SentinelContext, offset: int, data: bytes,
                   meta: dict[str, Any]) -> dict[str, Any]:
        """Apply *data* as a write, then fan it out to the domain.

        The default routes through :meth:`on_write` (so a publishing
        open observes its own update) and multicasts to every peer and
        subscriber.  *meta* fields ride along on the update records.
        A domain-aware write path (one that publishes inside its own
        write fence) is detected by its sequence number and not
        published a second time.
        """
        domain = self._fanout_domain(ctx)
        member = self._fanout_member(ctx)
        before = domain.last_published(member)
        written = self.on_write(ctx, offset, data)
        seq = domain.last_published(member)
        if seq == before:
            seq = domain.publish(member, offset, data,
                                 fields=dict(meta or {}))
        return {"written": written, "seq": seq}

    def on_subscribe(self, ctx: SentinelContext,
                     args: dict[str, Any]) -> dict[str, Any]:
        """Open a bounded update queue; returns ``{"sub": id}``."""
        from repro.core.fanout import DEFAULT_MAX_PENDING

        domain = self._fanout_domain(ctx)
        sub = domain.subscribe(
            self._fanout_member(ctx),
            max_pending=int(args.get("max_pending", DEFAULT_MAX_PENDING)))
        return {"sub": sub}

    def on_poll(self, ctx: SentinelContext, args: dict[str, Any]
                ) -> tuple[dict[str, Any], bytes]:
        """Drain pending update records for one subscription."""
        domain = self._fanout_domain(ctx)
        updates = domain.poll(int(args["sub"]),
                              max_items=int(args.get("max_items", 64)))
        return {"updates": updates, "seq": domain.seq}, b""

    def on_unsubscribe(self, ctx: SentinelContext,
                       args: dict[str, Any]) -> dict[str, Any]:
        self._fanout_domain(ctx).unsubscribe(int(args["sub"]))
        return {}

    # -- stream-mode adaptation (simple process strategy) ---------------------------

    def generate(self, ctx: SentinelContext) -> Iterator[bytes]:
        """Produce the read stream; default walks on_read sequentially."""
        offset = 0
        while True:
            chunk = self.on_read(ctx, offset, self.stream_chunk)
            if not chunk:
                if self.endless:
                    continue
                return
            offset += len(chunk)
            yield chunk

    def consume(self, ctx: SentinelContext, data: bytes, offset: int) -> int:
        """Absorb one chunk of the write stream at the running offset."""
        return self.on_write(ctx, offset, data)


class StreamSentinel(Sentinel):
    """Base class for sequential producer/consumer sentinels.

    Subclasses override :meth:`generate` and/or :meth:`consume`.  Random
    access is rejected unless the subclass opts back in — such sentinels
    are exactly the ones the paper runs under the simple process
    strategy, where "operations such as ReadFileScatter (or seek in
    Unix) ... cannot be implemented".
    """

    def on_read(self, ctx: SentinelContext, offset: int, size: int) -> bytes:
        raise UnsupportedOperationError(
            f"{type(self).__name__} is stream-only; random reads unsupported"
        )

    def on_write(self, ctx: SentinelContext, offset: int, data: bytes) -> int:
        raise UnsupportedOperationError(
            f"{type(self).__name__} is stream-only; random writes unsupported"
        )

    def generate(self, ctx: SentinelContext) -> Iterator[bytes]:
        return iter(())

    def consume(self, ctx: SentinelContext, data: bytes, offset: int) -> int:
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not accept writes"
        )
