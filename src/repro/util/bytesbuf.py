"""A growable random-access byte buffer.

Used as the in-memory data part of active files, as the backing store of
the in-memory caching path, and as the file body inside the simulated
NTFS-like filesystem.  Semantics follow POSIX files: reads past the end
return short data, writes past the end zero-fill the gap.
"""

from __future__ import annotations

__all__ = ["ByteBuffer"]


class ByteBuffer:
    """A mutable, seekless byte store addressed by absolute offsets.

    The buffer itself carries no cursor; callers (file objects, sentinels)
    keep their own positions.  This keeps one buffer safely shareable
    between several openers, which is how the paper's sentinels share the
    data part.
    """

    def __init__(self, initial: bytes = b"") -> None:
        self._data = bytearray(initial)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteBuffer(size={len(self._data)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ByteBuffer):
            return self._data == other._data
        if isinstance(other, (bytes, bytearray)):
            return self._data == other
        return NotImplemented

    @property
    def size(self) -> int:
        """Current size of the buffer in bytes."""
        return len(self._data)

    def read_at(self, offset: int, size: int) -> bytes:
        """Return up to *size* bytes starting at *offset*.

        Reads beyond the end return fewer bytes (possibly ``b""``),
        matching regular-file semantics.
        """
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if size < 0:
            raise ValueError(f"negative size: {size}")
        return bytes(self._data[offset:offset + size])

    def read_at_into(self, offset: int, buffer: memoryview) -> int:
        """Copy up to ``len(buffer)`` bytes at *offset* into *buffer*.

        Returns the byte count; the single copy goes straight from the
        backing store into the caller's buffer (no intermediate bytes).
        """
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        available = len(self._data) - offset
        if available <= 0:
            return 0
        count = min(len(buffer), available)
        buffer[:count] = memoryview(self._data)[offset:offset + count]
        return count

    def write_at(self, offset: int, data: bytes) -> int:
        """Write *data* at *offset*, zero-filling any gap; return count."""
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        end = offset + len(data)
        if offset > len(self._data):
            self._data.extend(b"\x00" * (offset - len(self._data)))
        self._data[offset:end] = data
        return len(data)

    def append(self, data: bytes) -> int:
        """Append *data* at the current end; return the offset it landed at."""
        offset = len(self._data)
        self._data.extend(data)
        return offset

    def truncate(self, size: int = 0) -> None:
        """Shrink (or zero-extend) the buffer to exactly *size* bytes."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        if size <= len(self._data):
            del self._data[size:]
        else:
            self._data.extend(b"\x00" * (size - len(self._data)))

    def getvalue(self) -> bytes:
        """Return the whole buffer as immutable bytes."""
        return bytes(self._data)

    def setvalue(self, data: bytes) -> None:
        """Replace the whole buffer contents."""
        self._data[:] = data
