"""Small shared utilities used across the library."""

from repro.util.bytesbuf import ByteBuffer
from repro.util.framing import read_exact, read_frame, write_frame
from repro.util.naming import monotonic_name

__all__ = [
    "ByteBuffer",
    "read_exact",
    "read_frame",
    "write_frame",
    "monotonic_name",
]
