"""Deterministic unique-name generation.

Simulated kernels, networks and handle tables all need unique ids.  Using
a per-prefix monotonic counter (rather than ``uuid4``/``random``) keeps
every run of the simulator bit-for-bit reproducible, which the
performance harness relies on.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict

__all__ = ["monotonic_name", "reset_names"]

_counters: defaultdict[str, itertools.count] = defaultdict(itertools.count)
_lock = threading.Lock()


def monotonic_name(prefix: str) -> str:
    """Return ``"<prefix>-<n>"`` with *n* counting up per prefix."""
    with _lock:
        return f"{prefix}-{next(_counters[prefix])}"


def reset_names() -> None:
    """Reset all counters (test isolation helper)."""
    with _lock:
        _counters.clear()
