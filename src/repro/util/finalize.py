"""Deferred closing for file objects that reach the garbage collector.

A leaked channel-backed file must not be closed *inside* the collector:
closing does transport work (a "close" round trip, a pool-lease
release), and GC can interrupt the very thread that currently holds a
transport or pool lock — a finalizer that then re-acquires one of those
locks deadlocks the process on its own stack.

Finalizers therefore resurrect the leaked object onto a queue, and a
background reaper thread closes it in ordinary context.
``SimpleQueue.put`` is reentrant (implemented without locks), so it is
safe to call from ``__del__`` no matter where the collection fired.

The reaper thread is started lazily from *ordinary* context
(:func:`ensure_reaper` — creating a thread from a finalizer would
itself risk re-entering :mod:`threading`'s internal locks).
"""

from __future__ import annotations

import threading
from queue import SimpleQueue
from typing import Any

__all__ = ["defer_close", "ensure_reaper"]

_QUEUE: SimpleQueue = SimpleQueue()
_started = False
_start_lock = threading.Lock()


def _drain() -> None:
    while True:
        obj = _QUEUE.get()
        try:
            obj.close()
        except Exception:
            pass  # it was leaked; best-effort cleanup only


def ensure_reaper() -> None:
    """Start the reaper thread.  Call from ordinary (non-GC) context."""
    global _started
    if _started:
        return
    with _start_lock:
        if not _started:
            threading.Thread(target=_drain, name="af-finalizer-reaper",
                             daemon=True).start()
            _started = True


def defer_close(obj: Any) -> None:
    """Hand *obj* to the reaper thread; safe to call from ``__del__``."""
    _QUEUE.put(obj)
