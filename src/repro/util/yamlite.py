"""A dependency-free YAML-subset parser (JSON accepted as-is).

Both the chaos scenario format (:mod:`repro.core.scenario`) and the
doctor's declarative checks (:mod:`repro.doctor.checks`) are plain
files a human edits; neither wants a PyYAML dependency for the tiny
slice of YAML they actually use.  The subset:

* two-space indentation (tabs in indentation are rejected);
* ``key: value`` mappings and ``- item`` sequences, nesting freely
  (including sequences of mappings via ``- key: value``);
* scalars: int, float, ``true``/``false``, ``null``/``~``, and single-
  or double-quoted strings (anything else is a bare string);
* ``#`` comments, quote-aware.

Documents whose first non-blank character is ``{`` are parsed as JSON,
so machine-generated files compose with the same loaders.

Errors raise :class:`YamliteError` (a ``ValueError``); callers wrap it
into their own domain error (``ScenarioError``, ``DoctorError``) so
the extraction of this module stays behavior-invisible to them.
"""

from __future__ import annotations

import json
import re
from typing import Any

__all__ = ["YamliteError", "loads"]


class YamliteError(ValueError):
    """A document that does not fit the YAML subset (or bad JSON)."""


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, respecting single/double quotes."""
    quote = None
    for i, ch in enumerate(line):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#":
            return line[:i]
    return line


def _scan(text: str) -> list[tuple[int, str]]:
    out: list[tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).rstrip()
        if not line.strip():
            continue
        if "\t" in line[:len(line) - len(line.lstrip())]:
            raise YamliteError(f"line {lineno}: tabs are not allowed "
                               "in indentation")
        out.append((len(line) - len(line.lstrip(" ")), line.strip()))
    return out


def _scalar(token: str) -> Any:
    token = token.strip()
    if token in ("", "null", "~"):
        return None
    if token == "true":
        return True
    if token == "false":
        return False
    if len(token) >= 2 and token[0] in "'\"" and token[-1] == token[0]:
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


_MAP_KEY = re.compile(r"^[\w.\-]+:(\s|$)")


def _parse_block(lines: list[tuple[int, str]], pos: int,
                 indent: int) -> tuple[Any, int]:
    if lines[pos][1].startswith("- ") or lines[pos][1] == "-":
        return _parse_list(lines, pos, indent)
    return _parse_map(lines, pos, indent)


def _parse_map(lines: list[tuple[int, str]], pos: int,
               indent: int) -> tuple[dict[str, Any], int]:
    out: dict[str, Any] = {}
    while pos < len(lines):
        ind, text = lines[pos]
        if ind < indent:
            break
        if ind > indent:
            raise YamliteError(f"unexpected indent at {text!r}")
        if text.startswith("- "):
            raise YamliteError(f"sequence item {text!r} where a mapping "
                               "entry was expected")
        key, sep, rest = text.partition(":")
        if not sep:
            raise YamliteError(f"expected 'key: value', got {text!r}")
        key = key.strip()
        rest = rest.strip()
        pos += 1
        if rest:
            out[key] = _scalar(rest)
        elif pos < len(lines) and lines[pos][0] > ind:
            out[key], pos = _parse_block(lines, pos, lines[pos][0])
        else:
            out[key] = None
    return out, pos


def _parse_list(lines: list[tuple[int, str]], pos: int,
                indent: int) -> tuple[list[Any], int]:
    out: list[Any] = []
    while pos < len(lines):
        ind, text = lines[pos]
        if ind < indent:
            break
        if ind > indent or not (text == "-" or text.startswith("- ")):
            raise YamliteError(f"inconsistent sequence item {text!r}")
        rest = text[1:].strip()
        pos += 1
        if not rest:
            if pos < len(lines) and lines[pos][0] > ind:
                value, pos = _parse_block(lines, pos, lines[pos][0])
            else:
                value = None
            out.append(value)
        elif _MAP_KEY.match(rest):
            # `- key: value` opens an inline mapping whose further keys
            # sit two columns in (under the item's first key).
            sub = [(ind + 2, rest)]
            while pos < len(lines) and lines[pos][0] > ind:
                sub.append(lines[pos])
                pos += 1
            value, _ = _parse_map(sub, 0, ind + 2)
            out.append(value)
        else:
            out.append(_scalar(rest))
    return out, pos


def loads(text: str) -> Any:
    """Parse *text* (YAML subset, or JSON if it starts with ``{``)."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            return json.loads(text)
        except ValueError as exc:
            raise YamliteError(f"invalid JSON document: {exc}") from None
    lines = _scan(text)
    if not lines:
        raise YamliteError("empty document")
    doc, pos = _parse_block(lines, 0, lines[0][0])
    if pos != len(lines):
        raise YamliteError(
            f"trailing content at {lines[pos][1]!r} (bad indentation?)")
    return doc
