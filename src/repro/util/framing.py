"""Length-prefixed framing over byte streams.

The two process-based strategies talk to the sentinel child over OS
pipes.  Pipes are byte streams, so commands and payloads are delimited
with a 4-byte big-endian length prefix.  A maximum frame size guards the
receiver against a corrupt or adversarial peer allocating unbounded
memory.
"""

from __future__ import annotations

import io
import struct
import threading
from typing import BinaryIO

from repro.errors import ChannelClosedError, FrameError

__all__ = ["read_exact", "readinto_exact", "write_frame", "read_frame",
           "MAX_FRAME"]

_LEN = struct.Struct(">I")

#: Upper bound on a single frame body (16 MiB).  Large file operations are
#: chunked well below this by the strategies.
MAX_FRAME = 16 * 1024 * 1024

#: Frame bodies at or below this size are joined with the length prefix
#: and written in one call.
_COALESCE_LIMIT = 64 * 1024


def read_exact(stream: BinaryIO, size: int) -> bytes:
    """Read exactly *size* bytes from *stream* or raise.

    Raises :class:`ChannelClosedError` if EOF arrives first — a half
    frame always means the peer died mid-message.
    """
    chunk = stream.read(size)
    if chunk is None:
        chunk = b""
    if len(chunk) == size:
        return chunk  # whole body in one read: no join, no copy
    if not chunk:
        raise ChannelClosedError(
            f"stream closed with {size} of {size} bytes outstanding")
    chunks = [chunk]
    remaining = size - len(chunk)
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise ChannelClosedError(
                f"stream closed with {remaining} of {size} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(stream: BinaryIO, payload: bytes | memoryview,
                *extra: bytes | memoryview) -> None:
    """Write one length-prefixed frame and flush it.

    The frame body may be passed as several parts — ``bytes`` or
    ``memoryview`` alike; they are written back-to-back under one
    length prefix.  This lets callers prepend a small header to a large
    payload (or gather many extents) without concatenating, and
    therefore copying, the payload first.  Small frames are coalesced
    into a single write so a frame costs one syscall on an unbuffered
    pipe.
    """
    total = len(payload) + sum(len(part) for part in extra)
    if total > MAX_FRAME:
        raise FrameError(f"frame of {total} bytes exceeds MAX_FRAME")
    if total <= _COALESCE_LIMIT:
        stream.write(b"".join((_LEN.pack(total), payload, *extra)))
    else:
        stream.write(_LEN.pack(total))
        stream.write(payload)
        for part in extra:
            if part:
                stream.write(part)
    # Only buffered streams need (or benefit from) an explicit flush.
    # The pipe transports hand over raw fds (buffering=0): every write
    # above already hit the kernel, and flushing a raw stream would cost
    # a second no-op method call per frame.
    if isinstance(stream, io.BufferedIOBase):
        stream.flush()


def readinto_exact(stream: BinaryIO, view: memoryview) -> None:
    """Fill *view* completely from *stream* or raise.

    The ``readinto`` sibling of :func:`read_exact`: bytes land directly
    in the caller's buffer, so a frame body costs no chunk list and no
    join copy.
    """
    total = len(view)
    filled = 0
    readinto = getattr(stream, "readinto", None)
    if readinto is None:
        view[:] = read_exact(stream, total)
        return
    while filled < total:
        got = readinto(view[filled:])
        if not got:
            raise ChannelClosedError(
                f"stream closed with {total - filled} of {total} "
                f"bytes outstanding")
        filled += got


#: A small pool of reusable frame-body buffers.  Steady-state framed
#: traffic reads every body into a recycled ``bytearray`` instead of
#: allocating a fresh one per frame.
_POOL_LOCK = threading.Lock()
_BUFFER_POOL: list[bytearray] = []
_POOL_DEPTH = 4


def read_frame(stream: BinaryIO) -> bytes:
    """Read one length-prefixed frame.

    Raises :class:`ChannelClosedError` on clean EOF at a frame boundary as
    well — callers that want to treat clean EOF differently should catch
    it and inspect the message.
    """
    header = stream.read(_LEN.size)
    if not header:
        raise ChannelClosedError("stream closed at frame boundary")
    if len(header) < _LEN.size:
        header += read_exact(stream, _LEN.size - len(header))
    (size,) = _LEN.unpack(header)
    if size > MAX_FRAME:
        raise FrameError(f"incoming frame of {size} bytes exceeds MAX_FRAME")
    with _POOL_LOCK:
        buffer = _BUFFER_POOL.pop() if _BUFFER_POOL else bytearray()
    if len(buffer) < size:
        buffer.extend(bytes(size - len(buffer)))
    view = memoryview(buffer)
    try:
        readinto_exact(stream, view[:size])
        return bytes(view[:size])
    finally:
        view.release()
        with _POOL_LOCK:
            if len(_BUFFER_POOL) < _POOL_DEPTH:
                _BUFFER_POOL.append(buffer)
