"""The four §4 strategies, executed on the simulated kernel.

Each session is the application-side object a stub holds behind the
fictitious handle.  The code here is deliberately structured like the
paper's description — the costs in Figure 6 must *emerge* from pipe
crossings, event waits, copies and context switches, not from a closed
formula.

Wire header for the control protocol: ``op (u8) | offset (u64) |
size (u32) | pad (3)`` = 16 bytes, written and read through simulated
pipes so it is charged like any other pipe traffic.
"""

from __future__ import annotations

import struct

from repro.afsim.backings import Backing
from repro.errors import SimulationError
from repro.ntos.kernel import Kernel, SimProcess
from repro.ntos.objects import KEvent
from repro.ntos.pipes import KPipe
from repro.ntos.sharedmem import SharedSection

__all__ = [
    "SimSession",
    "ControlProcessSession",
    "ThreadSession",
    "DllSession",
    "StreamProcessSession",
    "open_session",
    "SIM_STRATEGIES",
]

_HEADER = struct.Struct(">BQI3x")
assert _HEADER.size == 16

_OP_READ = 1
_OP_WRITE = 2
_OP_CLOSE = 3

#: Shared data buffer for the thread strategy (1 MiB section).
_SECTION_SIZE = 1 << 20

SIM_STRATEGIES = ("process", "process-control", "thread", "dll")


class SimSession:
    """Application-side view of one open active file."""

    strategy = ""

    def read(self, size: int) -> bytes:
        raise NotImplementedError

    def write(self, data: bytes) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def settle(self) -> None:
        """Quiesce asynchronous work (between measurement phases)."""


# ---------------------------------------------------------------------------
# Process-plus-control (the "Process" curve of Figure 6)
# ---------------------------------------------------------------------------

class ControlProcessSession(SimSession):
    """Sentinel process + control channel + two data pipes (§4.2).

    Read: " a 'read 50' command is sent to the sentinel, and then 50
    bytes are read from the read pipe" — the application blocks for the
    full round trip (two protection-domain crossings).

    Write: "writes are issued without waiting for their completion" —
    the command and payload go into the pipes and the application
    continues; it only stalls when the pipes fill, i.e. at the
    sentinel's bandwidth.
    """

    strategy = "process-control"

    def __init__(self, kernel: Kernel, app_process: SimProcess,
                 backing: Backing, readahead: bool = False,
                 name: str = "af") -> None:
        self.kernel = kernel
        self.backing = backing
        self.readahead = readahead
        self._offset = 0
        self._closed = False
        # the control channel is a message pipe with a small buffer: a
        # few dozen outstanding 16-byte commands, like an NT message-
        # mode pipe; the data pipes use the regular buffer size
        self.control = KPipe(kernel, capacity=512, name=f"{name}-control")
        self.read_pipe = KPipe(kernel, name=f"{name}-read")
        self.write_pipe = KPipe(kernel, name=f"{name}-write")
        sentinel_process = kernel.create_process(f"{name}-sentinel")
        kernel.create_thread(sentinel_process, self._sentinel_main,
                             name=f"{name}-sentinel:main")

    # -- sentinel side ----------------------------------------------------------

    def _sentinel_main(self) -> None:
        stash: dict[int, bytes] = {}
        while True:
            header = self.control.read(_HEADER.size)
            if not header:
                break
            if len(header) < _HEADER.size:
                header += self.control.read_exact(_HEADER.size - len(header))
            op, offset, size = _HEADER.unpack(header)
            if op == _OP_READ:
                data = stash.pop(offset, None)
                if data is None:
                    data = self.backing.read(offset, size)
                self.read_pipe.write(data)
                if self.readahead:
                    # §4.2: "eagerly inject data into the read pipe
                    # (anticipating read requests)" — modelled as a
                    # prefetch that overlaps the application's next step
                    stash.clear()
                    stash[offset + size] = self.backing.read(offset + size,
                                                             size)
            elif op == _OP_WRITE:
                data = self.write_pipe.read_exact(size)
                self.backing.write(offset, data)
            elif op == _OP_CLOSE:
                break
            else:
                raise SimulationError(f"sentinel got unknown op {op}")
        self.backing.settle()
        self.read_pipe.close_write()

    # -- application side ----------------------------------------------------------

    def read(self, size: int) -> bytes:
        header = _HEADER.pack(_OP_READ, self._offset, size)
        self.control.write(header)
        data = self.read_pipe.read_exact(size)
        self._offset += size
        return data

    def write(self, data: bytes) -> int:
        header = _HEADER.pack(_OP_WRITE, self._offset, len(data))
        self.control.write(header)
        self.write_pipe.write(data)
        self._offset += len(data)
        return len(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.control.write(_HEADER.pack(_OP_CLOSE, 0, 0))
        # EOF on the read pipe confirms the sentinel finished settling
        while self.read_pipe.read(4096):
            pass

    def settle(self) -> None:
        self.backing.settle()


# ---------------------------------------------------------------------------
# DLL-with-thread (the "Thread" curve)
# ---------------------------------------------------------------------------

class ThreadSession(SimSession):
    """Sentinel thread + shared memory + events (§4.3).

    "There is no inter-process context switching needed ... File data
    is not copied from user space to kernel space and then to user
    space (as is the case with pipes), instead using only one
    user-level copy."
    """

    strategy = "thread"

    def __init__(self, kernel: Kernel, app_process: SimProcess,
                 backing: Backing, name: str = "af") -> None:
        self.kernel = kernel
        self.backing = backing
        self._offset = 0
        self._closed = False
        self.section = SharedSection(kernel, _SECTION_SIZE,
                                     name=f"{name}-section")
        self.request_ready = KEvent(kernel, name=f"{name}-req")
        self.response_ready = KEvent(kernel, name=f"{name}-resp")
        # the control block lives in shared memory; its fields are tiny
        # compared to the payload, so only events are charged for it
        self._cmd: tuple[int, int, int] = (0, 0, 0)
        self._response: bytes = b""
        kernel.create_thread(app_process, self._sentinel_thrd_main,
                             name=f"{name}-sentinel-thread")

    def _sentinel_thrd_main(self) -> None:
        while True:
            self.request_ready.wait()
            op, offset, size = self._cmd
            if op == _OP_READ:
                data = self.backing.read(offset, size)
                # the one user-level copy: sentinel buffer -> shared section
                self.section.copy_in(data)
                self._response = data
                self.response_ready.set()
            elif op == _OP_WRITE:
                # the application already copied into the section; the
                # sentinel works from it in place (no second copy)
                payload = bytes(self.section._memory[:size])
                self.backing.write(offset, payload)
                self.response_ready.set()
            elif op == _OP_CLOSE:
                self.backing.settle()
                self.response_ready.set()
                return

    def read(self, size: int) -> bytes:
        self._cmd = (_OP_READ, self._offset, size)
        self.request_ready.set()
        self.response_ready.wait()
        self._offset += size
        return self._response

    def write(self, data: bytes) -> int:
        # the one user-level copy: application buffer -> shared section
        self.section.copy_in(data)
        self._cmd = (_OP_WRITE, self._offset, len(data))
        self.request_ready.set()
        self.response_ready.wait()
        self._offset += len(data)
        return len(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._cmd = (_OP_CLOSE, 0, 0)
        self.request_ready.set()
        self.response_ready.wait()

    def settle(self) -> None:
        self.backing.settle()


# ---------------------------------------------------------------------------
# DLL-only (the "DLL" curve)
# ---------------------------------------------------------------------------

class DllSession(SimSession):
    """Direct routing into sentinel routines (§4.4).

    "The DLL implementation introduces only a very thin layer of code
    ... it incurs no extra system calls or context switches."
    """

    strategy = "dll"

    def __init__(self, kernel: Kernel, app_process: SimProcess,
                 backing: Backing, name: str = "af") -> None:
        self.kernel = kernel
        self.backing = backing
        self._offset = 0

    def read(self, size: int) -> bytes:
        self.kernel.charge(self.kernel.costs.stub_call_us)
        data = self.backing.read(self._offset, size)
        self._offset += size
        return data

    def write(self, data: bytes) -> int:
        self.kernel.charge(self.kernel.costs.stub_call_us)
        written = self.backing.write(self._offset, data)
        self._offset += written
        return written

    def close(self) -> None:
        self.backing.settle()

    def settle(self) -> None:
        self.backing.settle()


# ---------------------------------------------------------------------------
# Simple process strategy (§4.1) — pipes only, eager stream pumps
# ---------------------------------------------------------------------------

class StreamProcessSession(SimSession):
    """Two bare pipes, no control channel (§4.1, Figure 2).

    The sentinel's read pump eagerly fills the read pipe from the
    backing (it has no way to know what the application will ask for),
    so sequential reads effectively get readahead; in exchange nothing
    positional can ever be expressed.
    """

    strategy = "process"

    def __init__(self, kernel: Kernel, app_process: SimProcess,
                 backing: Backing, chunk: int = 4096,
                 name: str = "af") -> None:
        self.kernel = kernel
        self.backing = backing
        self.chunk = chunk
        self._closed = False
        self.read_pipe = KPipe(kernel, name=f"{name}-read")
        self.write_pipe = KPipe(kernel, name=f"{name}-write")
        sentinel_process = kernel.create_process(f"{name}-sentinel")
        kernel.create_thread(sentinel_process, self._read_pump,
                             name=f"{name}-sentinel:rw0")
        kernel.create_thread(sentinel_process, self._write_pump,
                             name=f"{name}-sentinel:rw1")

    def _read_pump(self) -> None:
        offset = 0
        try:
            while True:
                data = self.backing.read(offset, self.chunk)
                offset += len(data)
                self.read_pipe.write(data)
        except SimulationError:
            return  # application closed its read end

    def _write_pump(self) -> None:
        offset = 0
        while True:
            data = self.write_pipe.read(self.chunk)
            if not data:
                break
            offset += self.backing.write(offset, data)
        self.backing.settle()

    def read(self, size: int) -> bytes:
        return self.read_pipe.read_exact(size)

    def write(self, data: bytes) -> int:
        return self.write_pipe.write(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.write_pipe.close_write()
        self.read_pipe.close_read()

    def settle(self) -> None:
        self.backing.settle()


def open_session(strategy: str, kernel: Kernel, app_process: SimProcess,
                 backing: Backing, **options) -> SimSession:
    """Build a session for *strategy* (simulation-side registry)."""
    if strategy == "process-control":
        return ControlProcessSession(kernel, app_process, backing, **options)
    if strategy == "thread":
        return ThreadSession(kernel, app_process, backing, **options)
    if strategy == "dll":
        return DllSession(kernel, app_process, backing, **options)
    if strategy == "process":
        return StreamProcessSession(kernel, app_process, backing, **options)
    raise SimulationError(
        f"unknown simulated strategy {strategy!r}; known: {SIM_STRATEGIES}"
    )
