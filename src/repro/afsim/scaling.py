"""Supplementary experiments beyond Figure 6.

Two natural extensions of the paper's evaluation, run on the same
simulated testbed:

* **Sentinel-work additivity** (:func:`measure_with_sentinel_work`) —
  §6 claims "the eventual cost of using active files is determined only
  by the functionality that they implement, not by the cost of
  interacting with them."  We inject a configurable amount of per-op
  compute into the sentinel and check the measured per-op time grows by
  exactly that amount (plus nothing).
* **Concurrency scaling** (:func:`measure_concurrent`) — the paper's
  §2.2 multi-open semantics, measured: N applications each open their
  own active file (hence N sentinels) on one CPU; aggregate throughput
  shows how much CPU each strategy's transport burns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.afsim.backings import Backing, make_backing
from repro.afsim.sessions import open_session
from repro.errors import SimulationError
from repro.ntos.costs import CostModel
from repro.ntos.fs import NTFileSystem
from repro.ntos.kernel import Kernel

__all__ = ["measure_with_sentinel_work", "measure_concurrent",
           "ScalingResult"]


class WorkingBacking(Backing):
    """Wraps a backing, charging extra per-op sentinel compute."""

    def __init__(self, kernel: Kernel, inner: Backing,
                 work_us: float) -> None:
        self.kernel = kernel
        self.inner = inner
        self.work_us = work_us

    def read(self, offset: int, size: int) -> bytes:
        self.kernel.charge(self.work_us)
        return self.inner.read(offset, size)

    def write(self, offset: int, data: bytes) -> int:
        self.kernel.charge(self.work_us)
        return self.inner.write(offset, data)

    def settle(self) -> None:
        self.inner.settle()


def measure_with_sentinel_work(strategy: str, work_us: float,
                               path: str = "memory", block: int = 512,
                               calls: int = 200,
                               costs: CostModel | None = None) -> float:
    """Per-op µs of sequential reads with *work_us* of sentinel compute."""
    kernel = Kernel(costs)
    fs = NTFileSystem(kernel)
    app = kernel.create_process("app")
    out: dict[str, float] = {}

    def main() -> None:
        backing = WorkingBacking(kernel, make_backing(kernel, path, fs=fs),
                                 work_us)
        session = open_session(strategy, kernel, app, backing)
        start = kernel.now
        for _ in range(calls):
            session.read(block)
        out["per_op"] = (kernel.now - start) / calls
        session.close()

    kernel.create_thread(app, main, "app:main")
    kernel.run()
    return out["per_op"]


@dataclass(frozen=True)
class ScalingResult:
    """Aggregate numbers for one concurrency level."""

    strategy: str
    clients: int
    calls_per_client: int
    total_us: float
    #: Aggregate operations per simulated millisecond across all clients.
    throughput_ops_per_ms: float


def measure_concurrent(strategy: str, clients: int, path: str = "memory",
                       block: int = 512, calls: int = 100,
                       costs: CostModel | None = None) -> ScalingResult:
    """N applications, N sentinels, one CPU: aggregate throughput."""
    if clients < 1:
        raise SimulationError("need at least one client")
    kernel = Kernel(costs)
    fs = NTFileSystem(kernel)

    def client_main(app_process) -> None:
        backing = make_backing(kernel, path, fs=fs)
        session = open_session(strategy, kernel, app_process, backing)
        for _ in range(calls):
            session.read(block)
        session.close()

    for index in range(clients):
        app = kernel.create_process(f"app{index}")
        kernel.create_thread(app, lambda a=app: client_main(a),
                             f"app{index}:main")
    total = kernel.run()
    operations = clients * calls
    return ScalingResult(
        strategy=strategy, clients=clients, calls_per_client=calls,
        total_us=total,
        throughput_ops_per_ms=operations / (total / 1000.0) if total else 0.0,
    )
