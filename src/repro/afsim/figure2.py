"""A literal transcription of the paper's Figure 2 sentinel.

Figure 2 shows "the code for a null filter in the simplest
implementation strategy": a standalone sentinel executable with two
``RWThrd`` threads — one pumping remote-source data into the cache file
and the read pipe, one pumping the write pipe into the cache file and
back to the source — whose ``main`` creates the handles, starts both
threads, and blocks in ``WaitForMultipleObjects``.

:func:`run_figure2_sentinel` executes that exact structure on the
simulated kernel, C-to-Python translated line for line (the original C
is quoted in the comments).  It is used by tests as a fidelity check
and by readers as the Rosetta stone between the paper's listings and
this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ntos.fs import NTFileSystem
from repro.ntos.kernel import Kernel, SimProcess
from repro.ntos.pipes import KPipe

__all__ = ["Figure2Handles", "run_figure2_sentinel"]

_BUF = 1024  # char buf[1024];


@dataclass
class Figure2Handles:
    """The four handles of the listing: hin, hout, hcache, hpipe."""

    hin: KPipe       # GetStdHandle(STD_INPUT_HANDLE)  — the write pipe
    hout: KPipe      # GetStdHandle(STD_OUTPUT_HANDLE) — the read pipe
    hcache: object   # OpenFile(argv[2], ...)          — the data part
    hpipe_in: KPipe  # OpenPipe(argv[1], ...)          — from the source
    hpipe_out: KPipe = None  # ...and towards the source
    log: list = field(default_factory=list)


def run_figure2_sentinel(kernel: Kernel, process: SimProcess,
                         handles: Figure2Handles) -> None:
    """The sentinel ``main()`` of Figure 2, on simulated NT."""

    def rw_thrd(direction: int) -> None:
        """DWORD RWThrd(DWORD dir)"""
        while True:
            if direction == 0:  # if (dir == READ)
                # ReadFile(hpipe, buf, 1024, &rbytes, NULL);
                buf = handles.hpipe_in.read(_BUF)
                if not buf:
                    handles.hout.close_write()
                    return
                # WriteFile(hout, buf, rbytes, &wbytes, NULL);
                handles.hout.write(buf)
                # WriteFile(hcache, buf, rbytes, &wbytes, NULL);
                handles.hcache.write(buf)
                handles.log.append(("read-pump", len(buf)))
            else:
                # ReadFile(hin, buf, 1024, &wbytes, NULL);
                buf = handles.hin.read(_BUF)
                if not buf:
                    if handles.hpipe_out is not None:
                        handles.hpipe_out.close_write()
                    return
                # WriteFile(hcache, buf, wbytes, &rbytes, NULL);
                handles.hcache.write(buf)
                # WriteFile(hpipe, buf, wbytes, &rbytes, NULL);
                if handles.hpipe_out is not None:
                    handles.hpipe_out.write(buf)
                handles.log.append(("write-pump", len(buf)))

    # hthrd[0] = CreateThread(0, 0, RWThread, 0, 0, &tid);
    # hthrd[1] = CreateThread(0, 0, RWThread, 1, 0, &tid);
    hthrd = [
        kernel.create_thread(process, lambda: rw_thrd(0), "RWThrd-read"),
        kernel.create_thread(process, lambda: rw_thrd(1), "RWThrd-write"),
    ]
    # WaitForMultipleObjects(2, hthrd, TRUE, INFINITE);
    kernel.join_all(hthrd)


def build_figure2_machine(source_data: bytes = b"",
                          kernel: Kernel | None = None):
    """Wire one Figure 2 sentinel between an app and a 'remote source'.

    Returns (kernel, handles, app-side endpoints): the application
    writes into ``handles.hin`` and reads from ``handles.hout``; the
    remote source is pre-loaded into ``handles.hpipe_in``.
    """
    kernel = kernel or Kernel()
    fs = NTFileSystem(kernel)
    fs.create("cache.dat")
    sentinel_process = kernel.create_process("figure2-sentinel")
    handles = Figure2Handles(
        hin=KPipe(kernel, name="write-pipe"),
        hout=KPipe(kernel, name="read-pipe"),
        hcache=fs.open("cache.dat"),
        hpipe_in=KPipe(kernel, name="source-in"),
        hpipe_out=KPipe(kernel, name="source-out"),
    )
    if source_data:
        # preload the remote stream (a feeder thread keeps pipe flow real)
        feeder_process = kernel.create_process("remote-source")

        def feeder():
            for start in range(0, len(source_data), _BUF):
                handles.hpipe_in.write(source_data[start:start + _BUF])
            handles.hpipe_in.close_write()

        kernel.create_thread(feeder_process, feeder, "source-feeder")
    else:
        handles.hpipe_in.close_write()

    kernel.create_thread(sentinel_process,
                         lambda: run_figure2_sentinel(kernel,
                                                      sentinel_process,
                                                      handles),
                         "figure2-main")
    return kernel, handles, fs
