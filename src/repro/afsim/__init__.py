"""Active files on the simulated NT kernel — the measured artifact.

This package re-implements the paper's Appendix A on
:mod:`repro.ntos`: application-side stub DLLs injected through the
process IAT, sentinel processes connected by anonymous pipes (with and
without a control channel), sentinel threads sharing memory and events,
and direct DLL-only routing.  The fixed-block read/write application of
Section 6 then runs unmodified on top, and
:mod:`repro.afsim.figure6` reads the virtual clock to regenerate every
series of Figure 6 (plus the direct-access baseline the text mentions).
"""

from repro.afsim.backings import (
    Backing,
    DiskBacking,
    MemoryBacking,
    RemoteBacking,
    make_backing,
    PATHS,
)
from repro.afsim.sessions import (
    DllSession,
    ControlProcessSession,
    SimSession,
    StreamProcessSession,
    ThreadSession,
    open_session,
    SIM_STRATEGIES,
)
from repro.afsim.stubs import ActiveFileRuntime
from repro.afsim.workload import measure_point, WorkloadResult

# NOTE: the figure-6 harness lives in repro.afsim.figure6 and is *not*
# re-exported here, so that ``python -m repro.afsim.figure6`` runs
# without the found-in-sys.modules RuntimeWarning.

__all__ = [
    "ActiveFileRuntime",
    "Backing",
    "ControlProcessSession",
    "DiskBacking",
    "DllSession",
    "MemoryBacking",
    "PATHS",
    "RemoteBacking",
    "SIM_STRATEGIES",
    "SimSession",
    "StreamProcessSession",
    "ThreadSession",
    "WorkloadResult",
    "make_backing",
    "measure_point",
    "open_session",
]
