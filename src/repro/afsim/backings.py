"""The three critical caching paths of Figure 5, as sentinel backings.

A *backing* is what the sentinel touches to satisfy one operation:

* :class:`RemoteBacking` — path 1, "no cache in the sentinel process":
  each read is a blocking RPC to the remote service; each write is a
  one-way update message ("sends an update message to the remote
  service").
* :class:`DiskBacking` — path 2, "the data is cached in the active file
  on disk": reads and writes hit the local NT file.
* :class:`MemoryBacking` — path 3, "the cache resides in the sentinel's
  memory": a user-level memcpy per operation.

The baseline of Section 6 is the application using a backing directly,
with no active-file machinery in between.
"""

from __future__ import annotations

import struct

from repro.errors import SimulationError
from repro.ntos.fs import NTFileSystem
from repro.ntos.kernel import Kernel
from repro.ntos.netdev import NetDevice, RemoteHost

__all__ = ["Backing", "RemoteBacking", "DiskBacking", "MemoryBacking",
           "make_backing", "PATHS"]

#: Panel key -> path name, in the paper's order.
PATHS = ("network", "disk", "memory")

#: Request/response protocol header on the wire (op, offset, size).
_WIRE_HEADER = struct.calcsize(">BQI") + 28  # + transport framing


class Backing:
    """What a sentinel (or the baseline application) operates against."""

    def read(self, offset: int, size: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data: bytes) -> int:
        raise NotImplementedError

    def settle(self) -> None:
        """Wait for any asynchronous effects (used between measurements)."""


class RemoteBacking(Backing):
    """Path 1: every operation exchanges messages with a remote source."""

    def __init__(self, kernel: Kernel, host: RemoteHost) -> None:
        self.kernel = kernel
        self.host = host

    def read(self, offset: int, size: int) -> bytes:
        self.host.request(request_bytes=_WIRE_HEADER,
                          response_bytes=_WIRE_HEADER + size)
        return b"\x00" * size

    def write(self, offset: int, data: bytes) -> int:
        # the update message goes out synchronously up to the wire (a
        # send through a small socket buffer), but nobody waits for the
        # remote acknowledgement — "writes are issued without waiting
        # for their completion"
        self.host.send(_WIRE_HEADER + len(data), blocking=True)
        return len(data)

    def settle(self) -> None:
        self.host.drain()


class DiskBacking(Backing):
    """Path 2: operations hit the local on-disk cache file."""

    def __init__(self, kernel: Kernel, fs: NTFileSystem,
                 path: str = "cache.dat", size: int = 1 << 20) -> None:
        self.kernel = kernel
        if not fs.exists(path):
            fs.create(path, b"\x00" * size)
        self.file = fs.open(path)
        self._size = size

    def read(self, offset: int, size: int) -> bytes:
        return self.file.read_at(offset % self._size, size)

    def write(self, offset: int, data: bytes) -> int:
        return self.file.write_at(offset % self._size, data)


class MemoryBacking(Backing):
    """Path 3: operations are user-level memcpys in the sentinel."""

    def __init__(self, kernel: Kernel, size: int = 1 << 20) -> None:
        self.kernel = kernel
        self._buffer = bytearray(size)
        self._size = size

    def read(self, offset: int, size: int) -> bytes:
        self.kernel.charge(size * self.kernel.costs.memcpy_us_per_byte)
        offset %= self._size
        return bytes(self._buffer[offset:offset + size]).ljust(size, b"\x00")

    def write(self, offset: int, data: bytes) -> int:
        self.kernel.charge(len(data) * self.kernel.costs.memcpy_us_per_byte)
        offset %= self._size
        self._buffer[offset:offset + len(data)] = data
        return len(data)


def make_backing(kernel: Kernel, path: str,
                 fs: NTFileSystem | None = None,
                 nic: NetDevice | None = None) -> Backing:
    """Build the backing for one of the Figure 5 paths by name."""
    if path == "network":
        return RemoteBacking(kernel, RemoteHost(kernel,
                                                nic or NetDevice(kernel)))
    if path == "disk":
        return DiskBacking(kernel, fs or NTFileSystem(kernel))
    if path == "memory":
        return MemoryBacking(kernel)
    raise SimulationError(f"unknown caching path {path!r}; known: {PATHS}")
