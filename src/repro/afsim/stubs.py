"""The injected stub DLL: IAT interception in the simulation.

Appendix A.2: "the stub for OpenFile() (or CreateFile) checks to see if
the file name corresponds to an active file or not (by checking the
extension) ... a dummy handle is acquired and supplied as the return
file handle ... whenever the application calls ReadFile on some file
handle, our stub gets control.  The stub checks if this ReadFile is
against the dummy handle we created.  If not, we pass it to the file
system."

:class:`ActiveFileRuntime` is that stub DLL for a simulated process:
installing it rebinds the process's IAT entries so an *unmodified*
application function (one that only calls ``win32.ReadFile`` etc.) gets
active files whenever it opens a ``.af`` name.
"""

from __future__ import annotations

from typing import Callable

from repro.afsim.sessions import SimSession
from repro.ntos.iat import inject_dll
from repro.ntos.kernel import Kernel
from repro.ntos.win32 import Win32

__all__ = ["ActiveFileRuntime"]

ACTIVE_SUFFIX = ".af"


class ActiveFileRuntime:
    """Per-process active-file stubs, injected through the IAT."""

    def __init__(self, kernel: Kernel, win32: Win32,
                 session_factory: Callable[[str], SimSession]) -> None:
        self.kernel = kernel
        self.win32 = win32
        self.session_factory = session_factory
        self.opened = 0
        self._installed = False

    def install(self) -> "ActiveFileRuntime":
        if self._installed:
            return self
        self._installed = True
        inject_dll(self.win32.iat, {
            "CreateFile": self._create_file_stub,
            "ReadFile": self._read_file_stub,
            "WriteFile": self._write_file_stub,
            "GetFileSize": self._get_file_size_stub,
        })
        return self

    # -- stub factories (each receives the original binding) ---------------------

    def _create_file_stub(self, original):
        def stub(path: str, create: bool = False) -> int:
            if not str(path).endswith(ACTIVE_SUFFIX):
                return original(path, create)
            # launching the sentinel: a handful of kernel operations
            # (pipes/threads/process) all charge themselves; the stub
            # itself costs one syscall for the dummy-handle bookkeeping
            self.kernel.syscall()
            session = self.session_factory(str(path))
            self.opened += 1
            return self.win32.register_handle(session)
        return stub

    def _read_file_stub(self, original):
        def stub(handle: int, size: int) -> bytes:
            target = self.win32.handle_object(handle)
            if isinstance(target, SimSession):
                return target.read(size)
            return original(handle, size)
        return stub

    def _write_file_stub(self, original):
        def stub(handle: int, data: bytes) -> int:
            target = self.win32.handle_object(handle)
            if isinstance(target, SimSession):
                return target.write(data)
            return original(handle, data)
        return stub

    def _get_file_size_stub(self, original):
        def stub(handle: int) -> int:
            target = self.win32.handle_object(handle)
            if isinstance(target, SimSession):
                from repro.errors import SimulationError

                raise SimulationError(
                    "GetFileSize on a simulated active file is strategy-"
                    "dependent; the measurement workload does not use it"
                )
            return original(handle)
        return stub
